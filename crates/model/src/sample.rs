//! Sampling strategies for generation.
//!
//! The paper sets temperature 0 for the next-token benchmark (greedy) and
//! uses each model's default sampling settings for the full-instruct
//! method; we expose greedy, temperature, and top-k.

use astro_prng::Rng;

/// Sampling configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplerConfig {
    /// Softmax temperature; `0.0` means greedy argmax.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens (0 = disabled).
    pub top_k: usize,
}

impl SamplerConfig {
    /// Greedy decoding (temperature 0), as the paper uses for the token
    /// method.
    pub fn greedy() -> Self {
        SamplerConfig {
            temperature: 0.0,
            top_k: 0,
        }
    }

    /// Standard creative sampling.
    pub fn standard() -> Self {
        SamplerConfig {
            temperature: 0.8,
            top_k: 40,
        }
    }
}

/// Index of the maximum logit (ties broken toward the lower index, which
/// keeps greedy decoding deterministic).
pub fn argmax(logits: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in logits.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Autoregressively generate up to `max_new` tokens from a prompt,
/// stopping early at any id in `stop_tokens`. Returns the generated ids
/// (stop token excluded).
pub fn generate(
    params: &crate::Params,
    prompt: &[u32],
    max_new: usize,
    stop_tokens: &[u32],
    config: &SamplerConfig,
    rng: &mut Rng,
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "generate requires a non-empty prompt");
    let mut sess = crate::InferenceSession::new(params.cfg);
    // Keep the prompt tail if it exceeds the context, reserving room to
    // generate.
    let cap = params.cfg.max_seq;
    let budget = max_new.min(cap.saturating_sub(1));
    let keep = prompt.len().min(cap - budget.min(cap - 1));
    let mut logits = sess
        .feed_prompt(params, &prompt[prompt.len() - keep..])
        .to_vec();
    let mut out = Vec::with_capacity(budget);
    for _ in 0..budget {
        if sess.remaining() == 0 {
            break;
        }
        let next = sample_logits(&logits, config, rng) as u32;
        if stop_tokens.contains(&next) {
            break;
        }
        out.push(next);
        logits = sess.feed(params, next).to_vec();
    }
    out
}

/// Sample a token id from logits under the given configuration.
pub fn sample_logits(logits: &[f32], config: &SamplerConfig, rng: &mut Rng) -> usize {
    assert!(!logits.is_empty());
    if config.temperature <= 0.0 {
        return argmax(logits);
    }
    // Optionally restrict to top-k.
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    if config.top_k > 0 && config.top_k < logits.len() {
        // `total_cmp` gives a total order even for NaN logits (they sort
        // last), so top-k selection cannot panic on a degenerate forward
        // pass.
        idx.sort_unstable_by(|&a, &b| logits[b].total_cmp(&logits[a]));
        idx.truncate(config.top_k);
    }
    // Stable softmax over the kept set.
    let max = idx.iter().map(|&i| logits[i]).fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f64> = idx
        .iter()
        .map(|&i| (((logits[i] - max) / config.temperature) as f64).exp())
        .collect();
    idx[rng.weighted(&weights)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_finds_peak() {
        assert_eq!(argmax(&[0.1, 3.0, -1.0, 2.9]), 1);
    }

    #[test]
    fn argmax_tie_breaks_low() {
        assert_eq!(argmax(&[5.0, 5.0, 1.0]), 0);
    }

    #[test]
    fn greedy_ignores_rng() {
        let logits = [0.0, 10.0, 0.0];
        let mut r1 = Rng::seed_from(1);
        let mut r2 = Rng::seed_from(99);
        let cfg = SamplerConfig::greedy();
        assert_eq!(sample_logits(&logits, &cfg, &mut r1), 1);
        assert_eq!(sample_logits(&logits, &cfg, &mut r2), 1);
    }

    #[test]
    fn temperature_sampling_prefers_high_logits() {
        let logits = [0.0, 4.0, 0.0, 0.0];
        let cfg = SamplerConfig {
            temperature: 1.0,
            top_k: 0,
        };
        let mut rng = Rng::seed_from(2);
        let hits = (0..2000)
            .filter(|_| sample_logits(&logits, &cfg, &mut rng) == 1)
            .count();
        assert!(hits > 1500, "high-logit token sampled only {hits}/2000");
    }

    #[test]
    fn top_k_excludes_tail() {
        let logits = [1.0, 0.9, 0.8, -10.0];
        let cfg = SamplerConfig {
            temperature: 1.0,
            top_k: 2,
        };
        let mut rng = Rng::seed_from(3);
        for _ in 0..500 {
            let s = sample_logits(&logits, &cfg, &mut rng);
            assert!(s == 0 || s == 1, "sampled outside top-2: {s}");
        }
    }

    #[test]
    fn generate_respects_budget_and_stop_tokens() {
        use crate::{ModelConfig, Params};
        let cfg = ModelConfig::tiny(16);
        let params = Params::init(cfg, &mut Rng::seed_from(1));
        let mut rng = Rng::seed_from(2);
        let out = generate(&params, &[1, 2, 3], 8, &[], &SamplerConfig::greedy(), &mut rng);
        assert!(out.len() <= 8);
        // Greedy output deterministic.
        let out2 = generate(&params, &[1, 2, 3], 8, &[], &SamplerConfig::greedy(), &mut rng);
        assert_eq!(out, out2);
        // Stopping on the first generated token yields empty output.
        if let Some(&first) = out.first() {
            let stopped = generate(
                &params,
                &[1, 2, 3],
                8,
                &[first],
                &SamplerConfig::greedy(),
                &mut rng,
            );
            assert!(stopped.is_empty());
        }
    }

    #[test]
    fn generate_truncates_long_prompts() {
        use crate::{ModelConfig, Params};
        let cfg = ModelConfig::tiny(16);
        let params = Params::init(cfg, &mut Rng::seed_from(3));
        let long: Vec<u32> = (0..200).map(|i| (i % 16) as u32).collect();
        let mut rng = Rng::seed_from(4);
        let out = generate(&params, &long, 4, &[], &SamplerConfig::greedy(), &mut rng);
        assert!(out.len() <= 4);
    }

    #[test]
    fn high_temperature_flattens() {
        let logits = [0.0, 1.0];
        let cfg = SamplerConfig {
            temperature: 100.0,
            top_k: 0,
        };
        let mut rng = Rng::seed_from(4);
        let zeros = (0..4000)
            .filter(|_| sample_logits(&logits, &cfg, &mut rng) == 0)
            .count();
        let frac = zeros as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "fraction {frac}");
    }
}
