//! Binary model checkpoints — versioned, checksummed, written atomically.
//!
//! Format **v2** (little-endian):
//! ```text
//! magic       u32 = 0x414d4c32 ("AML2")
//! version     u32 = 2
//! vocab_size  u32
//! d_model     u32
//! n_layers    u32
//! n_heads     u32
//! d_ff        u32
//! max_seq     u32
//! weights     f32 × param_count
//! checksum    u64 — FNV-1a 64 over every preceding byte
//! ```
//!
//! The v1 format had no version word or checksum trailer; a v1 blob is
//! recognised (its second word is a vocab size, far above any version
//! number we will ever use) and rejected as
//! [`CkptError::VersionMismatch`]. Loading validates length against the
//! embedded config *before* the checksum, so a torn file reports
//! [`CkptError::Truncated`] while bit rot in a complete file reports
//! [`CkptError::Corrupt`].
//!
//! [`save_checkpoint`] goes through `astro_resilience::durable`
//! (tmp + fsync + rename), so a crash mid-save can never tear a
//! previously good checkpoint; [`load_checkpoint`] reads through the
//! fault-injectable path (`io.partial_read`).

use crate::params::{Layout, Params};
use crate::ModelConfig;
use astro_resilience::fnv64;

const MAGIC: u32 = 0x414d_4c32;
/// Current checkpoint format version.
pub const CKPT_VERSION: u32 = 2;
/// Header length in bytes: magic, version, six config words.
const HEADER: usize = 32;
/// Checksum trailer length in bytes.
const TRAILER: usize = 8;

/// Typed checkpoint load/save failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// The underlying file could not be read or written.
    Io(String),
    /// The file is shorter than its header/config demands (torn write
    /// or partial read).
    Truncated {
        /// Bytes actually present.
        len: usize,
        /// Bytes the format requires.
        want: usize,
    },
    /// The file is complete but its contents are inconsistent (bad
    /// magic, invalid config, checksum mismatch, trailing garbage).
    Corrupt(String),
    /// The file is a checkpoint of a different format version.
    VersionMismatch {
        /// Version word found in the file (0 for v1 blobs, which had no
        /// version word).
        found: u32,
        /// Version this build writes and reads.
        want: u32,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CkptError::Truncated { len, want } => {
                write!(f, "checkpoint truncated: {len} bytes, want {want}")
            }
            CkptError::Corrupt(why) => write!(f, "checkpoint corrupt: {why}"),
            CkptError::VersionMismatch { found, want } => {
                write!(f, "checkpoint version {found}, this build reads {want}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

fn word(bytes: &[u8], idx: usize) -> Result<u32, CkptError> {
    let off = idx * 4;
    bytes
        .get(off..off + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(CkptError::Truncated { len: bytes.len(), want: off + 4 })
}

/// Serialise parameters (config + weights) in the current format.
pub fn params_to_bytes(p: &Params) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + p.data.len() * 4 + TRAILER);
    for v in [
        MAGIC,
        CKPT_VERSION,
        p.cfg.vocab_size as u32,
        p.cfg.d_model as u32,
        p.cfg.n_layers as u32,
        p.cfg.n_heads as u32,
        p.cfg.d_ff as u32,
        p.cfg.max_seq as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &w in &p.data {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Deserialise parameters from [`params_to_bytes`] output, verifying
/// magic, version, config consistency, length and content checksum.
pub fn params_from_bytes(bytes: &[u8]) -> Result<Params, CkptError> {
    if word(bytes, 0)? != MAGIC {
        return Err(CkptError::Corrupt(format!(
            "bad magic {:#x}",
            word(bytes, 0).unwrap_or(0)
        )));
    }
    let version = word(bytes, 1)?;
    if version != CKPT_VERSION {
        // A v1 blob has vocab_size here — far above any plausible
        // version number (vocab is always >= 256 + specials). Report it
        // as version 0 ("pre-versioning") rather than a nonsense number.
        let found = if version > 256 { 0 } else { version };
        return Err(CkptError::VersionMismatch { found, want: CKPT_VERSION });
    }
    let cfg = ModelConfig {
        vocab_size: word(bytes, 2)? as usize,
        d_model: word(bytes, 3)? as usize,
        n_layers: word(bytes, 4)? as usize,
        n_heads: word(bytes, 5)? as usize,
        d_ff: word(bytes, 6)? as usize,
        max_seq: word(bytes, 7)? as usize,
    };
    cfg.validate().map_err(CkptError::Corrupt)?;
    let layout = Layout::new(&cfg);
    let want = HEADER + layout.total * 4 + TRAILER;
    if bytes.len() < want {
        return Err(CkptError::Truncated { len: bytes.len(), want });
    }
    if bytes.len() > want {
        return Err(CkptError::Corrupt(format!(
            "{} trailing bytes after checksum",
            bytes.len() - want
        )));
    }
    let body = &bytes[..want - TRAILER];
    let stored = bytes
        .get(want - TRAILER..)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or(CkptError::Truncated { len: bytes.len(), want })?;
    let computed = fnv64(body);
    if stored != computed {
        return Err(CkptError::Corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    let data: Vec<f32> = body[HEADER..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Params { cfg, layout, data })
}

/// Write a checkpoint to a file atomically (tmp + fsync + rename); a
/// crash mid-save leaves any previous checkpoint at `path` intact.
pub fn save_checkpoint(p: &Params, path: &std::path::Path) -> Result<(), CkptError> {
    astro_resilience::durable::write_atomic(path, &params_to_bytes(p))
        .map_err(|e| CkptError::Io(format!("write {}: {e}", path.display())))
}

/// Load and fully validate a checkpoint from a file.
pub fn load_checkpoint(path: &std::path::Path) -> Result<Params, CkptError> {
    let bytes = astro_resilience::durable::read_all(path)
        .map_err(|e| CkptError::Io(format!("read {}: {e}", path.display())))?;
    params_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_prng::Rng;

    #[test]
    fn round_trip_exact() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(1));
        let q = params_from_bytes(&params_to_bytes(&p)).unwrap();
        assert_eq!(p.cfg, q.cfg);
        assert_eq!(p.data, q.data);
    }

    #[test]
    fn rejects_bad_magic() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(2));
        let mut b = params_to_bytes(&p);
        b[0] ^= 0xff;
        assert!(matches!(params_from_bytes(&b), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncation_as_truncated() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(3));
        let b = params_to_bytes(&p);
        // Any torn prefix long enough to carry a valid header must be
        // reported as Truncated, not Corrupt.
        for cut in [b.len() - 1, b.len() - 4, b.len() / 2, HEADER + 3] {
            match params_from_bytes(&b[..cut]) {
                Err(CkptError::Truncated { len, want }) => {
                    assert_eq!(len, cut);
                    assert_eq!(want, b.len());
                }
                other => panic!("cut={cut}: want Truncated, got {other:?}"),
            }
        }
        assert!(matches!(
            params_from_bytes(&[]),
            Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(4));
        let mut b = params_to_bytes(&p);
        // Corrupt n_heads (word 5: bytes 20..24) so d_model % n_heads != 0.
        b[20..24].copy_from_slice(&5u32.to_le_bytes());
        assert!(matches!(params_from_bytes(&b), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn detects_weight_bit_rot_via_checksum() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(6));
        let mut b = params_to_bytes(&p);
        let mid = HEADER + (b.len() - HEADER - TRAILER) / 2;
        b[mid] ^= 0x01;
        match params_from_bytes(&b) {
            Err(CkptError::Corrupt(why)) => assert!(why.contains("checksum"), "{why}"),
            other => panic!("want checksum Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn rejects_v1_blob_as_version_mismatch() {
        // Reconstruct the v1 layout: magic + 6 config words + weights,
        // no version, no checksum.
        let cfg = ModelConfig::tiny(300);
        let p = Params::init(cfg, &mut Rng::seed_from(7));
        let mut v1 = Vec::new();
        for v in [
            MAGIC,
            p.cfg.vocab_size as u32,
            p.cfg.d_model as u32,
            p.cfg.n_layers as u32,
            p.cfg.n_heads as u32,
            p.cfg.d_ff as u32,
            p.cfg.max_seq as u32,
        ] {
            v1.extend_from_slice(&v.to_le_bytes());
        }
        for &w in &p.data {
            v1.extend_from_slice(&w.to_le_bytes());
        }
        assert!(matches!(
            params_from_bytes(&v1),
            Err(CkptError::VersionMismatch { found: 0, want: CKPT_VERSION })
        ));
    }

    #[test]
    fn file_round_trip_is_atomic_and_validated() {
        let cfg = ModelConfig::tiny(16);
        let p = Params::init(cfg, &mut Rng::seed_from(5));
        let dir = std::env::temp_dir().join("astro_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        save_checkpoint(&p, &path).unwrap();
        let q = load_checkpoint(&path).unwrap();
        assert_eq!(p.data, q.data);
        let _ = std::fs::remove_file(&path);
    }
}
