//! Binary model checkpoints.
//!
//! Format (little-endian):
//! ```text
//! magic       u32 = 0x414d4c32 ("AML2")
//! vocab_size  u32
//! d_model     u32
//! n_layers    u32
//! n_heads     u32
//! d_ff        u32
//! max_seq     u32
//! weights     f32 × param_count
//! ```

use crate::params::{Layout, Params};
use crate::ModelConfig;

const MAGIC: u32 = 0x414d_4c32;

/// Serialise parameters (config + weights).
pub fn params_to_bytes(p: &Params) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + p.data.len() * 4);
    for v in [
        MAGIC,
        p.cfg.vocab_size as u32,
        p.cfg.d_model as u32,
        p.cfg.n_layers as u32,
        p.cfg.n_heads as u32,
        p.cfg.d_ff as u32,
        p.cfg.max_seq as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &w in &p.data {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Deserialise parameters from [`params_to_bytes`] output.
pub fn params_from_bytes(bytes: &[u8]) -> Result<Params, String> {
    if bytes.len() < 28 {
        return Err("checkpoint too short".to_string());
    }
    let word = |i: usize| u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("sliced"));
    if word(0) != MAGIC {
        return Err(format!("bad checkpoint magic {:#x}", word(0)));
    }
    let cfg = ModelConfig {
        vocab_size: word(1) as usize,
        d_model: word(2) as usize,
        n_layers: word(3) as usize,
        n_heads: word(4) as usize,
        d_ff: word(5) as usize,
        max_seq: word(6) as usize,
    };
    cfg.validate()?;
    let layout = Layout::new(&cfg);
    let want = 28 + layout.total * 4;
    if bytes.len() != want {
        return Err(format!(
            "checkpoint length {} does not match config (want {want})",
            bytes.len()
        ));
    }
    let mut data = Vec::with_capacity(layout.total);
    for i in 0..layout.total {
        let off = 28 + i * 4;
        data.push(f32::from_le_bytes(
            bytes[off..off + 4].try_into().expect("sliced"),
        ));
    }
    Ok(Params { cfg, layout, data })
}

/// Write a checkpoint to a file.
pub fn save_checkpoint(p: &Params, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, params_to_bytes(p))
}

/// Load a checkpoint from a file.
pub fn load_checkpoint(path: &std::path::Path) -> Result<Params, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    params_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_prng::Rng;

    #[test]
    fn round_trip_exact() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(1));
        let q = params_from_bytes(&params_to_bytes(&p)).unwrap();
        assert_eq!(p.cfg, q.cfg);
        assert_eq!(p.data, q.data);
    }

    #[test]
    fn rejects_bad_magic() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(2));
        let mut b = params_to_bytes(&p);
        b[0] ^= 0xff;
        assert!(params_from_bytes(&b).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(3));
        let b = params_to_bytes(&p);
        assert!(params_from_bytes(&b[..b.len() - 4]).is_err());
        assert!(params_from_bytes(&[]).is_err());
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(4));
        let mut b = params_to_bytes(&p);
        // Corrupt n_heads so d_model % n_heads != 0.
        b[16..20].copy_from_slice(&5u32.to_le_bytes());
        assert!(params_from_bytes(&b).is_err());
    }

    #[test]
    fn file_round_trip() {
        let cfg = ModelConfig::tiny(16);
        let p = Params::init(cfg, &mut Rng::seed_from(5));
        let dir = std::env::temp_dir().join("astro_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        save_checkpoint(&p, &path).unwrap();
        let q = load_checkpoint(&path).unwrap();
        assert_eq!(p.data, q.data);
        let _ = std::fs::remove_file(&path);
    }
}
