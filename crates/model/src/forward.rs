//! Training-time forward and backward passes.
//!
//! [`TrainContext`] owns every activation and scratch buffer for a fixed
//! `(batch, seq)` shape, allocated once and reused for the whole run — the
//! hot loop performs no allocation. The backward pass is hand-derived
//! (llm.c style); `tests::gradcheck_full_model` validates the complete
//! gradient against central finite differences.
//!
//! Layout conventions: activations are `[B*T, C]` row-major ("m rows");
//! attention scratch is per (batch, head) with contiguous `[T, head_dim]`
//! tiles gathered from the interleaved `[B*T, C]` projections.

use crate::params::Params;
use crate::{ModelConfig, ROPE_THETA};
use astro_tensor::matmul::{matmul, matmul_a_bt, matmul_acc, matmul_at_b, matmul_at_b_acc};
use astro_tensor::ops;

/// Mask value for future positions before softmax.
const NEG_INF: f32 = -1.0e30;

/// Pre-allocated buffers + the forward/backward implementation.
pub struct TrainContext {
    cfg: ModelConfig,
    /// Batch size the buffers are shaped for.
    pub batch: usize,
    /// Sequence length the buffers are shaped for.
    pub seq: usize,

    // ---- stored activations (needed by backward) ----
    /// Residual-stream inputs per layer boundary: `(L+1) × [m, C]`.
    xs: Vec<Vec<f32>>,
    ln1_out: Vec<Vec<f32>>,
    ln1_inv: Vec<Vec<f32>>,
    q: Vec<Vec<f32>>,
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    /// Post-softmax attention `[B*H, T, T]` per layer.
    att: Vec<Vec<f32>>,
    /// Head-concatenated attention output (pre-`Wo`) `[m, C]`.
    att_out: Vec<Vec<f32>>,
    /// Residual stream after the attention block `[m, C]`.
    x_mid: Vec<Vec<f32>>,
    ln2_out: Vec<Vec<f32>>,
    ln2_inv: Vec<Vec<f32>>,
    h_gate: Vec<Vec<f32>>,
    h_silu: Vec<Vec<f32>>,
    h_up: Vec<Vec<f32>>,
    h_act: Vec<Vec<f32>>,
    xf_norm: Vec<f32>,
    xf_inv: Vec<f32>,
    /// `[m, vocab]` logits of the last forward pass.
    pub logits: Vec<f32>,
    dlogits: Vec<f32>,

    // ---- backward scratch ----
    dx_a: Vec<f32>,
    dx_b: Vec<f32>,
    dxm: Vec<f32>,
    d_q: Vec<f32>,
    d_k: Vec<f32>,
    d_v: Vec<f32>,
    d_gate: Vec<f32>,
    d_silu: Vec<f32>,
    d_up: Vec<f32>,
    d_act: Vec<f32>,
    scratch_mc: Vec<f32>,

    // ---- per-head scratch ----
    qh: Vec<f32>,
    kh: Vec<f32>,
    vh: Vec<f32>,
    oh: Vec<f32>,
    sc: Vec<f32>,
    d_sc: Vec<f32>,
    d_sc_pre: Vec<f32>,
    d_oh: Vec<f32>,
    d_qh: Vec<f32>,
    d_kh: Vec<f32>,
    d_vh: Vec<f32>,

    /// Precomputed RoPE cos/sin tables `[max_seq, head_dim/2]`.
    rope_cos: Vec<f32>,
    rope_sin: Vec<f32>,
}

impl TrainContext {
    /// Allocate buffers for a `(batch, seq)` shape.
    pub fn new(cfg: ModelConfig, batch: usize, seq: usize) -> Self {
        cfg.validate().expect("invalid model config");
        assert!(seq <= cfg.max_seq, "seq {seq} exceeds max_seq {}", cfg.max_seq);
        assert!(batch > 0 && seq > 0);
        let m = batch * seq;
        let c = cfg.d_model;
        let f = cfg.d_ff;
        let hs = cfg.head_dim();
        let l = cfg.n_layers;
        let per_layer = |n: usize| (0..l).map(|_| vec![0.0f32; n]).collect::<Vec<_>>();
        let (rope_cos, rope_sin) = rope_tables(cfg.max_seq, hs);
        TrainContext {
            cfg,
            batch,
            seq,
            xs: (0..=l).map(|_| vec![0.0; m * c]).collect(),
            ln1_out: per_layer(m * c),
            ln1_inv: per_layer(m),
            q: per_layer(m * c),
            k: per_layer(m * c),
            v: per_layer(m * c),
            att: per_layer(batch * cfg.n_heads * seq * seq),
            att_out: per_layer(m * c),
            x_mid: per_layer(m * c),
            ln2_out: per_layer(m * c),
            ln2_inv: per_layer(m),
            h_gate: per_layer(m * f),
            h_silu: per_layer(m * f),
            h_up: per_layer(m * f),
            h_act: per_layer(m * f),
            xf_norm: vec![0.0; m * c],
            xf_inv: vec![0.0; m],
            logits: vec![0.0; m * cfg.vocab_size],
            dlogits: vec![0.0; m * cfg.vocab_size],
            dx_a: vec![0.0; m * c],
            dx_b: vec![0.0; m * c],
            dxm: vec![0.0; m * c],
            d_q: vec![0.0; m * c],
            d_k: vec![0.0; m * c],
            d_v: vec![0.0; m * c],
            d_gate: vec![0.0; m * f],
            d_silu: vec![0.0; m * f],
            d_up: vec![0.0; m * f],
            d_act: vec![0.0; m * f],
            scratch_mc: vec![0.0; m * c],
            qh: vec![0.0; seq * hs],
            kh: vec![0.0; seq * hs],
            vh: vec![0.0; seq * hs],
            oh: vec![0.0; seq * hs],
            sc: vec![0.0; seq * seq],
            d_sc: vec![0.0; seq * seq],
            d_sc_pre: vec![0.0; seq * seq],
            d_oh: vec![0.0; seq * hs],
            d_qh: vec![0.0; seq * hs],
            d_kh: vec![0.0; seq * hs],
            d_vh: vec![0.0; seq * hs],
            rope_cos,
            rope_sin,
        }
    }

    /// Forward pass: fill `self.logits` from `tokens` (`batch*seq` ids).
    pub fn forward(&mut self, p: &Params, tokens: &[u32]) {
        let (b, t) = (self.batch, self.seq);
        let m = b * t;
        let c = self.cfg.d_model;
        let f = self.cfg.d_ff;
        let v = self.cfg.vocab_size;
        let h = self.cfg.n_heads;
        let hs = self.cfg.head_dim();
        assert_eq!(tokens.len(), m, "tokens must be batch*seq");

        // Embedding lookup.
        let embed = p.view(&p.layout.embed.clone());
        for (i, &tok) in tokens.iter().enumerate() {
            let tok = tok as usize;
            debug_assert!(tok < v, "token {tok} out of vocab {v}");
            self.xs[0][i * c..(i + 1) * c].copy_from_slice(&embed[tok * c..(tok + 1) * c]);
        }

        for l in 0..self.cfg.n_layers {
            let lay = p.layout.layers[l].clone();
            // Attention RMSNorm.
            ops::rmsnorm_rows(
                &mut self.ln1_out[l],
                &mut self.ln1_inv[l],
                &self.xs[l],
                p.view(&lay.attn_norm),
                m,
                c,
                1e-5,
            );
            // QKV projections (y = x·Wᵀ).
            matmul_a_bt(&mut self.q[l], &self.ln1_out[l], p.view(&lay.wq), m, c, c);
            matmul_a_bt(&mut self.k[l], &self.ln1_out[l], p.view(&lay.wk), m, c, c);
            matmul_a_bt(&mut self.v[l], &self.ln1_out[l], p.view(&lay.wv), m, c, c);
            // RoPE on q and k.
            self.apply_rope(l, false);
            // Attention per (batch, head).
            let scale = 1.0 / (hs as f32).sqrt();
            for bi in 0..b {
                for hi in 0..h {
                    gather_head(&self.q[l], &mut self.qh, bi, hi, t, c, hs);
                    gather_head(&self.k[l], &mut self.kh, bi, hi, t, c, hs);
                    gather_head(&self.v[l], &mut self.vh, bi, hi, t, c, hs);
                    // scores = q·kᵀ · scale, causal mask, softmax.
                    matmul_a_bt(&mut self.sc, &self.qh, &self.kh, t, hs, t);
                    for i in 0..t {
                        for j in 0..t {
                            let e = &mut self.sc[i * t + j];
                            if j > i {
                                *e = NEG_INF;
                            } else {
                                *e *= scale;
                            }
                        }
                    }
                    ops::softmax_rows(&mut self.sc, t, t);
                    let att_slot = (bi * h + hi) * t * t;
                    self.att[l][att_slot..att_slot + t * t].copy_from_slice(&self.sc);
                    // out = scores · v
                    matmul(&mut self.oh, &self.sc, &self.vh, t, t, hs);
                    scatter_head(&self.oh, &mut self.att_out[l], bi, hi, t, c, hs);
                }
            }
            // Output projection + residual.
            matmul_a_bt(&mut self.scratch_mc, &self.att_out[l], p.view(&lay.wo), m, c, c);
            for i in 0..m * c {
                self.x_mid[l][i] = self.xs[l][i] + self.scratch_mc[i];
            }
            // FFN RMSNorm.
            ops::rmsnorm_rows(
                &mut self.ln2_out[l],
                &mut self.ln2_inv[l],
                &self.x_mid[l],
                p.view(&lay.ffn_norm),
                m,
                c,
                1e-5,
            );
            // SwiGLU.
            matmul_a_bt(&mut self.h_gate[l], &self.ln2_out[l], p.view(&lay.w_gate), m, c, f);
            matmul_a_bt(&mut self.h_up[l], &self.ln2_out[l], p.view(&lay.w_up), m, c, f);
            ops::silu(&mut self.h_silu[l], &self.h_gate[l]);
            ops::mul(&mut self.h_act[l], &self.h_silu[l], &self.h_up[l]);
            // Down projection + residual. scratch is m×c-sized; use its
            // prefix for the m×c product.
            matmul_a_bt(&mut self.scratch_mc, &self.h_act[l], p.view(&lay.w_down), m, f, c);
            for i in 0..m * c {
                self.xs[l + 1][i] = self.x_mid[l][i] + self.scratch_mc[i];
            }
        }

        // Final norm + tied LM head.
        ops::rmsnorm_rows(
            &mut self.xf_norm,
            &mut self.xf_inv,
            &self.xs[self.cfg.n_layers],
            p.view(&p.layout.final_norm.clone()),
            m,
            c,
            1e-5,
        );
        matmul_a_bt(&mut self.logits, &self.xf_norm, embed, m, c, v);
    }

    /// Forward + mean-masked-cross-entropy. Returns the loss.
    pub fn loss(&mut self, p: &Params, tokens: &[u32], targets: &[usize], mask: &[bool]) -> f32 {
        self.forward(p, tokens);
        let m = self.batch * self.seq;
        let (loss, _) = ops::cross_entropy_rows(
            &mut self.dlogits,
            &self.logits,
            targets,
            mask,
            m,
            self.cfg.vocab_size,
        );
        loss
    }

    /// Forward + backward. Gradients *accumulate* into `grad` (same layout
    /// as `p.data`); caller zeroes between optimizer steps. Returns the
    /// loss.
    pub fn loss_and_grad(
        &mut self,
        p: &Params,
        tokens: &[u32],
        targets: &[usize],
        mask: &[bool],
        grad: &mut [f32],
    ) -> f32 {
        assert_eq!(grad.len(), p.data.len());
        let loss = self.loss(p, tokens, targets, mask);
        self.backward(p, tokens, grad);
        loss
    }

    /// Backward pass (requires `loss` to have just run).
    fn backward(&mut self, p: &Params, tokens: &[u32], grad: &mut [f32]) {
        let (b, t) = (self.batch, self.seq);
        let m = b * t;
        let c = self.cfg.d_model;
        let f = self.cfg.d_ff;
        let v = self.cfg.vocab_size;
        let h = self.cfg.n_heads;
        let hs = self.cfg.head_dim();
        let embed_range = p.layout.embed.clone();
        let final_norm_range = p.layout.final_norm.clone();

        // LM head (tied): d_xf_norm = dlogits · Emb ; dEmb += dlogitsᵀ · xf.
        matmul(&mut self.dx_a, &self.dlogits, p.view(&embed_range), m, v, c);
        matmul_at_b_acc(
            &mut grad[embed_range.clone()],
            &self.dlogits,
            &self.xf_norm,
            v,
            m,
            c,
        );
        // Final RMSNorm backward → dx_b holds d(x_L).
        self.dx_b.fill(0.0);
        ops::rmsnorm_rows_backward(
            &mut self.dx_b,
            &mut grad[final_norm_range],
            &self.dx_a,
            &self.xs[self.cfg.n_layers],
            p.view(&p.layout.final_norm.clone()),
            &self.xf_inv,
            m,
            c,
        );

        for l in (0..self.cfg.n_layers).rev() {
            let lay = p.layout.layers[l].clone();
            // dx_b = d(x_{l+1}).
            // ---- FFN block ----
            // d_h_act = dxout · W_down  (W_down is [C, F])
            matmul(&mut self.d_act, &self.dx_b, p.view(&lay.w_down), m, c, f);
            matmul_at_b_acc(
                &mut grad[lay.w_down.clone()],
                &self.dx_b,
                &self.h_act[l],
                c,
                m,
                f,
            );
            // h_act = silu(gate) ⊙ up
            ops::mul(&mut self.d_up, &self.d_act, &self.h_silu[l]);
            ops::mul(&mut self.d_silu, &self.d_act, &self.h_up[l]);
            self.d_gate.fill(0.0);
            ops::silu_backward(&mut self.d_gate, &self.d_silu, &self.h_gate[l]);
            // d_ln2 = d_gate·W_gate + d_up·W_up (both [F, C]).
            matmul(&mut self.scratch_mc, &self.d_gate, p.view(&lay.w_gate), m, f, c);
            matmul_acc(&mut self.scratch_mc, &self.d_up, p.view(&lay.w_up), m, f, c);
            matmul_at_b_acc(
                &mut grad[lay.w_gate.clone()],
                &self.d_gate,
                &self.ln2_out[l],
                f,
                m,
                c,
            );
            matmul_at_b_acc(
                &mut grad[lay.w_up.clone()],
                &self.d_up,
                &self.ln2_out[l],
                f,
                m,
                c,
            );
            // RMSNorm2 backward into dxm, plus the residual path.
            self.dxm.fill(0.0);
            ops::rmsnorm_rows_backward(
                &mut self.dxm,
                &mut grad[lay.ffn_norm.clone()],
                &self.scratch_mc,
                &self.x_mid[l],
                p.view(&lay.ffn_norm),
                &self.ln2_inv[l],
                m,
                c,
            );
            ops::add_assign(&mut self.dxm, &self.dx_b);
            // ---- attention block ----
            // d_att_out = dxm · Wo ; gWo += dxmᵀ · att_out.
            matmul(&mut self.scratch_mc, &self.dxm, p.view(&lay.wo), m, c, c);
            matmul_at_b_acc(
                &mut grad[lay.wo.clone()],
                &self.dxm,
                &self.att_out[l],
                c,
                m,
                c,
            );
            let scale = 1.0 / (hs as f32).sqrt();
            for bi in 0..b {
                for hi in 0..h {
                    gather_head(&self.scratch_mc, &mut self.d_oh, bi, hi, t, c, hs);
                    gather_head(&self.k[l], &mut self.kh, bi, hi, t, c, hs);
                    gather_head(&self.v[l], &mut self.vh, bi, hi, t, c, hs);
                    gather_head(&self.q[l], &mut self.qh, bi, hi, t, c, hs);
                    let att_slot = (bi * h + hi) * t * t;
                    let att = &self.att[l][att_slot..att_slot + t * t];
                    // out = att · v  →  d_att = d_out · vᵀ ; d_v = attᵀ·d_out
                    matmul_a_bt(&mut self.d_sc, &self.d_oh, &self.vh, t, hs, t);
                    matmul_at_b(&mut self.d_vh, att, &self.d_oh, t, t, hs);
                    // softmax backward.
                    self.d_sc_pre.fill(0.0);
                    ops::softmax_rows_backward(&mut self.d_sc_pre, att, &self.d_sc, t, t);
                    // masked (j > i) entries have att = 0 → gradient 0.
                    ops::scale(&mut self.d_sc_pre, scale);
                    // scores_pre = q·kᵀ → d_q = d_pre·k ; d_k = d_preᵀ·q
                    matmul(&mut self.d_qh, &self.d_sc_pre, &self.kh, t, t, hs);
                    matmul_at_b(&mut self.d_kh, &self.d_sc_pre, &self.qh, t, t, hs);
                    scatter_head(&self.d_qh, &mut self.d_q, bi, hi, t, c, hs);
                    scatter_head(&self.d_kh, &mut self.d_k, bi, hi, t, c, hs);
                    scatter_head(&self.d_vh, &mut self.d_v, bi, hi, t, c, hs);
                }
            }
            // Un-rotate gradients (RoPE backward = rotation by −angle).
            self.apply_rope_backward();
            // d_ln1 = d_q·Wq + d_k·Wk + d_v·Wv ; weight grads.
            matmul(&mut self.scratch_mc, &self.d_q, p.view(&lay.wq), m, c, c);
            matmul_acc(&mut self.scratch_mc, &self.d_k, p.view(&lay.wk), m, c, c);
            matmul_acc(&mut self.scratch_mc, &self.d_v, p.view(&lay.wv), m, c, c);
            matmul_at_b_acc(&mut grad[lay.wq.clone()], &self.d_q, &self.ln1_out[l], c, m, c);
            matmul_at_b_acc(&mut grad[lay.wk.clone()], &self.d_k, &self.ln1_out[l], c, m, c);
            matmul_at_b_acc(&mut grad[lay.wv.clone()], &self.d_v, &self.ln1_out[l], c, m, c);
            // RMSNorm1 backward into dx_a (which becomes d(x_l)), plus the
            // residual path from dxm.
            self.dx_a.fill(0.0);
            ops::rmsnorm_rows_backward(
                &mut self.dx_a,
                &mut grad[lay.attn_norm.clone()],
                &self.scratch_mc,
                &self.xs[l],
                p.view(&lay.attn_norm),
                &self.ln1_inv[l],
                m,
                c,
            );
            ops::add_assign(&mut self.dx_a, &self.dxm);
            std::mem::swap(&mut self.dx_a, &mut self.dx_b);
        }

        // Embedding backward (dx_b = d(x_0)).
        let gembed = &mut grad[embed_range];
        for (i, &tok) in tokens.iter().enumerate() {
            let tok = tok as usize;
            let src = &self.dx_b[i * c..(i + 1) * c];
            let dst = &mut gembed[tok * c..(tok + 1) * c];
            ops::add_assign(dst, src);
        }
    }

    /// Apply RoPE to `self.q[l]` and `self.k[l]` in place.
    fn apply_rope(&mut self, l: usize, _backward: bool) {
        let (b, t) = (self.batch, self.seq);
        let c = self.cfg.d_model;
        let h = self.cfg.n_heads;
        let hs = self.cfg.head_dim();
        for buf in [&mut self.q[l], &mut self.k[l]] {
            rope_rotate(buf, &self.rope_cos, &self.rope_sin, b, t, c, h, hs, false);
        }
    }

    /// Apply inverse RoPE to the gradient buffers `d_q`, `d_k`.
    fn apply_rope_backward(&mut self) {
        let (b, t) = (self.batch, self.seq);
        let c = self.cfg.d_model;
        let h = self.cfg.n_heads;
        let hs = self.cfg.head_dim();
        for buf in [&mut self.d_q, &mut self.d_k] {
            rope_rotate(buf, &self.rope_cos, &self.rope_sin, b, t, c, h, hs, true);
        }
    }

    /// Mean loss over several *micro-batches* already flattened by the
    /// caller; convenience for gradient-accumulation tests.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }
}

/// Precompute RoPE rotation tables for positions `0..max_seq`.
fn rope_tables(max_seq: usize, head_dim: usize) -> (Vec<f32>, Vec<f32>) {
    let half = head_dim / 2;
    let mut cos = vec![0.0f32; max_seq * half];
    let mut sin = vec![0.0f32; max_seq * half];
    for pos in 0..max_seq {
        for i in 0..half {
            let freq = 1.0 / ROPE_THETA.powf(2.0 * i as f32 / head_dim as f32);
            let angle = pos as f32 * freq;
            cos[pos * half + i] = angle.cos();
            sin[pos * half + i] = angle.sin();
        }
    }
    (cos, sin)
}

/// Rotate (or un-rotate, when `inverse`) the per-head pairs of a `[B*T, C]`
/// buffer in place.
#[allow(clippy::too_many_arguments)]
fn rope_rotate(
    buf: &mut [f32],
    cos: &[f32],
    sin: &[f32],
    b: usize,
    t: usize,
    c: usize,
    h: usize,
    hs: usize,
    inverse: bool,
) {
    let half = hs / 2;
    for bi in 0..b {
        for pos in 0..t {
            let row = (bi * t + pos) * c;
            for hi in 0..h {
                let base = row + hi * hs;
                for i in 0..half {
                    let (co, mut si) = (cos[pos * half + i], sin[pos * half + i]);
                    if inverse {
                        si = -si;
                    }
                    let x0 = buf[base + 2 * i];
                    let x1 = buf[base + 2 * i + 1];
                    buf[base + 2 * i] = x0 * co - x1 * si;
                    buf[base + 2 * i + 1] = x0 * si + x1 * co;
                }
            }
        }
    }
}

/// Copy head `hi` of batch `bi` from `[B*T, C]` into a contiguous
/// `[T, hs]` tile.
fn gather_head(src: &[f32], dst: &mut [f32], bi: usize, hi: usize, t: usize, c: usize, hs: usize) {
    for pos in 0..t {
        let s = (bi * t + pos) * c + hi * hs;
        dst[pos * hs..(pos + 1) * hs].copy_from_slice(&src[s..s + hs]);
    }
}

/// Scatter a contiguous `[T, hs]` tile back into head `hi` of batch `bi`.
fn scatter_head(src: &[f32], dst: &mut [f32], bi: usize, hi: usize, t: usize, c: usize, hs: usize) {
    for pos in 0..t {
        let d = (bi * t + pos) * c + hi * hs;
        dst[d..d + hs].copy_from_slice(&src[pos * hs..(pos + 1) * hs]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_prng::Rng;

    fn tiny_setup(b: usize, t: usize) -> (Params, TrainContext, Vec<u32>, Vec<usize>, Vec<bool>) {
        let cfg = ModelConfig::tiny(24);
        let p = Params::init(cfg, &mut Rng::seed_from(3));
        let ctx = TrainContext::new(cfg, b, t);
        let mut rng = Rng::seed_from(7);
        let tokens: Vec<u32> = (0..b * t).map(|_| rng.below(24) as u32).collect();
        let targets: Vec<usize> = (0..b * t).map(|_| rng.index(24)).collect();
        let mask: Vec<bool> = (0..b * t).map(|i| i % 3 != 0).collect();
        (p, ctx, tokens, targets, mask)
    }

    #[test]
    fn forward_produces_finite_logits() {
        let (p, mut ctx, tokens, _, _) = tiny_setup(2, 5);
        ctx.forward(&p, &tokens);
        assert!(ctx.logits.iter().all(|x| x.is_finite()));
        // logits must not be all equal (model is non-degenerate)
        let first = ctx.logits[0];
        assert!(ctx.logits.iter().any(|&x| (x - first).abs() > 1e-9));
    }

    #[test]
    fn loss_near_uniform_at_init() {
        let (p, mut ctx, tokens, targets, mask) = tiny_setup(2, 6);
        let loss = ctx.loss(&p, &tokens, &targets, &mask);
        let uniform = (24f32).ln();
        assert!((loss - uniform).abs() < 0.5, "loss {loss} vs ln(V) {uniform}");
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past_logits() {
        let cfg = ModelConfig::tiny(24);
        let p = Params::init(cfg, &mut Rng::seed_from(1));
        let mut ctx = TrainContext::new(cfg, 1, 6);
        let a: Vec<u32> = vec![1, 2, 3, 4, 5, 6];
        let b: Vec<u32> = vec![1, 2, 3, 9, 9, 9]; // change only positions ≥ 3
        ctx.forward(&p, &a);
        let logits_a = ctx.logits[..3 * 24].to_vec();
        ctx.forward(&p, &b);
        let logits_b = ctx.logits[..3 * 24].to_vec();
        for (x, y) in logits_a.iter().zip(logits_b.iter()) {
            assert!((x - y).abs() < 1e-5, "causality violated: {x} vs {y}");
        }
    }

    #[test]
    fn batch_rows_are_independent() {
        let cfg = ModelConfig::tiny(24);
        let p = Params::init(cfg, &mut Rng::seed_from(2));
        let mut ctx1 = TrainContext::new(cfg, 1, 4);
        let mut ctx2 = TrainContext::new(cfg, 2, 4);
        let row: Vec<u32> = vec![3, 1, 4, 1];
        let two: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        ctx1.forward(&p, &row);
        ctx2.forward(&p, &two);
        for i in 0..4 * 24 {
            assert!((ctx1.logits[i] - ctx2.logits[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn rope_rotation_is_invertible() {
        let (cos, sin) = rope_tables(8, 4);
        let mut buf: Vec<f32> = (0..2 * 8 * 8).map(|i| (i as f32 * 0.3).sin()).collect();
        let orig = buf.clone();
        rope_rotate(&mut buf, &cos, &sin, 2, 8, 8, 2, 4, false);
        assert_ne!(buf, orig, "rotation should change values");
        rope_rotate(&mut buf, &cos, &sin, 2, 8, 8, 2, 4, true);
        for (a, b) in buf.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn rope_preserves_norm() {
        let (cos, sin) = rope_tables(8, 4);
        let mut buf: Vec<f32> = (0..8 * 8).map(|i| (i as f32 * 0.7).cos()).collect();
        let norm_before: f32 = buf.iter().map(|x| x * x).sum();
        rope_rotate(&mut buf, &cos, &sin, 1, 8, 8, 2, 4, false);
        let norm_after: f32 = buf.iter().map(|x| x * x).sum();
        assert!((norm_before - norm_after).abs() < 1e-3);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let t = 3;
        let c = 8;
        let hs = 4;
        let src: Vec<f32> = (0..2 * t * c).map(|i| i as f32).collect();
        let mut dst = vec![0.0; 2 * t * c];
        let mut tile = vec![0.0; t * hs];
        for bi in 0..2 {
            for hi in 0..2 {
                gather_head(&src, &mut tile, bi, hi, t, c, hs);
                scatter_head(&tile, &mut dst, bi, hi, t, c, hs);
            }
        }
        assert_eq!(src, dst);
    }

    /// The critical test: the full-model analytic gradient matches central
    /// finite differences on every parameter.
    #[test]
    fn gradcheck_full_model() {
        let cfg = ModelConfig {
            vocab_size: 11,
            d_model: 8,
            n_layers: 2,
            n_heads: 2,
            d_ff: 10,
            max_seq: 8,
        };
        let mut p = Params::init(cfg, &mut Rng::seed_from(9));
        let mut ctx = TrainContext::new(cfg, 2, 4);
        let tokens: Vec<u32> = vec![1, 5, 2, 9, 3, 3, 7, 0];
        let targets: Vec<usize> = vec![5, 2, 9, 4, 3, 7, 0, 1];
        let mask = vec![true, true, false, true, true, true, true, false];
        let mut grad = vec![0.0f32; p.data.len()];
        ctx.loss_and_grad(&p, &tokens, &targets, &mask, &mut grad);
        let report = astro_tensor::gradcheck::check_gradient(
            &mut p.data,
            &grad,
            2e-3,
            |data| {
                let pp = Params {
                    cfg,
                    layout: crate::params::Layout::new(&cfg),
                    data: data.to_vec(),
                };
                let mut c2 = TrainContext::new(cfg, 2, 4);
                c2.loss(&pp, &tokens, &targets, &mask)
            },
        );
        assert!(
            report.max_rel_err < 2e-2,
            "gradient check failed: {report:?}"
        );
    }

    #[test]
    fn grad_accumulates_across_calls() {
        let (p, mut ctx, tokens, targets, mask) = tiny_setup(1, 4);
        let mut g1 = vec![0.0f32; p.data.len()];
        ctx.loss_and_grad(&p, &tokens, &targets, &mask, &mut g1);
        let mut g2 = g1.clone();
        ctx.loss_and_grad(&p, &tokens, &targets, &mask, &mut g2);
        for (a, b) in g1.iter().zip(g2.iter()) {
            assert!((2.0 * a - b).abs() < 1e-4 + 1e-3 * a.abs(), "{a} {b}");
        }
    }

    #[test]
    fn training_step_reduces_loss() {
        // A few plain-SGD steps on a fixed batch must reduce the loss —
        // end-to-end sanity that gradients point downhill.
        let (mut p, mut ctx, tokens, targets, mask) = tiny_setup(2, 6);
        let mut grad = vec![0.0f32; p.data.len()];
        let l0 = ctx.loss(&p, &tokens, &targets, &mask);
        for _ in 0..40 {
            grad.fill(0.0);
            ctx.loss_and_grad(&p, &tokens, &targets, &mask, &mut grad);
            for (w, g) in p.data.iter_mut().zip(grad.iter()) {
                *w -= 0.05 * g;
            }
        }
        let l1 = ctx.loss(&p, &tokens, &targets, &mask);
        assert!(l1 < l0 * 0.8, "loss did not drop: {l0} → {l1}");
    }

    #[test]
    #[should_panic]
    fn seq_longer_than_max_panics() {
        let cfg = ModelConfig::tiny(16);
        TrainContext::new(cfg, 1, cfg.max_seq + 1);
    }
}
