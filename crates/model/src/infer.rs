//! KV-cache incremental decoding.
//!
//! [`InferenceSession`] feeds one token at a time, caching per-layer keys
//! and values so each step costs `O(params + pos·d_model)` — the standard
//! autoregressive-serving structure. Used by both the full-instruct method
//! (free generation) and the next-token methods (single logit readout
//! after the prompt).

use crate::params::Params;
use crate::{ModelConfig, ROPE_THETA};
use astro_tensor::matmul::dot;
use astro_tensor::ops;

/// Typed failure of an [`InferenceSession`] step.
///
/// Returned by [`InferenceSession::try_feed`] so callers that score many
/// independent prompts (the `astro-serve` evaluation engine) can surface a
/// full KV cache as a *per-question* error instead of aborting a whole
/// worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The KV cache is full: the session already holds `max_seq` tokens.
    CacheFull {
        /// Position the rejected token would have occupied.
        pos: usize,
        /// The session's capacity (`ModelConfig::max_seq`).
        max_seq: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::CacheFull { pos, max_seq } => {
                write!(f, "KV cache full: position {pos} reached max_seq {max_seq}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Incremental decoding state for one sequence.
///
/// `Clone` forks the session: both copies share the consumed prefix and
/// can continue independently — used by the evaluation code to score
/// several answer continuations against one prompt without re-encoding
/// it.
#[derive(Clone)]
pub struct InferenceSession {
    cfg: ModelConfig,
    pos: usize,
    /// Per-layer key cache `[max_seq, C]`.
    k_cache: Vec<Vec<f32>>,
    /// Per-layer value cache `[max_seq, C]`.
    v_cache: Vec<Vec<f32>>,
    // step scratch
    x: Vec<f32>,
    ln: Vec<f32>,
    ln_inv: Vec<f32>,
    q: Vec<f32>,
    attn_out: Vec<f32>,
    proj: Vec<f32>,
    gate: Vec<f32>,
    up: Vec<f32>,
    act: Vec<f32>,
    scores: Vec<f32>,
    /// Logits after the last `feed`.
    logits: Vec<f32>,
    rope_cos: Vec<f32>,
    rope_sin: Vec<f32>,
}

impl InferenceSession {
    /// Allocate a session for a model configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        cfg.validate().expect("invalid model config");
        let c = cfg.d_model;
        let f = cfg.d_ff;
        let half = cfg.head_dim() / 2;
        let mut rope_cos = vec![0.0f32; cfg.max_seq * half];
        let mut rope_sin = vec![0.0f32; cfg.max_seq * half];
        for pos in 0..cfg.max_seq {
            for i in 0..half {
                let freq = 1.0 / ROPE_THETA.powf(2.0 * i as f32 / cfg.head_dim() as f32);
                let angle = pos as f32 * freq;
                rope_cos[pos * half + i] = angle.cos();
                rope_sin[pos * half + i] = angle.sin();
            }
        }
        InferenceSession {
            cfg,
            pos: 0,
            k_cache: (0..cfg.n_layers).map(|_| vec![0.0; cfg.max_seq * c]).collect(),
            v_cache: (0..cfg.n_layers).map(|_| vec![0.0; cfg.max_seq * c]).collect(),
            x: vec![0.0; c],
            ln: vec![0.0; c],
            ln_inv: vec![0.0; 1],
            q: vec![0.0; c],
            attn_out: vec![0.0; c],
            proj: vec![0.0; c],
            gate: vec![0.0; f],
            up: vec![0.0; f],
            act: vec![0.0; f],
            scores: vec![0.0; cfg.max_seq],
            logits: vec![0.0; cfg.vocab_size],
            rope_cos,
            rope_sin,
        }
    }

    /// Current position (number of tokens consumed).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining capacity before `max_seq` is reached.
    pub fn remaining(&self) -> usize {
        self.cfg.max_seq - self.pos
    }

    /// Clear the cache and restart at position 0.
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// The configuration this session was allocated for.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Overwrite this session's state with `other`'s, reusing this
    /// session's allocations — the no-alloc fork used by pool workers that
    /// score thousands of prompts. Only the consumed KV rows and the last
    /// logits are copied; scratch buffers are overwritten by the next
    /// `feed` anyway. Both sessions must share a configuration.
    pub fn assign_from(&mut self, other: &InferenceSession) {
        assert!(
            self.cfg == other.cfg,
            "assign_from across configs: {:?} vs {:?}",
            self.cfg,
            other.cfg
        );
        self.pos = other.pos;
        let n = other.pos * self.cfg.d_model;
        for l in 0..self.cfg.n_layers {
            self.k_cache[l][..n].copy_from_slice(&other.k_cache[l][..n]);
            self.v_cache[l][..n].copy_from_slice(&other.v_cache[l][..n]);
        }
        self.logits.copy_from_slice(&other.logits);
    }

    /// Feed one token; returns the logits for the *next* token, or
    /// [`SessionError::CacheFull`] when the session already holds
    /// `max_seq` tokens. This is the fallible entry point batch engines
    /// use to turn an over-long prompt into a per-prompt error.
    pub fn try_feed(&mut self, p: &Params, token: u32) -> Result<&[f32], SessionError> {
        if self.pos >= self.cfg.max_seq {
            return Err(SessionError::CacheFull {
                pos: self.pos,
                max_seq: self.cfg.max_seq,
            });
        }
        Ok(self.feed_unchecked(p, token))
    }

    /// Feed one token; returns the logits for the *next* token.
    ///
    /// # Panics
    /// Panics when the cache is full (`position() == max_seq`); use
    /// [`Self::try_feed`] to handle that case as a typed error.
    pub fn feed(&mut self, p: &Params, token: u32) -> &[f32] {
        assert!(
            self.pos < self.cfg.max_seq,
            "KV cache full at {}",
            self.pos
        );
        self.feed_unchecked(p, token)
    }

    /// The step kernel; capacity has already been checked.
    fn feed_unchecked(&mut self, p: &Params, token: u32) -> &[f32] {
        let c = self.cfg.d_model;
        let f = self.cfg.d_ff;
        let h = self.cfg.n_heads;
        let hs = self.cfg.head_dim();
        let half = hs / 2;
        let pos = self.pos;
        let embed = p.view(&p.layout.embed.clone());
        let tok = token as usize;
        assert!(tok < self.cfg.vocab_size, "token {tok} out of vocab");
        self.x.copy_from_slice(&embed[tok * c..(tok + 1) * c]);

        for l in 0..self.cfg.n_layers {
            let lay = p.layout.layers[l].clone();
            ops::rmsnorm_rows(
                &mut self.ln,
                &mut self.ln_inv,
                &self.x,
                p.view(&lay.attn_norm),
                1,
                c,
                1e-5,
            );
            // q into scratch; k,v straight into the cache row for `pos`.
            row_matvec(&mut self.q, &self.ln, p.view(&lay.wq), c, c);
            {
                let krow = &mut self.k_cache[l][pos * c..(pos + 1) * c];
                row_matvec(krow, &self.ln, p.view(&lay.wk), c, c);
            }
            {
                let vrow = &mut self.v_cache[l][pos * c..(pos + 1) * c];
                row_matvec(vrow, &self.ln, p.view(&lay.wv), c, c);
            }
            // RoPE on q and the new k row.
            for hi in 0..h {
                let base = hi * hs;
                for i in 0..half {
                    let co = self.rope_cos[pos * half + i];
                    let si = self.rope_sin[pos * half + i];
                    let rot = |buf: &mut [f32]| {
                        let x0 = buf[base + 2 * i];
                        let x1 = buf[base + 2 * i + 1];
                        buf[base + 2 * i] = x0 * co - x1 * si;
                        buf[base + 2 * i + 1] = x0 * si + x1 * co;
                    };
                    rot(&mut self.q);
                    rot(&mut self.k_cache[l][pos * c..(pos + 1) * c]);
                }
            }
            // Attention over cached positions 0..=pos.
            let scale = 1.0 / (hs as f32).sqrt();
            for hi in 0..h {
                let qh = &self.q[hi * hs..(hi + 1) * hs];
                let n = pos + 1;
                for (j, s) in self.scores[..n].iter_mut().enumerate() {
                    let kh = &self.k_cache[l][j * c + hi * hs..j * c + hi * hs + hs];
                    *s = dot(qh, kh) * scale;
                }
                ops::softmax_rows(&mut self.scores[..n], 1, n);
                let out = &mut self.attn_out[hi * hs..(hi + 1) * hs];
                out.fill(0.0);
                for j in 0..n {
                    let w = self.scores[j];
                    let vh = &self.v_cache[l][j * c + hi * hs..j * c + hi * hs + hs];
                    for (o, &vv) in out.iter_mut().zip(vh.iter()) {
                        *o += w * vv;
                    }
                }
            }
            // Output projection + residual.
            row_matvec(&mut self.proj, &self.attn_out, p.view(&lay.wo), c, c);
            for i in 0..c {
                self.x[i] += self.proj[i];
            }
            // FFN.
            ops::rmsnorm_rows(
                &mut self.ln,
                &mut self.ln_inv,
                &self.x,
                p.view(&lay.ffn_norm),
                1,
                c,
                1e-5,
            );
            row_matvec(&mut self.gate, &self.ln, p.view(&lay.w_gate), c, f);
            row_matvec(&mut self.up, &self.ln, p.view(&lay.w_up), c, f);
            for i in 0..f {
                self.act[i] = self.gate[i] * ops::sigmoid(self.gate[i]) * self.up[i];
            }
            row_matvec(&mut self.proj, &self.act, p.view(&lay.w_down), f, c);
            for i in 0..c {
                self.x[i] += self.proj[i];
            }
        }

        ops::rmsnorm_rows(
            &mut self.ln,
            &mut self.ln_inv,
            &self.x,
            p.view(&p.layout.final_norm.clone()),
            1,
            c,
            1e-5,
        );
        // Tied LM head: logits[v] = ln · embed_row(v).
        for (vv, lg) in self.logits.iter_mut().enumerate() {
            *lg = dot(&self.ln, &embed[vv * c..(vv + 1) * c]);
        }
        self.pos += 1;
        &self.logits
    }

    /// Feed a whole prompt; returns the logits after its last token.
    pub fn feed_prompt(&mut self, p: &Params, tokens: &[u32]) -> Vec<f32> {
        assert!(!tokens.is_empty(), "empty prompt");
        for &t in tokens {
            self.feed(p, t);
        }
        self.logits.clone()
    }

    /// Logits from the most recent `feed`.
    pub fn last_logits(&self) -> &[f32] {
        &self.logits
    }
}

/// `y = x · Wᵀ` for a single row (`W` is `[out, in]` row-major).
fn row_matvec(y: &mut [f32], x: &[f32], w: &[f32], d_in: usize, d_out: usize) {
    debug_assert_eq!(x.len(), d_in);
    debug_assert_eq!(y.len(), d_out);
    debug_assert_eq!(w.len(), d_in * d_out);
    for (o, yo) in y.iter_mut().enumerate() {
        *yo = dot(x, &w[o * d_in..(o + 1) * d_in]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::TrainContext;
    use astro_prng::Rng;

    #[test]
    fn incremental_matches_batched_forward() {
        let cfg = ModelConfig::tiny(24);
        let p = Params::init(cfg, &mut Rng::seed_from(4));
        let tokens: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        // Batched forward.
        let mut ctx = TrainContext::new(cfg, 1, tokens.len());
        ctx.forward(&p, &tokens);
        // Incremental.
        let mut sess = InferenceSession::new(cfg);
        for (i, &t) in tokens.iter().enumerate() {
            let logits = sess.feed(&p, t).to_vec();
            let batch_row = &ctx.logits[i * 24..(i + 1) * 24];
            for (a, b) in logits.iter().zip(batch_row.iter()) {
                assert!(
                    (a - b).abs() < 1e-3,
                    "pos {i}: incremental {a} vs batched {b}"
                );
            }
        }
    }

    #[test]
    fn reset_restarts_cleanly() {
        let cfg = ModelConfig::tiny(16);
        let p = Params::init(cfg, &mut Rng::seed_from(5));
        let mut sess = InferenceSession::new(cfg);
        let first = sess.feed(&p, 3).to_vec();
        sess.feed(&p, 7);
        sess.reset();
        assert_eq!(sess.position(), 0);
        let again = sess.feed(&p, 3).to_vec();
        for (a, b) in first.iter().zip(again.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn feed_prompt_returns_last_logits() {
        let cfg = ModelConfig::tiny(16);
        let p = Params::init(cfg, &mut Rng::seed_from(6));
        let mut a = InferenceSession::new(cfg);
        let via_prompt = a.feed_prompt(&p, &[1, 2, 3]);
        let mut b = InferenceSession::new(cfg);
        b.feed(&p, 1);
        b.feed(&p, 2);
        let step = b.feed(&p, 3).to_vec();
        assert_eq!(via_prompt, step);
        assert_eq!(a.position(), 3);
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let cfg = ModelConfig::tiny(16);
        let p = Params::init(cfg, &mut Rng::seed_from(7));
        let mut sess = InferenceSession::new(cfg);
        for _ in 0..=cfg.max_seq {
            sess.feed(&p, 1);
        }
    }

    #[test]
    fn try_feed_returns_cache_full_instead_of_panicking() {
        let cfg = ModelConfig::tiny(16);
        let p = Params::init(cfg, &mut Rng::seed_from(7));
        let mut sess = InferenceSession::new(cfg);
        for _ in 0..cfg.max_seq {
            sess.try_feed(&p, 1).unwrap();
        }
        let err = sess.try_feed(&p, 1).unwrap_err();
        assert_eq!(
            err,
            SessionError::CacheFull {
                pos: cfg.max_seq,
                max_seq: cfg.max_seq
            }
        );
        // The session is still usable after the error (state unchanged).
        assert_eq!(sess.position(), cfg.max_seq);
        sess.reset();
        sess.try_feed(&p, 1).unwrap();
    }

    #[test]
    fn try_feed_matches_feed() {
        let cfg = ModelConfig::tiny(16);
        let p = Params::init(cfg, &mut Rng::seed_from(9));
        let mut a = InferenceSession::new(cfg);
        let mut b = InferenceSession::new(cfg);
        for &t in &[3u32, 1, 4, 1, 5] {
            let la = a.feed(&p, t).to_vec();
            let lb = b.try_feed(&p, t).unwrap().to_vec();
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn assign_from_forks_without_allocating_fresh_state() {
        let cfg = ModelConfig::tiny(16);
        let p = Params::init(cfg, &mut Rng::seed_from(10));
        let mut src = InferenceSession::new(cfg);
        src.feed_prompt(&p, &[2, 7, 1]);
        // A fork via assign_from must continue exactly like a clone.
        let mut via_assign = InferenceSession::new(cfg);
        // Dirty the target first so stale state would be caught.
        via_assign.feed_prompt(&p, &[9, 9, 9, 9, 9]);
        via_assign.assign_from(&src);
        assert_eq!(via_assign.position(), 3);
        assert_eq!(via_assign.last_logits(), src.last_logits());
        let mut via_clone = src.clone();
        let a = via_assign.feed(&p, 5).to_vec();
        let b = via_clone.feed(&p, 5).to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn session_error_displays_positions() {
        let e = SessionError::CacheFull { pos: 32, max_seq: 32 };
        let s = format!("{e}");
        assert!(s.contains("32"), "{s}");
    }

    #[test]
    fn remaining_counts_down() {
        let cfg = ModelConfig::tiny(16);
        let p = Params::init(cfg, &mut Rng::seed_from(8));
        let mut sess = InferenceSession::new(cfg);
        let r0 = sess.remaining();
        sess.feed(&p, 0);
        assert_eq!(sess.remaining(), r0 - 1);
    }
}
