//! Flat parameter storage with a computed layout.
//!
//! All weights live in one `Vec<f32>` so that (a) the AdamW optimizer is a
//! single loop, (b) the data-parallel ring all-reduce gets one contiguous
//! gradient buffer, and (c) checkpointing is a memcpy. The [`Layout`]
//! struct maps named tensors to sub-ranges.
//!
//! Weight matrices are row-major `[out_features, in_features]`, applied as
//! `y = x · Wᵀ` (`matmul_a_bt`), the orientation real LLaMA checkpoints
//! use.

use crate::ModelConfig;
use astro_prng::Rng;

/// Byte offsets (in f32 elements) of every tensor in the flat buffer.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Token embedding `[vocab, d_model]` (tied LM head).
    pub embed: std::ops::Range<usize>,
    /// Per-layer tensor ranges.
    pub layers: Vec<LayerLayout>,
    /// Final RMSNorm gain `[d_model]`.
    pub final_norm: std::ops::Range<usize>,
    /// Total element count.
    pub total: usize,
}

/// Ranges for one transformer block.
#[derive(Clone, Debug)]
pub struct LayerLayout {
    /// Attention RMSNorm gain `[d]`.
    pub attn_norm: std::ops::Range<usize>,
    /// Query projection `[d, d]`.
    pub wq: std::ops::Range<usize>,
    /// Key projection `[d, d]`.
    pub wk: std::ops::Range<usize>,
    /// Value projection `[d, d]`.
    pub wv: std::ops::Range<usize>,
    /// Output projection `[d, d]`.
    pub wo: std::ops::Range<usize>,
    /// FFN RMSNorm gain `[d]`.
    pub ffn_norm: std::ops::Range<usize>,
    /// SwiGLU gate projection `[ff, d]`.
    pub w_gate: std::ops::Range<usize>,
    /// SwiGLU up projection `[ff, d]`.
    pub w_up: std::ops::Range<usize>,
    /// SwiGLU down projection `[d, ff]`.
    pub w_down: std::ops::Range<usize>,
}

impl Layout {
    /// Compute the layout for a configuration.
    pub fn new(cfg: &ModelConfig) -> Self {
        let d = cfg.d_model;
        let ff = cfg.d_ff;
        let mut off = 0usize;
        let mut take = |n: usize| {
            let r = off..off + n;
            off += n;
            r
        };
        let embed = take(cfg.vocab_size * d);
        let layers = (0..cfg.n_layers)
            .map(|_| LayerLayout {
                attn_norm: take(d),
                wq: take(d * d),
                wk: take(d * d),
                wv: take(d * d),
                wo: take(d * d),
                ffn_norm: take(d),
                w_gate: take(ff * d),
                w_up: take(ff * d),
                w_down: take(d * ff),
            })
            .collect();
        let final_norm = take(d);
        Layout {
            embed,
            layers,
            final_norm,
            total: off,
        }
    }
}

/// A model's parameters: configuration + flat weight buffer.
#[derive(Clone, Debug)]
pub struct Params {
    /// Architecture.
    pub cfg: ModelConfig,
    /// Tensor layout into `data`.
    pub layout: Layout,
    /// The flat weight buffer.
    pub data: Vec<f32>,
}

impl Params {
    /// Allocate zero-initialised parameters.
    pub fn zeros(cfg: ModelConfig) -> Self {
        cfg.validate().expect("invalid model config");
        let layout = Layout::new(&cfg);
        let data = vec![0.0; layout.total];
        Params { cfg, layout, data }
    }

    /// GPT-2-style initialisation: normals scaled by `0.02`, residual
    /// output projections (`wo`, `w_down`) additionally scaled by
    /// `1/sqrt(2·n_layers)`, norm gains set to 1.
    pub fn init(cfg: ModelConfig, rng: &mut Rng) -> Self {
        let mut p = Params::zeros(cfg);
        let std = 0.02f32;
        let resid_scale = 1.0 / ((2 * cfg.n_layers) as f32).sqrt();
        for v in &mut p.data[p.layout.embed.clone()] {
            *v = rng.gauss_f32() * std;
        }
        let layers = p.layout.layers.clone();
        for l in &layers {
            for r in [&l.wq, &l.wk, &l.wv, &l.w_gate, &l.w_up] {
                for v in &mut p.data[r.start..r.end] {
                    *v = rng.gauss_f32() * std;
                }
            }
            for r in [&l.wo, &l.w_down] {
                for v in &mut p.data[r.start..r.end] {
                    *v = rng.gauss_f32() * std * resid_scale;
                }
            }
            for v in &mut p.data[l.attn_norm.clone()] {
                *v = 1.0;
            }
            for v in &mut p.data[l.ffn_norm.clone()] {
                *v = 1.0;
            }
        }
        for v in &mut p.data[p.layout.final_norm.clone()] {
            *v = 1.0;
        }
        p
    }

    /// Total parameter count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty (never, for a valid config).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// View a tensor range.
    pub fn view(&self, r: &std::ops::Range<usize>) -> &[f32] {
        &self.data[r.start..r.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tier;

    #[test]
    fn layout_is_contiguous_and_complete() {
        let cfg = ModelConfig::tiny(64);
        let l = Layout::new(&cfg);
        let mut covered = vec![false; l.total];
        let mut mark = |r: &std::ops::Range<usize>| {
            for i in r.clone() {
                assert!(!covered[i], "overlap at {i}");
                covered[i] = true;
            }
        };
        mark(&l.embed);
        for layer in &l.layers {
            for r in [
                &layer.attn_norm,
                &layer.wq,
                &layer.wk,
                &layer.wv,
                &layer.wo,
                &layer.ffn_norm,
                &layer.w_gate,
                &layer.w_up,
                &layer.w_down,
            ] {
                mark(r);
            }
        }
        mark(&l.final_norm);
        assert!(covered.iter().all(|&c| c), "layout leaves gaps");
    }

    #[test]
    fn param_count_formula() {
        let cfg = ModelConfig::tiny(64);
        let d = cfg.d_model;
        let ff = cfg.d_ff;
        let expect =
            64 * d + cfg.n_layers * (2 * d + 4 * d * d + 2 * ff * d + d * ff) + d;
        assert_eq!(cfg.param_count(), expect);
    }

    #[test]
    fn init_is_deterministic() {
        let cfg = ModelConfig::tiny(32);
        let a = Params::init(cfg, &mut Rng::seed_from(5));
        let b = Params::init(cfg, &mut Rng::seed_from(5));
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn init_sets_norm_gains_to_one() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(1));
        assert!(p.view(&p.layout.final_norm.clone()).iter().all(|&g| g == 1.0));
        for l in &p.layout.layers {
            assert!(p.data[l.attn_norm.clone()].iter().all(|&g| g == 1.0));
        }
    }

    #[test]
    fn init_weights_are_small_and_nonzero() {
        let cfg = ModelConfig::tier(Tier::S7b, 128);
        let p = Params::init(cfg, &mut Rng::seed_from(2));
        let embed = p.view(&p.layout.embed.clone());
        let nonzero = embed.iter().filter(|&&v| v != 0.0).count();
        assert!(nonzero > embed.len() / 2);
        assert!(embed.iter().all(|&v| v.abs() < 0.5));
    }

    #[test]
    fn residual_projections_scaled_down() {
        let cfg = ModelConfig::tiny(32);
        let p = Params::init(cfg, &mut Rng::seed_from(3));
        let l = &p.layout.layers[0];
        let var = |r: &std::ops::Range<usize>| {
            let s = &p.data[r.start..r.end];
            s.iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / s.len() as f64
        };
        assert!(var(&l.wo) < var(&l.wq), "wo should have smaller variance");
    }
}
