//! A LLaMA-architecture decoder-only transformer, from scratch.
//!
//! Faithful to the LLaMA recipe the paper's models use: pre-RMSNorm,
//! rotary position embeddings (RoPE) on queries/keys, multi-head causal
//! self-attention, SwiGLU feed-forward, weight-tied LM head. Implemented
//! llm.c-style with *manual* forward/backward passes over pre-allocated
//! arenas: no autograd graph, no per-step allocation, deterministic
//! accumulation order — and every backward pass is validated against
//! finite differences in the test suite.
//!
//! The paper's 7B/8B/70B models map to three *capacity tiers*
//! ([`ModelConfig::tier`]) whose widths/depths scale the same way the real
//! series does. Absolute parameter counts are minuscule (CPU-trainable),
//! but relative capacity — the variable the paper's
//! forgetting-vs-improvement contrast turns on — is preserved.
//!
//! Modules:
//! * [`params`] — flat parameter buffer + layout (a single `&mut [f32]`
//!   view makes the optimizer and the ring all-reduce trivial);
//! * [`forward`] — training-time forward + backward with loss masking;
//! * [`infer`] — KV-cache incremental decoding for generation and
//!   next-token logit evaluation;
//! * [`sample`] — greedy / temperature / top-k sampling;
//! * [`serial`] — binary checkpoints.

pub mod forward;
pub mod infer;
pub mod params;
pub mod sample;
pub mod serial;

pub use forward::TrainContext;
pub use infer::{InferenceSession, SessionError};
pub use params::Params;
pub use serial::CkptError;
pub use sample::{argmax, generate, sample_logits, SamplerConfig};

/// The capacity tiers standing in for the paper's model scales.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Stand-in for the LLaMA-2-7B class (smallest).
    S7b,
    /// Stand-in for the LLaMA-3-8B class (mid; the real 8B outscores the
    /// real 70B on the astronomy benchmark thanks to better pretraining —
    /// we give it more pretraining tokens, not more capacity).
    S8b,
    /// Stand-in for the LLaMA-2-70B class (largest capacity).
    S70b,
}

impl Tier {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::S7b => "7B-class",
            Tier::S8b => "8B-class",
            Tier::S70b => "70B-class",
        }
    }

    /// The nominal parameter count of the real model this tier stands in
    /// for, in billions (used by the GPU-hour cost model).
    pub fn nominal_params_b(self) -> f64 {
        match self {
            Tier::S7b => 7.0,
            Tier::S8b => 8.0,
            Tier::S70b => 70.0,
        }
    }
}

/// Architecture hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Vocabulary size (set from the tokenizer).
    pub vocab_size: usize,
    /// Residual-stream width.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Attention heads (`d_model % n_heads == 0`).
    pub n_heads: usize,
    /// SwiGLU hidden width.
    pub d_ff: usize,
    /// Maximum sequence length (RoPE table size, KV-cache capacity).
    pub max_seq: usize,
}

impl ModelConfig {
    /// Tier presets. Widths/depths follow the LLaMA family's relative
    /// scaling (≈20× parameters between the 7B and 70B classes).
    pub fn tier(tier: Tier, vocab_size: usize) -> Self {
        match tier {
            Tier::S7b => ModelConfig {
                vocab_size,
                d_model: 64,
                n_layers: 3,
                n_heads: 4,
                d_ff: 176,
                max_seq: 288,
            },
            Tier::S8b => ModelConfig {
                vocab_size,
                d_model: 96,
                n_layers: 4,
                n_heads: 4,
                d_ff: 256,
                max_seq: 288,
            },
            Tier::S70b => ModelConfig {
                vocab_size,
                d_model: 144,
                n_layers: 5,
                n_heads: 4,
                d_ff: 392,
                max_seq: 288,
            },
        }
    }

    /// A minimal configuration for unit tests and gradient checks.
    pub fn tiny(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            d_ff: 24,
            max_seq: 32,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(format!(
                "d_model {} not divisible by n_heads {}",
                self.d_model, self.n_heads
            ));
        }
        if !self.head_dim().is_multiple_of(2) {
            return Err(format!("head_dim {} must be even for RoPE", self.head_dim()));
        }
        if self.vocab_size == 0 || self.n_layers == 0 || self.max_seq == 0 {
            return Err("zero-sized dimension".to_string());
        }
        Ok(())
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        params::Layout::new(self).total
    }

    /// Approximate training FLOPs per token (forward + backward ≈ 6 ×
    /// matmul params + attention term), used by the cost model.
    pub fn train_flops_per_token(&self) -> f64 {
        let p = self.param_count() as f64;
        let attn = (self.n_layers * self.max_seq * self.d_model) as f64 * 2.0;
        6.0 * p + 6.0 * attn
    }

    /// Approximate inference FLOPs per token (forward only).
    pub fn infer_flops_per_token(&self) -> f64 {
        self.train_flops_per_token() / 3.0
    }

    /// Resident bytes of one [`infer::InferenceSession`] for this
    /// configuration: per-layer KV caches plus step scratch, logits and
    /// the RoPE tables. The `astro-serve` prefix cache derives its
    /// eviction budget (capped resident KV bytes) from this.
    pub fn session_bytes(&self) -> usize {
        let f32s = std::mem::size_of::<f32>();
        let kv = 2 * self.n_layers * self.max_seq * self.d_model;
        // x, ln, q, attn_out, proj (d_model each) + ln_inv.
        let step = 5 * self.d_model + 1;
        let ffn = 3 * self.d_ff;
        let scores = self.max_seq;
        let rope = 2 * self.max_seq * (self.head_dim() / 2);
        (kv + step + ffn + scores + self.vocab_size + rope) * f32s
    }
}

/// RoPE base frequency (LLaMA uses 10000).
pub const ROPE_THETA: f32 = 10_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered_by_capacity() {
        let v = 512;
        let p7 = ModelConfig::tier(Tier::S7b, v).param_count();
        let p8 = ModelConfig::tier(Tier::S8b, v).param_count();
        let p70 = ModelConfig::tier(Tier::S70b, v).param_count();
        assert!(p7 < p8 && p8 < p70, "{p7} {p8} {p70}");
        // The 70B stand-in should be several times the 7B stand-in,
        // echoing the real 10–20× gap.
        assert!(p70 > 4 * p7, "{p70} vs {p7}");
    }

    #[test]
    fn configs_validate() {
        for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
            ModelConfig::tier(tier, 512).validate().unwrap();
        }
        ModelConfig::tiny(64).validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = ModelConfig::tiny(64);
        c.n_heads = 3;
        assert!(c.validate().is_err());
        let mut c2 = ModelConfig::tiny(64);
        c2.vocab_size = 0;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn flops_scale_with_params() {
        let small = ModelConfig::tier(Tier::S7b, 512);
        let large = ModelConfig::tier(Tier::S70b, 512);
        assert!(large.train_flops_per_token() > small.train_flops_per_token());
        assert!(small.infer_flops_per_token() < small.train_flops_per_token());
    }

    #[test]
    fn session_bytes_dominated_by_kv_and_scales_with_depth() {
        let small = ModelConfig::tiny(64);
        let big = ModelConfig::tier(Tier::S70b, 512);
        assert!(big.session_bytes() > small.session_bytes());
        let kv = 2 * big.n_layers * big.max_seq * big.d_model * 4;
        assert!(big.session_bytes() >= kv);
    }

    #[test]
    fn tier_labels_distinct() {
        assert_ne!(Tier::S7b.label(), Tier::S70b.label());
        assert_eq!(Tier::S70b.nominal_params_b(), 70.0);
    }
}
