//! A small shape/dtype IR over the forward graph.
//!
//! [`build_forward_graph`] replays the exact op sequence of
//! `astro_model::forward::TrainContext::forward` — embed lookup, per-layer
//! attention (RMSNorm, QKV, RoPE, causal softmax, output projection) and
//! SwiGLU, final norm, tied LM head — against *symbolic* tensors carrying
//! named dimensions and a dtype, but no data. Every runtime shape
//! `assert` in `astro_tensor::matmul` / `astro_tensor::ops` and
//! `TrainContext` has a corresponding static rule here (ids `shape.*`),
//! so a configuration that would panic minutes into a run is rejected in
//! microseconds with a diagnostic naming the offending operand.
//!
//! Dtype propagation mirrors the trainer's mixed-precision contract:
//! weights may be stored bf16 (`TrainerConfig::bf16_weights`), but every
//! matmul accumulates in f32 (rule `dtype.accum`), as the f32 kernels do.

use crate::Diagnostic;

/// Element type of a symbolic tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DType {
    /// 32-bit float (all activations; kernels accumulate in f32).
    F32,
    /// bfloat16-rounded storage (weights when `bf16_weights` is on).
    Bf16,
}

impl DType {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::Bf16 => "bf16",
        }
    }

    /// The accumulation dtype of a kernel combining `self` and `other` —
    /// always f32, matching the real kernels.
    pub fn accum(self, _other: DType) -> DType {
        DType::F32
    }
}

/// One named symbolic dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dim {
    /// Symbolic name (`m`, `c`, `f`, `t`, `hs`, `v`, ...).
    pub name: String,
    /// Concrete extent under the config being checked.
    pub size: usize,
}

impl Dim {
    /// Build a dimension.
    pub fn new(name: &str, size: usize) -> Dim {
        Dim {
            name: name.to_string(),
            size,
        }
    }
}

/// An ordered list of dimensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shape {
    /// The dimensions, outermost first.
    pub dims: Vec<Dim>,
}

impl Shape {
    /// Build from `(name, size)` pairs.
    pub fn of(dims: &[(&str, usize)]) -> Shape {
        Shape {
            dims: dims.iter().map(|&(n, s)| Dim::new(n, s)).collect(),
        }
    }

    /// Total element count.
    pub fn elems(&self) -> usize {
        self.dims.iter().map(|d| d.size).product()
    }

    /// Render like `[m=256, c=96]`.
    pub fn render(&self) -> String {
        let inner: Vec<String> = self
            .dims
            .iter()
            .map(|d| format!("{}={}", d.name, d.size))
            .collect();
        format!("[{}]", inner.join(", "))
    }
}

/// A symbolic tensor flowing through the graph.
#[derive(Clone, Debug)]
pub struct Tensor {
    /// Name for diagnostics (`q`, `h_gate`, `logits`, ...).
    pub name: String,
    /// Symbolic shape.
    pub shape: Shape,
    /// Element dtype.
    pub dtype: DType,
}

impl Tensor {
    /// Render like `q[m=256, c=96]:f32`.
    pub fn render(&self) -> String {
        format!("{}{}:{}", self.name, self.shape.render(), self.dtype.label())
    }
}

/// The symbolic graph under construction: op counter, activation
/// accounting and collected diagnostics.
#[derive(Debug, Default)]
pub struct Graph {
    /// What configuration this graph describes (for diagnostics).
    pub subject: String,
    /// Ops checked so far.
    pub ops: usize,
    /// Diagnostics collected so far.
    pub diags: Vec<Diagnostic>,
}

impl Graph {
    /// Start a graph for a named subject.
    pub fn new(subject: &str) -> Graph {
        Graph {
            subject: subject.to_string(),
            ..Graph::default()
        }
    }

    fn err(&mut self, rule: &str, msg: String) {
        let subject = self.subject.clone();
        self.diags.push(Diagnostic::error(rule, &subject, msg));
    }

    /// Declare an input/weight tensor.
    pub fn tensor(&mut self, name: &str, dims: &[(&str, usize)], dtype: DType) -> Tensor {
        let shape = Shape::of(dims);
        for d in &shape.dims {
            if d.size == 0 {
                self.err(
                    "shape.zero-dim",
                    format!("{name}: dimension {} has extent 0", d.name),
                );
            }
        }
        Tensor {
            name: name.to_string(),
            shape,
            dtype,
        }
    }

    /// `out[m,n] = a[m,k] · b[n,k]ᵀ` — mirrors `matmul_a_bt_acc`'s
    /// `a.len() == m*k` / `b.len() == n*k` asserts: the inner (last)
    /// dimensions of both operands must agree.
    pub fn matmul_a_bt(&mut self, a: &Tensor, b: &Tensor, out_name: &str) -> Tensor {
        self.ops += 1;
        let (ka, kb) = (last(a), last(b));
        if ka.size != kb.size {
            self.err(
                "shape.matmul.inner",
                format!(
                    "{out_name} = {} · {}ᵀ: inner dims differ ({}={} vs {}={})",
                    a.render(),
                    b.render(),
                    ka.name,
                    ka.size,
                    kb.name,
                    kb.size
                ),
            );
        }
        let m = first(a);
        let n = first(b);
        Tensor {
            name: out_name.to_string(),
            shape: Shape {
                dims: vec![m.clone(), n.clone()],
            },
            dtype: a.dtype.accum(b.dtype),
        }
    }

    /// `out[m,n] = a[m,k] · b[k,n]` — mirrors `matmul_acc`'s length
    /// asserts.
    pub fn matmul(&mut self, a: &Tensor, b: &Tensor, out_name: &str) -> Tensor {
        self.ops += 1;
        let ka = last(a);
        let kb = first(b);
        if ka.size != kb.size {
            self.err(
                "shape.matmul.inner",
                format!(
                    "{out_name} = {} · {}: inner dims differ ({}={} vs {}={})",
                    a.render(),
                    b.render(),
                    ka.name,
                    ka.size,
                    kb.name,
                    kb.size
                ),
            );
        }
        Tensor {
            name: out_name.to_string(),
            shape: Shape {
                dims: vec![first(a).clone(), last(b).clone()],
            },
            dtype: a.dtype.accum(b.dtype),
        }
    }

    /// RMSNorm over rows — mirrors `ops::rmsnorm_rows`'s `g.len() == n`
    /// assert: the gain vector must match the row width.
    pub fn rmsnorm(&mut self, x: &Tensor, gain: &Tensor, out_name: &str) -> Tensor {
        self.ops += 1;
        let row = last(x);
        if gain.shape.elems() != row.size {
            self.err(
                "shape.rmsnorm.gain",
                format!(
                    "{out_name} = rmsnorm({}, {}): gain has {} elems, rows are {}",
                    x.render(),
                    gain.render(),
                    gain.shape.elems(),
                    row.size
                ),
            );
        }
        let mut out = x.clone();
        out.name = out_name.to_string();
        out.dtype = x.dtype.accum(gain.dtype);
        out
    }

    /// Elementwise binary op (`silu ⊙ up`, residual add) — mirrors the
    /// equal-length contract of `ops::mul` / `ops::add_assign`.
    pub fn elementwise(&mut self, a: &Tensor, b: &Tensor, out_name: &str) -> Tensor {
        self.ops += 1;
        if a.shape.elems() != b.shape.elems() {
            self.err(
                "shape.elementwise.len",
                format!(
                    "{out_name}: {} and {} have different element counts",
                    a.render(),
                    b.render()
                ),
            );
        }
        let mut out = a.clone();
        out.name = out_name.to_string();
        out.dtype = a.dtype.accum(b.dtype);
        out
    }

    /// Embedding lookup — mirrors `forward`'s `tok < v` debug assert and
    /// `tokens.len() == batch*seq`: rows must exist for every id the
    /// tokenizer can emit.
    pub fn embed(&mut self, m: usize, table: &Tensor, tokenizer_vocab: usize) -> Tensor {
        self.ops += 1;
        let rows = first(table);
        if tokenizer_vocab > rows.size {
            self.err(
                "shape.embed.rows",
                format!(
                    "embedding {} has {} rows but the tokenizer can emit ids up to {} \
                     (vocab {}); lookups would read out of bounds",
                    table.render(),
                    rows.size,
                    tokenizer_vocab - 1,
                    tokenizer_vocab
                ),
            );
        }
        Tensor {
            name: "x0".to_string(),
            shape: Shape {
                dims: vec![Dim::new("m", m), last(table).clone()],
            },
            dtype: DType::F32,
        }
    }

    /// RoPE application — mirrors the `head_dim` even requirement (the
    /// rotation pairs adjacent elements) and `TrainContext::new`'s
    /// `seq <= max_seq` assert (the tables cover `max_seq` positions).
    pub fn rope(&mut self, q: &Tensor, head_dim: usize, seq: usize, max_seq: usize) {
        self.ops += 1;
        if !head_dim.is_multiple_of(2) {
            self.err(
                "shape.rope.head-dim",
                format!(
                    "rope({}): head_dim {head_dim} is odd; RoPE rotates element pairs",
                    q.render()
                ),
            );
        }
        if seq > max_seq {
            self.err(
                "shape.seq.max",
                format!(
                    "rope({}): seq {seq} exceeds max_seq {max_seq}; no RoPE table rows \
                     (and no KV-cache slots) exist past max_seq",
                    q.render()
                ),
            );
        }
    }

    /// Row softmax — mirrors `ops::softmax_rows`'s `x.len() == r*c`; the
    /// attention instance additionally requires square `[t, t]` scores.
    pub fn softmax_square(&mut self, scores: &Tensor) {
        self.ops += 1;
        let (r, c) = (first(scores), last(scores));
        if r.size != c.size {
            self.err(
                "shape.softmax.square",
                format!(
                    "softmax({}): causal attention scores must be square, got {}×{}",
                    scores.render(),
                    r.size,
                    c.size
                ),
            );
        }
    }

    /// Cross-entropy — mirrors `ops::cross_entropy_rows`'s
    /// `targets.len() == m` / `target < vocab` asserts.
    pub fn cross_entropy(&mut self, logits: &Tensor, n_targets: usize, vocab: usize) {
        self.ops += 1;
        if first(logits).size != n_targets {
            self.err(
                "shape.xent.targets",
                format!(
                    "cross_entropy({}): {} targets for {} logit rows",
                    logits.render(),
                    n_targets,
                    first(logits).size
                ),
            );
        }
        if last(logits).size < vocab {
            self.err(
                "shape.xent.vocab",
                format!(
                    "cross_entropy({}): target ids range over vocab {} but logits \
                     have {} columns",
                    logits.render(),
                    vocab,
                    last(logits).size
                ),
            );
        }
    }
}

/// First dim of `t`. The zero-sized placeholder covers the degenerate
/// empty shape, which [`Graph::tensor`] has already diagnosed as
/// `shape.zero-dim`, so downstream size checks stay well-defined.
fn first(t: &Tensor) -> Dim {
    t.shape.dims.first().cloned().unwrap_or_else(|| Dim::new("empty", 0))
}

/// Last dim of `t`, with the same empty-shape fallback as [`first`].
fn last(t: &Tensor) -> Dim {
    t.shape.dims.last().cloned().unwrap_or_else(|| Dim::new("empty", 0))
}

/// What a successfully checked forward graph looks like.
#[derive(Clone, Debug)]
pub struct GraphSummary {
    /// Configuration label.
    pub subject: String,
    /// Symbolic ops checked.
    pub ops: usize,
    /// Trainable parameter count (matches `Layout::new`).
    pub params: usize,
    /// f32 elements of activation/scratch storage one `TrainContext`
    /// allocates (mirrors `TrainContext::new`).
    pub activation_elems: usize,
    /// Training FLOPs per token (from `ModelConfig`).
    pub flops_per_token: f64,
    /// Logits shape `[rows, vocab]`.
    pub logits: [usize; 2],
}

/// Replay `TrainContext::forward` symbolically for one `(batch, seq)`
/// shape. `tokenizer_vocab` is the id range the data pipeline can emit;
/// `bf16_weights` sets the declared weight storage dtype. Returns the
/// summary plus every diagnostic found (empty ⇒ the real forward/backward
/// cannot trip a shape assert for this config).
pub fn build_forward_graph(
    cfg: &astro_model::ModelConfig,
    batch: usize,
    seq: usize,
    tokenizer_vocab: usize,
    bf16_weights: bool,
) -> (GraphSummary, Vec<Diagnostic>) {
    let subject = format!(
        "d{}·L{}·h{}·ff{}·v{} b{} t{}",
        cfg.d_model, cfg.n_layers, cfg.n_heads, cfg.d_ff, cfg.vocab_size, batch, seq
    );
    let mut g = Graph::new(&subject);
    let (c, f, v) = (cfg.d_model, cfg.d_ff, cfg.vocab_size);
    let h = cfg.n_heads;
    let m = batch * seq;

    // `ModelConfig::validate` parity: divisibility must hold before
    // head_dim() is even meaningful.
    if h == 0 || c % h != 0 {
        g.err(
            "shape.heads.divisibility",
            format!("d_model {c} not divisible by n_heads {h}"),
        );
    }
    if batch == 0 || seq == 0 {
        g.err("shape.zero-dim", format!("batch {batch} × seq {seq} is empty"));
    }
    let hs = if h > 0 { c / h.max(1) } else { 0 };
    let wdt = if bf16_weights { DType::Bf16 } else { DType::F32 };

    // Weights (layouts mirror `params::Layout`).
    let embed = g.tensor("embed", &[("v", v), ("c", c)], wdt);
    let norm_gain = g.tensor("norm", &[("c", c)], wdt);
    let wq = g.tensor("wq", &[("c", c), ("c", c)], wdt);
    let w_gate = g.tensor("w_gate", &[("f", f), ("c", c)], wdt);
    let w_down = g.tensor("w_down", &[("c", c), ("f", f)], wdt);

    // Embed lookup.
    let mut x = g.embed(m, &embed, tokenizer_vocab);

    for _layer in 0..cfg.n_layers {
        // Attention block.
        let ln1 = g.rmsnorm(&x, &norm_gain, "ln1");
        let q = g.matmul_a_bt(&ln1, &wq, "q");
        let k = g.matmul_a_bt(&ln1, &wq, "k");
        let vv = g.matmul_a_bt(&ln1, &wq, "v");
        g.rope(&q, hs, seq, cfg.max_seq);
        // Per-(batch, head) tiles: [t, hs] gathered from [m, c].
        let qh = g.tensor("qh", &[("t", seq), ("hs", hs)], q.dtype);
        let kh = g.tensor("kh", &[("t", seq), ("hs", hs)], k.dtype);
        let vh = g.tensor("vh", &[("t", seq), ("hs", hs)], vv.dtype);
        let scores = g.matmul_a_bt(&qh, &kh, "scores");
        g.softmax_square(&scores);
        let oh = g.matmul(&scores, &vh, "oh");
        debug_assert_eq!(oh.shape.elems(), seq * hs);
        let att_out = g.tensor("att_out", &[("m", m), ("c", c)], DType::F32);
        let proj = g.matmul_a_bt(&att_out, &wq, "att_proj");
        x = g.elementwise(&x, &proj, "x_mid");
        // SwiGLU block.
        let ln2 = g.rmsnorm(&x, &norm_gain, "ln2");
        let gate = g.matmul_a_bt(&ln2, &w_gate, "h_gate");
        let up = g.matmul_a_bt(&ln2, &w_gate, "h_up");
        let act = g.elementwise(&gate, &up, "h_act");
        let down = g.matmul_a_bt(&act, &w_down, "ffn_out");
        x = g.elementwise(&x, &down, "x_next");
    }

    // Final norm + tied LM head + loss.
    let xf = g.rmsnorm(&x, &norm_gain, "xf_norm");
    let logits = g.matmul_a_bt(&xf, &embed, "logits");
    if logits.dtype != DType::F32 {
        // Unreachable with the accum rule, but the contract is explicit:
        // losses are computed from f32 logits.
        let subject2 = g.subject.clone();
        g.diags.push(Diagnostic::error(
            "dtype.accum",
            &subject2,
            format!("logits dtype {} — kernels accumulate in f32", logits.dtype.label()),
        ));
    }
    g.cross_entropy(&logits, m, tokenizer_vocab);

    let summary = GraphSummary {
        subject,
        ops: g.ops,
        params: cfg.param_count(),
        activation_elems: train_context_elems(cfg, batch, seq),
        flops_per_token: cfg.train_flops_per_token(),
        logits: [m, v],
    };
    (summary, g.diags)
}

/// f32 elements allocated by `TrainContext::new` for `(batch, seq)` —
/// kept in lockstep with that constructor so memory budgets are honest.
pub fn train_context_elems(cfg: &astro_model::ModelConfig, batch: usize, seq: usize) -> usize {
    let m = batch * seq;
    let (c, f, v, l) = (cfg.d_model, cfg.d_ff, cfg.vocab_size, cfg.n_layers);
    let h = cfg.n_heads;
    let hs = c.checked_div(h).unwrap_or(0);
    let t = seq;
    // Stored activations.
    (l + 1) * m * c                       // xs
        + l * (7 * m * c + 2 * m)         // ln1/q/k/v/att_out/x_mid/ln2 + inv
        + l * batch * h * t * t           // att
        + l * 4 * m * f                   // h_gate/h_silu/h_up/h_act
        + m * c + m                       // xf_norm + xf_inv
        + 2 * m * v                       // logits + dlogits
        // Backward scratch.
        + 6 * m * c                       // dx_a/dx_b/dxm/d_q/d_k/d_v
        + 4 * m * f                       // d_gate/d_silu/d_up/d_act
        + m * c                           // scratch_mc
        // Per-head tiles + score scratch.
        + 8 * t * hs + 3 * t * t
        // RoPE tables.
        + cfg.max_seq * hs
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_model::{ModelConfig, Tier};

    #[test]
    fn tier_configs_build_clean_graphs() {
        for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
            let cfg = ModelConfig::tier(tier, 512);
            let (s, diags) = build_forward_graph(&cfg, 4, 64, 512, true);
            assert!(diags.is_empty(), "{tier:?}: {:?}", diags);
            assert_eq!(s.logits, [4 * 64, 512]);
            assert!(s.ops > cfg.n_layers * 10);
            assert_eq!(s.params, cfg.param_count());
        }
    }

    #[test]
    fn head_divisibility_violation_is_caught() {
        let mut cfg = ModelConfig::tiny(64);
        cfg.n_heads = 3;
        let (_, diags) = build_forward_graph(&cfg, 1, 8, 64, false);
        assert!(diags.iter().any(|d| d.rule == "shape.heads.divisibility"), "{diags:?}");
    }

    #[test]
    fn odd_head_dim_is_caught() {
        // d_model 18, 2 heads → head_dim 9 (odd) — divisible but RoPE-invalid.
        let mut cfg = ModelConfig::tiny(64);
        cfg.d_model = 18;
        cfg.n_heads = 2;
        let (_, diags) = build_forward_graph(&cfg, 1, 8, 64, false);
        assert!(diags.iter().any(|d| d.rule == "shape.rope.head-dim"), "{diags:?}");
    }

    #[test]
    fn vocab_mismatch_is_caught() {
        let cfg = ModelConfig::tiny(64);
        let (_, diags) = build_forward_graph(&cfg, 1, 8, 100, false);
        assert!(diags.iter().any(|d| d.rule == "shape.embed.rows"), "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == "shape.xent.vocab"), "{diags:?}");
    }

    #[test]
    fn over_long_sequence_is_caught() {
        let cfg = ModelConfig::tiny(64);
        let (_, diags) = build_forward_graph(&cfg, 1, cfg.max_seq + 1, 64, false);
        assert!(diags.iter().any(|d| d.rule == "shape.seq.max"), "{diags:?}");
    }

    #[test]
    fn activation_elems_match_real_context() {
        // Ground truth via a real allocation: count the f32s the formula
        // claims against a spot-check of the dominant terms.
        let cfg = ModelConfig::tiny(24);
        let elems = train_context_elems(&cfg, 2, 8);
        let m = 16;
        // Must at least cover xs + logits + dlogits, the dominant fixed terms.
        assert!(elems > (cfg.n_layers + 1) * m * cfg.d_model + 2 * m * cfg.vocab_size);
        // And scale linearly in batch.
        let double = train_context_elems(&cfg, 4, 8);
        assert!(double < 2 * elems && double > elems);
    }

    #[test]
    fn dtype_accumulates_to_f32() {
        assert_eq!(DType::Bf16.accum(DType::Bf16), DType::F32);
        let cfg = ModelConfig::tiny(32);
        let (_, diags) = build_forward_graph(&cfg, 1, 4, 32, true);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn shapes_render_readably() {
        let s = Shape::of(&[("m", 256), ("c", 96)]);
        assert_eq!(s.render(), "[m=256, c=96]");
        assert_eq!(s.elems(), 256 * 96);
    }
}
