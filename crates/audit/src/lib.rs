//! Static analysis for the AstroMLab 2 reproduction: reject invalid
//! experiments *before* any compute is spent, and enforce repo hygiene
//! machine-readably.
//!
//! The study grid (3 base scales × 3 CPT recipes × SFT × 3 eval methods,
//! plus the DESIGN.md ablations) means dozens of config combinations flow
//! through the trainer and eval pipeline. A bad combination used to fail
//! only at runtime, via an `assert_eq!` deep in `astro_tensor`'s matmul —
//! minutes into a 70B-class run. This crate provides three passes, exposed
//! through the `astro-audit` binary and callable as a library:
//!
//! * [`ir`] + [`preflight`] — a small **shape/dtype IR** over the forward
//!   graph derived from `ModelConfig`/`StudyConfig`: symbolic shape
//!   inference through embed → attention → MLP → head, dtype propagation
//!   (f32/bf16), tokenizer-vocab vs embedding-rows consistency,
//!   eval-method/prompt compatibility, and per-run memory/FLOP budget
//!   estimates. Every runtime shape `assert` in `astro_tensor` has a
//!   corresponding static rule here (rule ids `shape.*`).
//! * [`lockorder`] — extraction of the **lock-acquisition graph** of
//!   `crates/parallel` and `crates/telemetry` from source, cycle
//!   detection, and a cross-check against the ranks declared to the
//!   runtime `astro_telemetry::lockcheck` instrumentation.
//! * [`waits`] — a **wait/notify protocol audit** over the same crates:
//!   every condvar belongs to a declared protocol (`waits.*` rule ids),
//!   waits sit in predicate re-check loops, guarded-predicate mutations
//!   notify in the same function, and mpsc channels have a draining
//!   receiver. This is the static complement of the `astro-check`
//!   bounded model checker: the checker explores the protocols the table
//!   declares; this pass guarantees the table is the whole story.
//! * [`lint`] — a zero-dep, line/token-level **source linter** enforcing
//!   repo rules clippy cannot (no `unwrap()` in library crates outside
//!   tests, no `println!` outside `bin/`, `#[must_use]` on builder-style
//!   constructors, doc comments on `pub` items, telemetry-span coverage on
//!   pipeline entry points), with a shrink-only allowlist.
//!
//! [`report`] serialises everything into `audit_report.json` using the
//! same JSON subset the in-repo parser (`astro_eval::json`) reads back.

pub mod ir;
pub mod lint;
pub mod lockorder;
pub mod preflight;
pub mod report;
pub mod waits;

pub use ir::{DType, Dim, GraphSummary, Shape};
pub use lint::{lint_workspace, LintConfig, LintReport};
pub use lockorder::{analyze_locks, LockReport};
pub use preflight::{preflight_model, preflight_study, PreflightReport, RunCheck};
pub use waits::{analyze_waits, WaitReport};

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The run would fail or compute garbage; preflight rejects it.
    Error,
    /// Suspicious but survivable (e.g. eval prompt longer than the
    /// training window); reported, does not reject.
    Warning,
}

impl Severity {
    /// Machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding from any pass.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier (`shape.matmul.inner`, `lint.no-unwrap`, ...).
    pub rule: String,
    /// What the finding is about (a config label, `file:line`, a lock
    /// name).
    pub subject: String,
    /// Human-readable, pointed message.
    pub message: String,
    /// Error or warning.
    pub severity: Severity,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(rule: &str, subject: &str, message: String) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            subject: subject.to_string(),
            message,
            severity: Severity::Error,
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(rule: &str, subject: &str, message: String) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            subject: subject.to_string(),
            message,
            severity: Severity::Warning,
        }
    }

    /// Render as a one-line `severity rule subject: message` string.
    pub fn render(&self) -> String {
        format!(
            "{} [{}] {}: {}",
            self.severity.label(),
            self.rule,
            self.subject,
            self.message
        )
    }
}

/// Count errors in a diagnostic list.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_renders_all_parts() {
        let d = Diagnostic::error("shape.matmul.inner", "fast/S8b", "k 96 vs 64".to_string());
        let s = d.render();
        assert!(s.contains("error") && s.contains("shape.matmul.inner") && s.contains("96"));
    }

    #[test]
    fn error_count_ignores_warnings() {
        let ds = vec![
            Diagnostic::error("a", "s", "m".into()),
            Diagnostic::warning("b", "s", "m".into()),
        ];
        assert_eq!(error_count(&ds), 1);
    }
}
