//! Machine-readable audit report (`audit_report.json`).
//!
//! The workspace bans external dependencies, so this module contains its
//! own minimal JSON writer (string escaping + structural helpers). The
//! emitted document parses with the repo's own JSON-subset parser
//! (`astro_eval::json`), which doubles as a self-test: the report round-
//! trips through the same parser the eval pipeline trusts.

use crate::lint::LintReport;
use crate::lockorder::LockReport;
use crate::preflight::PreflightReport;
use crate::waits::WaitReport;
use crate::{Diagnostic, Severity};

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn diag_json(d: &Diagnostic) -> String {
    format!(
        "{{\"rule\":\"{}\",\"subject\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
        esc(&d.rule),
        esc(&d.subject),
        d.severity.label(),
        esc(&d.message)
    )
}

fn diags_json(ds: &[Diagnostic]) -> String {
    let items: Vec<String> = ds.iter().map(diag_json).collect();
    format!("[{}]", items.join(","))
}

/// The full audit report: whichever passes ran this invocation.
#[derive(Default)]
pub struct AuditReport {
    /// Preflight results, one per preset label.
    pub preflight: Vec<PreflightReport>,
    /// Lock-order analysis, if the pass ran.
    pub locks: Option<LockReport>,
    /// Wait/notify protocol analysis, if the pass ran.
    pub waits: Option<WaitReport>,
    /// Model-checker exploration stats (the raw `BENCH_check.json`
    /// document, pre-validated against the repo JSON parser), if a
    /// `check_explore` run is available next to the report.
    pub model_check: Option<String>,
    /// Lint results, if the pass ran.
    pub lint: Option<LintReport>,
}

impl AuditReport {
    /// Total error-severity diagnostics across all passes.
    pub fn error_count(&self) -> usize {
        self.all_diagnostics().filter(|d| d.severity == Severity::Error).count()
    }

    /// Total warning-severity diagnostics across all passes.
    pub fn warning_count(&self) -> usize {
        self.all_diagnostics().filter(|d| d.severity == Severity::Warning).count()
    }

    fn all_diagnostics(&self) -> impl Iterator<Item = &Diagnostic> {
        self.preflight
            .iter()
            .flat_map(|p| {
                p.config_diagnostics
                    .iter()
                    .chain(p.checks.iter().flat_map(|c| c.diagnostics.iter()))
            })
            .chain(self.locks.iter().flat_map(|l| l.diagnostics.iter()))
            .chain(self.waits.iter().flat_map(|w| w.diagnostics.iter()))
            .chain(self.lint.iter().flat_map(|l| l.diagnostics.iter()))
    }

    /// Serialise the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1");

        out.push_str(",\"preflight\":[");
        let presets: Vec<String> = self
            .preflight
            .iter()
            .map(|p| {
                let checks: Vec<String> = p
                    .checks
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"subject\":\"{}\",\"params\":{},\"activation_elems\":{},\
                             \"est_bytes\":{},\"est_flops\":{:.3e},\"ok\":{},\
                             \"diagnostics\":{}}}",
                            esc(&c.subject),
                            c.params,
                            c.activation_elems,
                            c.est_bytes,
                            c.est_flops,
                            c.ok(),
                            diags_json(&c.diagnostics)
                        )
                    })
                    .collect();
                format!(
                    "{{\"label\":\"{}\",\"ok\":{},\"config_diagnostics\":{},\"checks\":[{}]}}",
                    esc(&p.label),
                    p.ok(),
                    diags_json(&p.config_diagnostics),
                    checks.join(",")
                )
            })
            .collect();
        out.push_str(&presets.join(","));
        out.push(']');

        if let Some(locks) = &self.locks {
            let sites: Vec<String> = locks
                .sites
                .iter()
                .map(|s| format!("{{\"name\":\"{}\",\"at\":\"{}\"}}", esc(&s.name), esc(&s.at)))
                .collect();
            let edges: Vec<String> = locks
                .edges
                .iter()
                .map(|(a, b)| format!("[\"{}\",\"{}\"]", esc(a), esc(b)))
                .collect();
            out.push_str(&format!(
                ",\"locks\":{{\"ok\":{},\"sites\":[{}],\"edges\":[{}],\"diagnostics\":{}}}",
                locks.ok(),
                sites.join(","),
                edges.join(","),
                diags_json(&locks.diagnostics)
            ));
        }

        if let Some(waits) = &self.waits {
            let sites: Vec<String> = waits
                .sites
                .iter()
                .map(|s| {
                    format!(
                        "{{\"condvar\":\"{}\",\"at\":\"{}\",\"in_loop\":{}}}",
                        esc(&s.condvar),
                        esc(&s.at),
                        s.in_loop
                    )
                })
                .collect();
            out.push_str(&format!(
                ",\"waits\":{{\"ok\":{},\"protocols\":{},\"sites\":[{}],\"diagnostics\":{}}}",
                waits.ok(),
                waits.protocols,
                sites.join(","),
                diags_json(&waits.diagnostics)
            ));
        }

        if let Some(check) = &self.model_check {
            // Raw embed: the caller validated this against the repo's own
            // JSON parser before attaching it.
            out.push_str(&format!(",\"model_check\":{check}"));
        }

        if let Some(lint) = &self.lint {
            out.push_str(&format!(
                ",\"lint\":{{\"ok\":{},\"files_scanned\":{},\"suppressed\":{},\
                 \"diagnostics\":{}}}",
                lint.ok(),
                lint.files_scanned,
                lint.suppressed,
                diags_json(&lint.diagnostics)
            ));
        }

        out.push_str(&format!(
            ",\"summary\":{{\"errors\":{},\"warnings\":{}}}}}",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preflight::preflight_study;

    #[test]
    fn report_json_parses_with_repo_parser() {
        let report = AuditReport {
            preflight: vec![preflight_study(&astromlab::StudyConfig::smoke(0), "smoke")],
            ..AuditReport::default()
        };
        let json = report.to_json();
        let value = astro_eval::json::Json::parse(&json).expect("report must parse");
        assert!(value.get("preflight").is_some());
        assert!(value.get("summary").is_some());
        assert!(matches!(value.get("version"), Some(astro_eval::json::Json::Number(n)) if *n == 1.0));
    }

    #[test]
    fn waits_and_model_check_sections_round_trip() {
        let mut waits = crate::waits::WaitReport {
            protocols: 2,
            ..crate::waits::WaitReport::default()
        };
        waits.sites.push(crate::waits::WaitSite {
            condvar: "cv".to_string(),
            at: "crates/gateway/src/queue.rs:108".to_string(),
            in_loop: true,
        });
        let report = AuditReport {
            waits: Some(waits),
            model_check: Some("{\"bench\":\"check_explore\",\"failures\":0}".to_string()),
            ..AuditReport::default()
        };
        let json = report.to_json();
        let value = astro_eval::json::Json::parse(&json).expect("report must parse");
        let w = value.get("waits").expect("waits section");
        assert!(matches!(w.get("protocols"), Some(astro_eval::json::Json::Number(n)) if *n == 2.0));
        let mc = value.get("model_check").expect("model_check section");
        assert!(mc.get("failures").is_some());
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
