//! `astro-audit` — static preflight, lock-order analysis and lint gate.
//!
//! ```text
//! astro-audit preflight --all-presets     # shape/dtype/budget checks, all presets
//! astro-audit preflight --preset smoke    # one preset
//! astro-audit locks                       # static lock-order analysis
//! astro-audit waits                       # wait/notify protocol analysis
//! astro-audit lint                        # workspace lint gate (allowlisted)
//! astro-audit lint --write-allowlist      # regenerate the allowlist in place
//! astro-audit all                         # every pass + audit_report.json
//! ```
//!
//! Exit status is non-zero when any error-severity diagnostic survives
//! filtering, so CI can gate on it directly. Every invocation (except
//! `--write-allowlist`) writes `audit_report.json` at the workspace root;
//! pass `--report PATH` to redirect it.

use astro_audit::lint::{lint_workspace, render_allowlist, LintConfig, ALLOWLIST_FILE};
use astro_audit::lockorder::analyze_locks;
use astro_audit::preflight::preflight_study;
use astro_audit::report::AuditReport;
use astro_audit::waits::analyze_waits;
use astro_audit::Severity;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Locate the workspace root: walk up from the current directory looking
/// for a `Cargo.toml` next to a `crates/` directory; fall back to the
/// compile-time manifest location.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            break;
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A named preset constructor (`smoke` / `fast` / `full`).
type Preset = (&'static str, fn(u64) -> astromlab::StudyConfig);

/// Read `BENCH_check.json` (written by the `check_explore` bench) so the
/// model checker's explored-schedule counts land in `audit_report.json`
/// next to the static `waits.*` findings. The raw text is only attached
/// after it round-trips through the repo's own JSON parser; a missing or
/// malformed file is simply omitted.
fn load_model_check(root: &Path) -> Option<String> {
    let text = std::fs::read_to_string(root.join("BENCH_check.json")).ok()?;
    match astro_eval::json::Json::parse(&text) {
        Ok(_) => Some(text),
        Err(e) => {
            eprintln!("ignoring malformed BENCH_check.json: {e}");
            None
        }
    }
}

fn print_diags<'a, I: IntoIterator<Item = &'a astro_audit::Diagnostic>>(diags: I) {
    for d in diags {
        println!("  {}", d.render());
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: astro-audit <preflight [--all-presets | --preset NAME] | locks | waits | \
         lint [--write-allowlist] | all> [--report PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let root = find_root();

    let mut report_path = root.join("audit_report.json");
    if let Some(pos) = args.iter().position(|a| a == "--report") {
        match args.get(pos + 1) {
            Some(p) => report_path = PathBuf::from(p),
            None => return usage(),
        }
    }

    let mut seed = 0u64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        match args.get(pos + 1).and_then(|s| s.parse().ok()) {
            Some(s) => seed = s,
            None => return usage(),
        }
    }
    let presets: &[Preset] = &[
        ("smoke", astromlab::StudyConfig::smoke),
        ("fast", astromlab::StudyConfig::fast),
        ("full", astromlab::StudyConfig::full),
    ];

    let mut report = AuditReport::default();
    match cmd.as_str() {
        "preflight" => {
            let selected: Vec<&Preset> =
                if let Some(pos) = args.iter().position(|a| a == "--preset") {
                    let Some(name) = args.get(pos + 1) else { return usage() };
                    let Some(p) = presets.iter().find(|(n, _)| n == name) else {
                        eprintln!(
                            "unknown preset {name:?}; available: smoke, fast, full"
                        );
                        return ExitCode::from(2);
                    };
                    vec![p]
                } else {
                    // default and --all-presets are the same: check everything
                    presets.iter().collect()
                };
            for (name, make) in selected {
                let pf = preflight_study(&make(seed), name);
                let errs = pf.errors();
                let warns = pf
                    .all_diagnostics()
                    .iter()
                    .filter(|d| d.severity == Severity::Warning)
                    .count();
                println!(
                    "preflight {name}: {} run checks, {errs} errors, {warns} warnings",
                    pf.checks.len()
                );
                print_diags(pf.all_diagnostics());
                report.preflight.push(pf);
            }
        }
        "locks" => {
            let locks = analyze_locks(&root);
            println!(
                "locks: {} annotated sites, {} edges, {} diagnostics",
                locks.sites.len(),
                locks.edges.len(),
                locks.diagnostics.len()
            );
            print_diags(&locks.diagnostics);
            report.locks = Some(locks);
        }
        "waits" => {
            let waits = analyze_waits(&root);
            println!(
                "waits: {} protocols, {} wait sites, {} diagnostics",
                waits.protocols,
                waits.sites.len(),
                waits.diagnostics.len()
            );
            print_diags(&waits.diagnostics);
            report.waits = Some(waits);
            report.model_check = load_model_check(&root);
        }
        "lint" => {
            if args.iter().any(|a| a == "--write-allowlist") {
                let (findings, scanned) = astro_audit::lint::collect_findings(&root);
                let path = root.join(ALLOWLIST_FILE);
                let body = render_allowlist(&findings);
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("failed to write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote {} entries ({} files scanned) to {}",
                    findings.len(),
                    scanned,
                    path.display()
                );
                return ExitCode::SUCCESS;
            }
            let lint = lint_workspace(&LintConfig::new(&root));
            println!(
                "lint: {} files scanned, {} suppressed by allowlist, {} diagnostics",
                lint.files_scanned,
                lint.suppressed,
                lint.diagnostics.len()
            );
            print_diags(&lint.diagnostics);
            report.lint = Some(lint);
        }
        "all" => {
            for (name, make) in presets {
                let pf = preflight_study(&make(seed), name);
                println!(
                    "preflight {name}: {} run checks, {} errors",
                    pf.checks.len(),
                    pf.errors()
                );
                print_diags(pf.all_diagnostics());
                report.preflight.push(pf);
            }
            let locks = analyze_locks(&root);
            println!("locks: {} sites, {} diagnostics", locks.sites.len(), locks.diagnostics.len());
            print_diags(&locks.diagnostics);
            report.locks = Some(locks);
            let waits = analyze_waits(&root);
            println!(
                "waits: {} protocols, {} sites, {} diagnostics",
                waits.protocols,
                waits.sites.len(),
                waits.diagnostics.len()
            );
            print_diags(&waits.diagnostics);
            report.waits = Some(waits);
            report.model_check = load_model_check(&root);
            let lint = lint_workspace(&LintConfig::new(&root));
            println!(
                "lint: {} files, {} suppressed, {} diagnostics",
                lint.files_scanned,
                lint.suppressed,
                lint.diagnostics.len()
            );
            print_diags(&lint.diagnostics);
            report.lint = Some(lint);
        }
        _ => return usage(),
    }

    let errors = report.error_count();
    let warnings = report.warning_count();
    if let Err(e) = std::fs::write(&report_path, report.to_json()) {
        eprintln!("failed to write {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "audit: {errors} errors, {warnings} warnings -> {}",
        report_path.display()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
