//! Zero-dependency source lint pass over the workspace's library crates.
//!
//! The linter is line/token-level (no rustc internals): a small
//! comment/string-stripping state machine feeds per-line rules. Scope is
//! every `crates/*/src/**/*.rs` plus the root package's `src/`, excluding
//! `#[cfg(test)]` modules and binary targets (`src/bin/**`, `main.rs`),
//! which legitimately print and unwrap.
//!
//! Rules (stable ids, `lint.*`):
//!
//! * `lint.no-unwrap` — no `unwrap()` / `expect(` / `panic!(` /
//!   `unreachable!(` / `todo!(` / `unimplemented!(` in library code.
//! * `lint.no-println` — no `println!` / `print!` / `eprintln!` /
//!   `eprint!` in library code; route through `astro_telemetry::log`.
//! * `lint.must-use` — builder-style methods (`self`-consuming, returning
//!   `Self`) must carry `#[must_use]`.
//! * `lint.pub-doc` — every `pub` item needs a `///` doc comment.
//! * `lint.telemetry-span` — curated public pipeline entry points must
//!   open a telemetry span.
//! * `lint.allowlist.stale` — an allowlist entry matched nothing; the
//!   allowlist is shrink-only and stale entries must be deleted.
//!
//! Grandfathered sites live in `audit_allowlist.txt` at the repo root,
//! one `rule|path|trimmed line` triple per line.

use crate::{Diagnostic, Severity};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Name of the allowlist file at the repository root.
pub const ALLOWLIST_FILE: &str = "audit_allowlist.txt";

/// Pipeline entry points that must open a telemetry span near the top of
/// their body: (path suffix, function name).
const SPAN_REQUIRED: &[(&str, &str)] = &[
    ("crates/core/src/study.rs", "prepare"),
    ("crates/core/src/study.rs", "pretrain_native"),
    ("crates/core/src/study.rs", "cpt"),
    ("crates/core/src/study.rs", "sft"),
    ("crates/core/src/study.rs", "run_table1"),
    ("crates/core/src/study.rs", "run_study"),
    ("crates/train/src/trainer.rs", "train_lm"),
    ("crates/eval/src/score.rs", "evaluate"),
    ("crates/serve/src/engine.rs", "score_batch"),
    ("crates/serve/src/engine.rs", "generate_batch"),
    ("crates/gateway/src/server.rs", "serve_connection"),
    ("crates/gateway/src/scheduler.rs", "dispatch_batch"),
];

/// One raw lint hit before allowlist filtering.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule id, e.g. `lint.no-unwrap`.
    pub rule: String,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line (the allowlist key).
    pub content: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The `rule|path|content` triple used for allowlist matching. The
    /// line number is deliberately excluded so unrelated edits above a
    /// grandfathered site do not invalidate its entry.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.rule, self.path, self.content)
    }
}

/// Lint configuration: where the workspace lives and which allowlist file
/// to honour.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Workspace root (directory containing `crates/`).
    pub root: PathBuf,
    /// Allowlist path; defaults to `<root>/audit_allowlist.txt`.
    pub allowlist: PathBuf,
}

impl LintConfig {
    /// Config rooted at `root` with the default allowlist location.
    pub fn new(root: &Path) -> Self {
        LintConfig { root: root.to_path_buf(), allowlist: root.join(ALLOWLIST_FILE) }
    }
}

/// Outcome of a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Findings not covered by the allowlist, plus stale-allowlist errors.
    pub diagnostics: Vec<Diagnostic>,
    /// All raw findings before filtering (for `--write-allowlist`).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by allowlist entries.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no error-severity diagnostics remain after filtering.
    pub fn ok(&self) -> bool {
        self.diagnostics.iter().all(|d| d.severity != Severity::Error)
    }
}

/// Line-oriented comment/string stripper. Returns the line with comment
/// text and string interiors removed; keeps structure (`"..."` becomes
/// `""`) so token rules do not fire inside prose.
struct Stripper {
    in_block_comment: bool,
    in_raw_string: Option<usize>, // number of #s terminating the raw string
}

impl Stripper {
    fn new() -> Self {
        Stripper { in_block_comment: false, in_raw_string: None }
    }

    fn strip(&mut self, line: &str) -> String {
        let b = line.as_bytes();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < b.len() {
            if self.in_block_comment {
                if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if let Some(hashes) = self.in_raw_string {
                // Look for `"###` with the right number of #s.
                if b[i] == b'"' && b[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes {
                    self.in_raw_string = None;
                    out.push('"');
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
                continue;
            }
            let c = b[i];
            match c {
                b'/' if i + 1 < b.len() && b[i + 1] == b'/' => break, // line comment
                b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                    self.in_block_comment = true;
                    i += 2;
                }
                b'r' => {
                    if let Some(hashes) = Self::raw_string_start(b, i) {
                        self.in_raw_string = Some(hashes);
                        out.push('"');
                        i += 2 + hashes; // r##"
                    } else {
                        out.push('r');
                        i += 1;
                    }
                }
                b'"' => {
                    out.push('"');
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'"' {
                            out.push('"');
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    // Unterminated => ordinary multi-line strings are rare
                    // in this codebase; treat the rest of the line as string.
                }
                b'\'' => {
                    // Char literal vs lifetime: a lifetime is `'ident` not
                    // followed by a closing quote within 2-3 chars with
                    // escape handling; simplest robust rule: if the next
                    // char is alphabetic and the char after is not `'`,
                    // it's a lifetime — copy and move on.
                    if i + 2 < b.len()
                        && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                        && b[i + 2] != b'\''
                    {
                        out.push('\'');
                        i += 1; // lifetime
                    } else {
                        // char literal: skip to closing quote
                        let mut j = i + 1;
                        if j < b.len() && b[j] == b'\\' {
                            j += 2;
                            // \x41 and \u{..} are longer; scan to quote
                            while j < b.len() && b[j] != b'\'' {
                                j += 1;
                            }
                        }
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                        i = (j + 1).min(b.len());
                        out.push('\'');
                        out.push('\'');
                    }
                }
                _ => {
                    out.push(c as char);
                    i += 1;
                }
            }
        }
        out
    }

    /// If `b[i..]` starts a raw string (`r"`, `r#"`, `br"`, …) return the
    /// number of `#`s; `i` must point at the `r`.
    fn raw_string_start(b: &[u8], i: usize) -> Option<usize> {
        // Reject identifiers ending in r (e.g. `var"` is not valid Rust
        // anyway, but `for"` can't occur); require non-ident before.
        if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
            return None;
        }
        let mut j = i + 1;
        let mut hashes = 0;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            Some(hashes)
        } else {
            None
        }
    }
}

/// Count brace-depth delta and minimum relative depth over a stripped line.
fn brace_walk(line: &str, depth: i64) -> (i64, i64) {
    let mut d = depth;
    let mut min = depth;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => {
                d -= 1;
                min = min.min(d);
            }
            _ => {}
        }
    }
    (d, min)
}

/// Is this path a binary target (free to print/unwrap)?
fn is_bin_path(rel: &str) -> bool {
    rel.contains("/src/bin/") || rel.ends_with("/main.rs") || rel == "main.rs"
}

const UNWRAP_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];
const PRINT_TOKENS: &[&str] = &["eprintln!(", "eprint!(", "println!(", "print!("];

/// Tokens immediately preceding `needle` that make it a different method
/// (e.g. `.expect_err(` contains `.expect(`? no — substring match needs
/// care: `.expect(` does not match `.expect_err(` because of the open
/// paren, and `.unwrap()` does not match `.unwrap_or(...)`. The token
/// list is chosen so no false-positive overlap exists.)
fn scan_tokens(line: &str, tokens: &[&str]) -> Option<&'static str> {
    for &t in tokens {
        if line.contains(t) {
            // Re-borrow as 'static: the token slices are 'static.
            return UNWRAP_TOKENS
                .iter()
                .chain(PRINT_TOKENS.iter())
                .find(|&&k| k == t)
                .copied();
        }
    }
    None
}

/// Scan one library source file, appending findings.
#[allow(clippy::too_many_lines)]
fn scan_file(abs: &Path, rel: &str, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let text = std::fs::read_to_string(abs)?;
    let raw_lines: Vec<&str> = text.lines().collect();
    let mut stripper = Stripper::new();
    let stripped: Vec<String> = raw_lines.iter().map(|l| stripper.strip(l)).collect();

    // Mark lines inside `#[cfg(test)] mod … { … }` regions.
    let mut in_test = vec![false; raw_lines.len()];
    {
        let mut depth: i64 = 0;
        let mut pending_cfg_test = false;
        let mut test_depth: Option<i64> = None;
        for (idx, line) in stripped.iter().enumerate() {
            let trimmed = raw_lines[idx].trim_start();
            if trimmed.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
            }
            let entering_mod = pending_cfg_test && line.contains("mod ") && line.contains('{');
            let (d, _min) = brace_walk(line, depth);
            if let Some(td) = test_depth {
                in_test[idx] = true;
                if d <= td {
                    test_depth = None;
                }
            } else if entering_mod {
                in_test[idx] = true;
                test_depth = Some(depth);
                pending_cfg_test = false;
            } else if pending_cfg_test && !trimmed.starts_with("#[") && !trimmed.is_empty() {
                // #[cfg(test)] on a non-mod item (fn, use): only that item
                // is test-only; treat the single line as test code.
                in_test[idx] = true;
                pending_cfg_test = false;
            }
            depth = d;
        }
    }

    let is_bin = is_bin_path(rel);
    let push = |findings: &mut Vec<Finding>, rule: &str, idx: usize, message: String| {
        findings.push(Finding {
            rule: rule.to_string(),
            path: rel.to_string(),
            line: idx + 1,
            content: raw_lines[idx].trim().to_string(),
            message,
        });
    };

    for (idx, line) in stripped.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        if !is_bin {
            if let Some(tok) = scan_tokens(line, UNWRAP_TOKENS) {
                push(
                    findings,
                    "lint.no-unwrap",
                    idx,
                    format!("`{tok}` in library code; return a Result or document the invariant"),
                );
            }
            if let Some(tok) = scan_tokens(line, PRINT_TOKENS) {
                push(
                    findings,
                    "lint.no-println",
                    idx,
                    format!("`{tok}` in library code; use astro_telemetry::log or the sink"),
                );
            }
        }

        // Rules below apply to bins too: docs and must_use are about API.
        let trimmed = raw_lines[idx].trim_start();
        let is_pub_item = (trimmed.starts_with("pub fn ")
            || trimmed.starts_with("pub struct ")
            || trimmed.starts_with("pub enum ")
            || trimmed.starts_with("pub trait ")
            || trimmed.starts_with("pub mod ")
            || trimmed.starts_with("pub const ")
            || trimmed.starts_with("pub static ")
            || trimmed.starts_with("pub type ")
            || trimmed.starts_with("pub unsafe fn "))
            && !trimmed.starts_with("pub use")
            // `pub mod x;` declarations carry their docs inside the file
            // as `//!` module docs; only inline `pub mod x { ... }` needs
            // a `///` at the declaration.
            && !(trimmed.starts_with("pub mod ") && trimmed.trim_end().ends_with(';'));
        if is_pub_item {
            // Walk upward over attributes and derives to the nearest
            // non-attribute line; require a doc comment there.
            let mut j = idx;
            let mut documented = false;
            while j > 0 {
                j -= 1;
                let above = raw_lines[j].trim_start();
                if above.starts_with("#[") || above.starts_with("#![") {
                    continue;
                }
                documented = above.starts_with("///")
                    || above.starts_with("//!")
                    || above.starts_with("#[doc")
                    || above.ends_with("*/");
                break;
            }
            if !documented {
                push(
                    findings,
                    "lint.pub-doc",
                    idx,
                    "public item without a doc comment".to_string(),
                );
            }
        }

        // Builder-style: consuming-self method returning Self.
        if trimmed.starts_with("pub fn ") {
            // Join continuation lines until the signature terminates.
            let mut sig = line.trim().to_string();
            let mut k = idx;
            while !sig.contains('{') && !sig.contains(';') && k + 1 < stripped.len() && k - idx < 6
            {
                k += 1;
                sig.push(' ');
                sig.push_str(stripped[k].trim());
            }
            let consuming_self = sig.contains("(self,")
                || sig.contains("(self)")
                || sig.contains("(mut self,")
                || sig.contains("(mut self)");
            let returns_self = sig.contains("-> Self");
            if consuming_self && returns_self {
                let mut has_must_use = false;
                let mut j = idx;
                while j > 0 && idx - (j - 1) <= 3 {
                    j -= 1;
                    if raw_lines[j].trim_start().starts_with("#[must_use") {
                        has_must_use = true;
                        break;
                    }
                    if !raw_lines[j].trim_start().starts_with("#[") {
                        break;
                    }
                }
                if !has_must_use {
                    push(
                        findings,
                        "lint.must-use",
                        idx,
                        "builder-style method (consumes self, returns Self) without #[must_use]"
                            .to_string(),
                    );
                }
            }
        }
    }

    // Telemetry-span coverage for curated entry points in this file.
    for &(suffix, func) in SPAN_REQUIRED {
        if !rel.ends_with(suffix) {
            continue;
        }
        let needle = format!("fn {func}(");
        let mut found_fn = false;
        let mut has_span = false;
        for (idx, line) in stripped.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            if line.contains(&needle) {
                found_fn = true;
                // Window covers a multi-line signature plus early argument
                // validation before the span opens.
                let end = (idx + 20).min(stripped.len());
                has_span = stripped[idx..end].iter().any(|l| l.contains("span"));
                if !has_span {
                    push(
                        findings,
                        "lint.telemetry-span",
                        idx,
                        format!("pipeline entry point `{func}` does not open a telemetry span"),
                    );
                }
                break;
            }
        }
        if !found_fn {
            findings.push(Finding {
                rule: "lint.telemetry-span".to_string(),
                path: rel.to_string(),
                line: 1,
                content: format!("fn {func}"),
                message: format!(
                    "curated entry point `{func}` not found in {rel}; update the SPAN_REQUIRED \
                     table in crates/audit/src/lint.rs"
                ),
            });
        }
        let _ = has_span;
    }
    Ok(())
}

/// Recursively collect `.rs` files under `dir` (sorted).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Gather raw findings over the whole workspace (no allowlist filtering).
pub fn collect_findings(root: &Path) -> (Vec<Finding>, usize) {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crate_dirs.sort();
        for c in crate_dirs {
            rust_files(&c.join("src"), &mut files);
        }
    }
    rust_files(&root.join("src"), &mut files);
    let mut findings = Vec::new();
    let scanned = files.len();
    for abs in &files {
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(abs)
            .to_string_lossy()
            .replace('\\', "/");
        if let Err(e) = scan_file(abs, &rel, &mut findings) {
            findings.push(Finding {
                rule: "lint.io".to_string(),
                path: rel,
                line: 0,
                content: String::new(),
                message: format!("failed to read source: {e}"),
            });
        }
    }
    findings.sort();
    (findings, scanned)
}

/// Parse the allowlist file: `rule|path|content` triples, `#` comments.
fn load_allowlist(path: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Run the lint pass with allowlist filtering.
pub fn lint_workspace(config: &LintConfig) -> LintReport {
    let (findings, files_scanned) = collect_findings(&config.root);
    let allow = load_allowlist(&config.allowlist);
    let allow_set: BTreeSet<&str> = allow.iter().map(String::as_str).collect();
    let mut used: BTreeSet<&str> = BTreeSet::new();
    let mut report = LintReport { files_scanned, ..Default::default() };
    for f in &findings {
        let key = f.key();
        if let Some(&entry) = allow_set.get(key.as_str()) {
            used.insert(entry);
            report.suppressed += 1;
            continue;
        }
        report.diagnostics.push(Diagnostic::error(
            &f.rule,
            &format!("{}:{}", f.path, f.line),
            f.message.clone(),
        ));
    }
    for entry in &allow {
        if !used.contains(entry.as_str()) {
            report.diagnostics.push(Diagnostic::error(
                "lint.allowlist.stale",
                ALLOWLIST_FILE,
                format!("entry matches nothing (allowlist is shrink-only, delete it): {entry}"),
            ));
        }
    }
    report.findings = findings;
    report
}

/// Serialise findings as allowlist lines (used by `--write-allowlist`).
pub fn render_allowlist(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# astro-audit lint allowlist — grandfathered sites only.\n\
         # Format: rule|path|trimmed source line. Shrink-only: stale entries fail CI.\n",
    );
    let mut keys: Vec<String> = findings.iter().map(Finding::key).collect();
    keys.sort();
    keys.dedup();
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_one(s: &str) -> String {
        Stripper::new().strip(s)
    }

    #[test]
    fn stripper_removes_comments_and_strings() {
        assert_eq!(strip_one("let x = 1; // unwrap() here"), "let x = 1; ");
        assert_eq!(strip_one("let s = \"panic!(boom)\";"), "let s = \"\";");
        assert_eq!(strip_one("let c = '\\n'; let l: &'static str;"), "let c = ''; let l: &'static str;");
        assert_eq!(strip_one("let r = r#\"println!(x)\"#;"), "let r = \"\";");
    }

    #[test]
    fn stripper_handles_block_comments_across_lines() {
        let mut s = Stripper::new();
        assert_eq!(s.strip("foo(); /* start"), "foo(); ");
        assert_eq!(s.strip("unwrap() inside */ bar();"), " bar();");
    }

    #[test]
    fn unwrap_token_does_not_match_unwrap_or() {
        assert!(scan_tokens("x.unwrap_or(0)", UNWRAP_TOKENS).is_none());
        assert!(scan_tokens("x.unwrap_or_else(f)", UNWRAP_TOKENS).is_none());
        assert_eq!(scan_tokens("x.unwrap()", UNWRAP_TOKENS), Some(".unwrap()"));
        assert_eq!(scan_tokens("x.expect(\"m\")", UNWRAP_TOKENS), Some(".expect("));
    }

    #[test]
    fn finds_violations_in_synthetic_crate() {
        let dir = std::env::temp_dir().join(format!("astro-audit-lint-{}", std::process::id()));
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            r#"//! Demo crate.
/// Documented.
pub fn documented() -> usize {
    let v: Option<usize> = None;
    v.unwrap()
}
pub fn undocumented() {
    println!("hi");
}
pub fn with_x(mut self) -> Self {
    self
}
#[cfg(test)]
mod tests {
    #[test]
    fn ok() {
        let v: Option<usize> = Some(1);
        assert_eq!(v.unwrap(), 1); // fine in tests
    }
}
"#,
        )
        .unwrap();
        let (findings, scanned) = collect_findings(&dir);
        assert_eq!(scanned, 1);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"lint.no-unwrap"), "{rules:?}");
        assert!(rules.contains(&"lint.no-println"), "{rules:?}");
        assert!(rules.contains(&"lint.pub-doc"), "{rules:?}");
        assert!(rules.contains(&"lint.must-use"), "{rules:?}");
        // The unwrap inside #[cfg(test)] must NOT be reported.
        assert_eq!(
            findings.iter().filter(|f| f.rule == "lint.no-unwrap").count(),
            1,
            "{findings:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn allowlist_suppresses_and_flags_stale() {
        let dir = std::env::temp_dir().join(format!("astro-audit-allow-{}", std::process::id()));
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "//! D.\n/// D.\npub fn f() {\n    Option::<u8>::None.unwrap();\n}\n",
        )
        .unwrap();
        std::fs::write(
            dir.join(ALLOWLIST_FILE),
            "lint.no-unwrap|crates/demo/src/lib.rs|Option::<u8>::None.unwrap();\n\
             lint.no-unwrap|crates/demo/src/lib.rs|this line was deleted long ago\n",
        )
        .unwrap();
        let report = lint_workspace(&LintConfig::new(&dir));
        assert_eq!(report.suppressed, 1);
        assert!(report.diagnostics.iter().any(|d| d.rule == "lint.allowlist.stale"));
        assert!(!report.diagnostics.iter().any(|d| d.rule == "lint.no-unwrap"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bin_paths_may_print() {
        assert!(is_bin_path("crates/bench/src/bin/table1.rs"));
        assert!(is_bin_path("crates/audit/src/main.rs"));
        assert!(!is_bin_path("crates/bench/src/lib.rs"));
    }
}
