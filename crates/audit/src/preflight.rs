//! The preflight pass: validate every run a `StudyConfig` implies before
//! any compute is spent.
//!
//! [`preflight_study`] enumerates the full grid one study executes — the
//! eight Table-I models of `astromlab::ModelId`, the A1–A4 ablation
//! points, and the three evaluation methods — and checks each against the
//! shape/dtype IR ([`crate::ir`]), the trainer's own entry asserts, the
//! tokenizer-vocab floor, eval-method/prompt compatibility, and per-run
//! memory/FLOP budgets. Rule ids are stable (`preflight.*`, `shape.*`) so
//! `audit_report.json` consumers can track specific regressions.

use crate::ir::{build_forward_graph, train_context_elems};
use crate::{error_count, Diagnostic, Severity};
use astro_model::{ModelConfig, Tier};
use astro_tokenizer::SPECIALS;
use astromlab::{ModelId, StudyConfig};

/// Rough tokens per rendered MCQ (question + options + answer line),
/// calibrated against the two-shot prompt the fast preset trains for
/// (~225 tokens ⇒ ~75/question).
pub const EST_TOKENS_PER_QUESTION: usize = 75;

/// Reject runs whose estimated working set exceeds this (the repo targets
/// a single workstation; anything past 8 GiB is a mis-scaled config).
pub const MEMORY_BUDGET_BYTES: u64 = 8 << 30;

/// Warn when one run's estimated training FLOPs exceed this (≈ hours of
/// single-core compute — not wrong, but worth flagging).
pub const FLOP_WARN_BUDGET: f64 = 1.0e16;

/// The static verdict on one run (one model's training + eval, or one
/// ablation point).
#[derive(Clone, Debug)]
pub struct RunCheck {
    /// What run this is (`"AstroLLaMA-2-70B-AIC (sim)"`, `"A1/heavy-ocr"`, ...).
    pub subject: String,
    /// Trainable parameters.
    pub params: usize,
    /// f32 elements of activation/scratch storage per device.
    pub activation_elems: usize,
    /// Estimated peak working-set bytes across all devices (weights +
    /// grads + AdamW moments + activations).
    pub est_bytes: u64,
    /// Estimated total training FLOPs for the run.
    pub est_flops: f64,
    /// Everything found while checking this run.
    pub diagnostics: Vec<Diagnostic>,
}

impl RunCheck {
    /// True when no error-severity diagnostics were found.
    pub fn ok(&self) -> bool {
        error_count(&self.diagnostics) == 0
    }
}

/// The full preflight verdict for one `StudyConfig`.
#[derive(Clone, Debug)]
pub struct PreflightReport {
    /// Preset label (`smoke`, `fast`, `full`, or a custom tag).
    pub label: String,
    /// Study-level diagnostics (steps, learning rates, vocab floor, ...).
    pub config_diagnostics: Vec<Diagnostic>,
    /// Per-run checks across the zoo and the ablation grid.
    pub checks: Vec<RunCheck>,
}

impl PreflightReport {
    /// True when nothing error-severity was found anywhere.
    pub fn ok(&self) -> bool {
        error_count(&self.config_diagnostics) == 0 && self.checks.iter().all(RunCheck::ok)
    }

    /// Every diagnostic, config-level first.
    pub fn all_diagnostics(&self) -> Vec<&Diagnostic> {
        self.config_diagnostics
            .iter()
            .chain(self.checks.iter().flat_map(|c| c.diagnostics.iter()))
            .collect()
    }

    /// Total error count.
    pub fn errors(&self) -> usize {
        self.all_diagnostics()
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }
}

/// The smallest vocabulary any study tokenizer can have: 256 byte tokens
/// plus the chat special tokens.
pub fn vocab_floor() -> usize {
    256 + SPECIALS.len()
}

/// How many single-token pieces `Study::prepare` forces into the
/// vocabulary (answer-letter variants plus attribute-value head words) —
/// merges the BPE trainer appends even past the configured target size.
pub fn ensured_piece_count() -> usize {
    let mut ensure: Vec<String> = [" A", " B", " C", " D"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for rel in astro_world::RELATIONS {
        for v in rel.values() {
            if let Some(head) = v.split(' ').next() {
                ensure.push(format!(" {head}"));
            }
        }
    }
    for rel in astro_world::GENERAL_RELATIONS {
        for v in rel.values() {
            ensure.push(format!(" {v}"));
        }
    }
    ensure.sort();
    ensure.dedup();
    ensure.len()
}

/// Statically check one model architecture for one `(batch, seq)`
/// training shape. `tokenizer_vocab` is the id range the data pipeline
/// emits; `total_tokens` scales the FLOP estimate.
pub fn preflight_model(
    cfg: &ModelConfig,
    batch: usize,
    seq: usize,
    tokenizer_vocab: usize,
    devices: usize,
    total_tokens: u64,
    subject: &str,
) -> RunCheck {
    let (summary, mut diagnostics) = build_forward_graph(cfg, batch, seq, tokenizer_vocab, true);
    // Cross-check against the model's own validator: anything it rejects
    // must be rejected here too (belt and braces — the IR rules should
    // subsume it).
    if let Err(msg) = cfg.validate() {
        if diagnostics.iter().all(|d| d.severity != Severity::Error) {
            diagnostics.push(Diagnostic::error("shape.config", subject, msg));
        }
    }
    // Working set: per device, weights + grad + two AdamW moments (all
    // f32 in memory; bf16 is a rounding of stored values) + activations.
    let act = train_context_elems(cfg, batch.max(1), seq.clamp(1, cfg.max_seq));
    let est_bytes = (devices.max(1) as u64) * 4 * (4 * summary.params as u64 + act as u64);
    if est_bytes > MEMORY_BUDGET_BYTES {
        diagnostics.push(Diagnostic::error(
            "preflight.budget.memory",
            subject,
            format!(
                "estimated working set {:.2} GiB exceeds the {} GiB budget",
                est_bytes as f64 / (1u64 << 30) as f64,
                MEMORY_BUDGET_BYTES >> 30
            ),
        ));
    }
    let est_flops = summary.flops_per_token * total_tokens as f64;
    if est_flops > FLOP_WARN_BUDGET {
        diagnostics.push(Diagnostic::warning(
            "preflight.budget.flops",
            subject,
            format!("estimated {est_flops:.2e} training FLOPs — expect a long run"),
        ));
    }
    RunCheck {
        subject: subject.to_string(),
        params: summary.params,
        activation_elems: act,
        est_bytes,
        est_flops,
        diagnostics,
    }
}

/// Tier index matching `StudyConfig::native_steps` ordering.
fn tier_idx(tier: Tier) -> usize {
    match tier {
        Tier::S7b => 0,
        Tier::S8b => 1,
        Tier::S70b => 2,
    }
}

/// Check eval-method/prompt compatibility: an n-shot prompt must fit the
/// model's context window, and should fit the training window.
fn check_eval_window(
    diags: &mut Vec<Diagnostic>,
    subject: &str,
    shots: usize,
    seq: usize,
    max_seq: usize,
) {
    let est = (shots + 1) * EST_TOKENS_PER_QUESTION;
    if est > max_seq {
        diags.push(Diagnostic::error(
            "preflight.eval.prompt-window",
            subject,
            format!(
                "{shots}-shot prompt ≈{est} tokens exceeds max_seq {max_seq}; \
                 the question itself would be truncated"
            ),
        ));
    } else if est > seq {
        diags.push(Diagnostic::warning(
            "preflight.eval.train-window",
            subject,
            format!(
                "{shots}-shot prompt ≈{est} tokens exceeds the training window \
                 seq={seq}; eval sees relative distances never trained on"
            ),
        ));
    }
}

/// Validate study-level scalars (the checks `train_lm` and friends would
/// otherwise assert at runtime, plus the paper's hyper-parameter
/// relations).
fn check_config_scalars(cfg: &StudyConfig, label: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let subj = |part: &str| format!("{label}/{part}");
    // train_lm asserts devices ≥ 1, steps ≥ 1; LmBatch needs batch ≥ 1.
    if cfg.batch == 0 || cfg.seq == 0 || cfg.devices == 0 {
        diags.push(Diagnostic::error(
            "preflight.steps",
            &subj("shape"),
            format!(
                "batch {} / seq {} / devices {} must all be ≥ 1",
                cfg.batch, cfg.seq, cfg.devices
            ),
        ));
    }
    for (name, steps) in [
        ("native_steps[S7b]", cfg.native_steps[0]),
        ("native_steps[S8b]", cfg.native_steps[1]),
        ("native_steps[S70b]", cfg.native_steps[2]),
        ("cpt_steps", cfg.cpt_steps),
        ("sft_steps", cfg.sft_steps),
    ] {
        if steps == 0 {
            diags.push(Diagnostic::error(
                "preflight.steps",
                &subj(name),
                "0 optimizer steps — train_lm asserts steps ≥ 1".to_string(),
            ));
        }
    }
    for (name, lr) in [
        ("native_lr", cfg.native_lr),
        ("cpt_lr", cfg.cpt_lr),
        ("sft_lr", cfg.sft_lr),
    ] {
        if !(lr.is_finite() && lr > 0.0) {
            diags.push(Diagnostic::error(
                "preflight.lr",
                &subj(name),
                format!("learning rate {lr} must be finite and positive"),
            ));
        }
    }
    // The paper's LR relations (SFT ≪ CPT ≤ pretrain) are what the study
    // reproduces; violating them silently changes the experiment.
    if cfg.sft_lr >= cfg.cpt_lr {
        diags.push(Diagnostic::warning(
            "preflight.lr.relation",
            &subj("sft_lr"),
            format!(
                "sft_lr {} ≥ cpt_lr {} — the paper trains SFT far below CPT \
                 (3e-7 vs 2e-5)",
                cfg.sft_lr, cfg.cpt_lr
            ),
        ));
    }
    if cfg.cpt_lr > cfg.native_lr {
        diags.push(Diagnostic::warning(
            "preflight.lr.relation",
            &subj("cpt_lr"),
            format!("cpt_lr {} above the pretraining peak {}", cfg.cpt_lr, cfg.native_lr),
        ));
    }
    if !(0.0..=1.0).contains(&cfg.sft_json_fraction) {
        diags.push(Diagnostic::error(
            "preflight.sft.fraction",
            &subj("sft_json_fraction"),
            format!("{} is not a fraction in [0, 1]", cfg.sft_json_fraction),
        ));
    }
    if !(cfg.sft_scale.is_finite() && cfg.sft_scale > 0.0) {
        diags.push(Diagnostic::error(
            "preflight.sft.scale",
            &subj("sft_scale"),
            format!("sft_scale {} must be finite and positive", cfg.sft_scale),
        ));
    }
    if cfg.n_eval_questions == 0 {
        diags.push(Diagnostic::error(
            "preflight.eval.questions",
            &subj("n_eval_questions"),
            "0 eval questions — every score would be 0/0".to_string(),
        ));
    }
    // Tokenizer vocabulary: the BPE target must at least cover the byte +
    // special floor, and should leave room for learned merges beyond the
    // pieces `Study::prepare` force-ensures.
    let floor = vocab_floor();
    if cfg.vocab_size < floor {
        diags.push(Diagnostic::error(
            "preflight.vocab.floor",
            &subj("vocab_size"),
            format!(
                "vocab target {} below the {} byte+special floor; merges would \
                 be impossible and answer-letter variants could not exist",
                cfg.vocab_size, floor
            ),
        ));
    } else if cfg.vocab_size < floor + ensured_piece_count() {
        diags.push(Diagnostic::warning(
            "preflight.vocab.margin",
            &subj("vocab_size"),
            format!(
                "vocab target {} leaves no merge budget beyond the {} ensured \
                 pieces; the tokenizer will exceed the target anyway",
                cfg.vocab_size,
                ensured_piece_count()
            ),
        ));
    }
    diags
}

/// Statically validate everything one `StudyConfig` will execute: the
/// eight-zoo Table-I runs, the A1–A4 ablation grid, and the evaluation
/// methods. No compute, no allocation beyond diagnostics.
pub fn preflight_study(cfg: &StudyConfig, label: &str) -> PreflightReport {
    let mut config_diagnostics = check_config_scalars(cfg, label);
    // Default token-method evaluation is two-shot; the instruct method
    // generates up to 48 tokens after the prompt.
    let expected_vocab = cfg.vocab_size.max(vocab_floor() + ensured_piece_count());
    let probe = ModelConfig::tier(Tier::S8b, expected_vocab);
    check_eval_window(
        &mut config_diagnostics,
        &format!("{label}/token-method"),
        2,
        cfg.seq,
        probe.max_seq,
    );
    if 48 + 8 > probe.max_seq {
        config_diagnostics.push(Diagnostic::error(
            "preflight.eval.gen-budget",
            &format!("{label}/instruct-method"),
            format!(
                "generation budget 48 + prompt margin 8 exceeds max_seq {}",
                probe.max_seq
            ),
        ));
    }

    let step_tokens = (cfg.batch * cfg.seq * cfg.devices) as u64;
    let mut checks = Vec::new();

    // The eight models of Table I: per-model graph + budget, with FLOPs
    // covering every training phase that model goes through.
    for id in ModelId::all() {
        let tier = id.tier();
        let mcfg = ModelConfig::tier(tier, expected_vocab);
        let mut tokens = cfg.native_tokens(tier_idx(tier));
        if id.recipe().is_some() {
            tokens += cfg.cpt_tokens();
        }
        if id.has_instruct() {
            tokens += cfg.sft_steps * step_tokens;
        }
        checks.push(preflight_model(
            &mcfg,
            cfg.batch,
            cfg.seq,
            expected_vocab,
            cfg.devices,
            tokens,
            id.name(),
        ));
    }

    // A1 — data-quality channels: four CPT runs on the 8B-class config.
    for channel in ["clean", "latex-artifacts", "heavy-ocr", "heavy-ocr+nougat"] {
        let mcfg = ModelConfig::tier(Tier::S8b, expected_vocab);
        checks.push(preflight_model(
            &mcfg,
            cfg.batch,
            cfg.seq,
            expected_vocab,
            cfg.devices,
            cfg.cpt_tokens(),
            &format!("A1/{channel}"),
        ));
    }

    // A2 — SFT mixtures: the mixture sizes must stay positive after the
    // integer splits `ablation_sft_mixture` performs.
    let total = astro_world::SftMixtureConfig::paper_mixture(cfg.sft_scale).total();
    for (name, frac, size) in [
        ("astro-0", 0.0f64, total),
        ("astro-33", 1.0 / 3.0, total),
        ("astro-100", 1.0, total),
        ("astro-33-small", 1.0 / 3.0, (total / 10).max(4)),
    ] {
        let subject = format!("A2/{name}");
        let mcfg = ModelConfig::tier(Tier::S8b, expected_vocab);
        let mut check = preflight_model(
            &mcfg,
            cfg.batch,
            cfg.seq,
            expected_vocab,
            cfg.devices,
            cfg.sft_steps * step_tokens,
            &subject,
        );
        if size == 0 || (frac > 0.0 && ((size as f64) * frac).round() as usize == 0) {
            check.diagnostics.push(Diagnostic::error(
                "preflight.sft.mixture",
                &subject,
                format!("mixture of {size} conversations at astro fraction {frac:.2} is empty"),
            ));
        }
        checks.push(check);
    }

    // A3 — capacity sweep: native + CPT per tier.
    for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
        let mcfg = ModelConfig::tier(tier, expected_vocab);
        checks.push(preflight_model(
            &mcfg,
            cfg.batch,
            cfg.seq,
            expected_vocab,
            cfg.devices,
            cfg.native_tokens(tier_idx(tier)) + cfg.cpt_tokens(),
            &format!("A3/{}", tier.label()),
        ));
    }

    // A4 — eval-method options on the 8B-class native: each setting's
    // prompt must fit the context window.
    for (name, shots) in [
        ("two-shot+variants", 2usize),
        ("two-shot-no-variants", 2),
        ("zero-shot+variants", 0),
        ("zero-shot-no-variants", 0),
        ("two-shot-letter", 2),
    ] {
        let subject = format!("A4/{name}");
        let mcfg = ModelConfig::tier(Tier::S8b, expected_vocab);
        let mut check = preflight_model(
            &mcfg,
            1,
            cfg.seq.min(mcfg.max_seq),
            expected_vocab,
            1,
            (cfg.n_eval_questions * EST_TOKENS_PER_QUESTION) as u64,
            &subject,
        );
        check_eval_window(&mut check.diagnostics, &subject, shots, cfg.seq, mcfg.max_seq);
        checks.push(check);
    }

    PreflightReport {
        label: label.to_string(),
        config_diagnostics,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_pass() {
        for (label, cfg) in [
            ("smoke", StudyConfig::smoke(1)),
            ("fast", StudyConfig::fast(1)),
            ("full", StudyConfig::full(1)),
        ] {
            let report = preflight_study(&cfg, label);
            assert!(
                report.ok(),
                "{label}: {:?}",
                report
                    .all_diagnostics()
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .map(|d| d.render())
                    .collect::<Vec<_>>()
            );
            // 8 zoo + 4 A1 + 4 A2 + 3 A3 + 5 A4.
            assert_eq!(report.checks.len(), 24, "{label}");
        }
    }

    #[test]
    fn zero_steps_rejected() {
        let mut cfg = StudyConfig::smoke(1);
        cfg.cpt_steps = 0;
        let report = preflight_study(&cfg, "corrupt");
        assert!(!report.ok());
        assert!(report
            .config_diagnostics
            .iter()
            .any(|d| d.rule == "preflight.steps" && d.subject.contains("cpt_steps")));
    }

    #[test]
    fn vocab_below_floor_rejected() {
        let mut cfg = StudyConfig::smoke(1);
        cfg.vocab_size = 100;
        let report = preflight_study(&cfg, "corrupt");
        assert!(report
            .config_diagnostics
            .iter()
            .any(|d| d.rule == "preflight.vocab.floor" && d.severity == Severity::Error));
    }

    #[test]
    fn bad_lr_and_fraction_rejected() {
        let mut cfg = StudyConfig::smoke(1);
        cfg.cpt_lr = f32::NAN;
        cfg.sft_json_fraction = 1.5;
        let report = preflight_study(&cfg, "corrupt");
        let rules: Vec<&str> = report
            .config_diagnostics
            .iter()
            .map(|d| d.rule.as_str())
            .collect();
        assert!(rules.contains(&"preflight.lr"));
        assert!(rules.contains(&"preflight.sft.fraction"));
    }

    #[test]
    fn corrupt_model_config_rejected_with_pointed_diagnostic() {
        // Wrong head-dim divisibility.
        let mut mcfg = ModelConfig::tier(Tier::S8b, 512);
        mcfg.n_heads = 5; // 96 % 5 != 0
        let check = preflight_model(&mcfg, 4, 64, 512, 1, 1000, "corrupt/heads");
        assert!(!check.ok());
        assert!(check
            .diagnostics
            .iter()
            .any(|d| d.rule == "shape.heads.divisibility" && d.message.contains('5')));
        // Vocab mismatch between tokenizer and embedding rows.
        let mcfg2 = ModelConfig::tier(Tier::S8b, 300);
        let check2 = preflight_model(&mcfg2, 4, 64, 512, 1, 1000, "corrupt/vocab");
        assert!(!check2.ok());
        assert!(check2.diagnostics.iter().any(|d| d.rule == "shape.embed.rows"));
    }

    #[test]
    fn budgets_are_populated() {
        let report = preflight_study(&StudyConfig::fast(0), "fast");
        for check in &report.checks {
            assert!(check.params > 0, "{}", check.subject);
            assert!(check.est_bytes > 0, "{}", check.subject);
            assert!(check.est_flops > 0.0, "{}", check.subject);
            assert!(check.est_bytes < MEMORY_BUDGET_BYTES, "{}", check.subject);
        }
    }

    #[test]
    fn vocab_floor_matches_tokenizer_layout() {
        assert_eq!(vocab_floor(), 256 + astro_tokenizer::SPECIALS.len());
        assert!(ensured_piece_count() >= 4);
    }
}
