//! Static wait/notify protocol analysis — the lexical complement to the
//! `astro-check` model checker.
//!
//! The checker (`crates/check`) *dynamically* explores every interleaving
//! of the serving stack's condvar protocols, but only for the protocols
//! someone wrote a harness for. This pass closes the gap statically: every
//! condvar in the scanned crates must belong to a **declared protocol**
//! ([`WAIT_PROTOCOLS`]), and every declared protocol must obey the shape
//! the checker's soundness argument assumes:
//!
//! * `waits.wait-not-in-loop` — a condvar `wait`/`wait_timeout` outside a
//!   `loop`/`while`/`for` body. Spurious wakeups and multi-consumer
//!   races make a bare `if`-guarded wait a lost-wakeup bug (exactly the
//!   `WaitIfInsteadOfWhile` mutant the checker catches dynamically).
//! * `waits.no-notify` — a protocol with wait sites but no
//!   `notify_one`/`notify_all` on its condvar anywhere in the file: the
//!   waiters can never be woken.
//! * `waits.mutate-no-notify` — a function mutates a guarded predicate
//!   field (a declared *mutator* pattern) without notifying the
//!   protocol's condvar in the same function (the `DropNotifyOnClose`
//!   mutant, statically). Per-protocol *waivers* exempt mutations that
//!   cannot unblock a waiter (e.g. the pool's pending-counter increment:
//!   waiters wake on the count reaching zero, so only decrements
//!   notify).
//! * `waits.channel-no-recv` — a file creates an `mpsc` channel but
//!   never drains a receiver (`recv`/`recv_timeout`/`try_recv`/`iter`):
//!   every sender clone would block its messages into the void and
//!   senders' `send` results hide a permanently-disconnected receiver.
//! * `waits.undeclared` — a wait on a condvar not covered by any
//!   declared protocol: the model checker has no harness for it, so it
//!   has no soundness story (error, by design — declaring the protocol
//!   is the fix).
//! * `waits.unused-protocol` — a declared protocol whose file contains
//!   no wait on its condvar (warning: the table drifted from the code).
//!
//! Like [`crate::lockorder`], the pass is lexical: comments and string
//! literals are stripped, brace depth scopes loops and functions, and
//! multi-line method chains (`self\n.cv\n.wait(g)`) are resolved by
//! joining a short window of preceding lines. Lexical analysis
//! over-approximates reachability, which is the conservative direction
//! for all five error rules.

use crate::lockorder::strip_noise;
use crate::{Diagnostic, Severity};
use std::path::{Path, PathBuf};

/// A declared condvar protocol: which condvar, in which file, guarding
/// which predicate mutations.
#[derive(Clone, Copy, Debug)]
pub struct WaitProtocol {
    /// Stable protocol name for reports (`gateway.queue.cv`, …).
    pub name: &'static str,
    /// Path suffix of the file the protocol lives in.
    pub file: &'static str,
    /// Field name of the `Condvar` (`cv`, `quiescent`, …).
    pub condvar: &'static str,
    /// Line patterns that count as guarded-predicate mutations: any
    /// function containing one must also notify `condvar`.
    pub mutators: &'static [&'static str],
    /// Substrings that waive an otherwise-matching mutation line
    /// (mutations that can never unblock a waiter).
    pub waived: &'static [&'static str],
}

/// Every condvar protocol in the scanned crates. A new condvar anywhere
/// in `crates/{parallel,serve,resilience,telemetry,gateway}` must be
/// added here (and should get an `astro-check` harness) or the pass
/// fails with `waits.undeclared`.
pub const WAIT_PROTOCOLS: &[WaitProtocol] = &[
    WaitProtocol {
        name: "gateway.queue.cv",
        file: "crates/gateway/src/queue.rs",
        condvar: "cv",
        // Pushing an item or closing the queue can unblock a `pop`.
        mutators: &["items.push_back(", "closed = true"],
        waived: &[],
    },
    WaitProtocol {
        name: "parallel.pool.quiescent",
        file: "crates/parallel/src/pool.rs",
        condvar: "quiescent",
        // `join` waits for the pending counter to reach zero, so every
        // write to it is suspect — except the submit-side increment,
        // which moves the predicate *away* from true and is waived.
        mutators: &["*pending =", "*pending +="],
        waived: &["*pending += 1"],
    },
    WaitProtocol {
        name: "parallel.device.ready",
        file: "crates/parallel/src/device.rs",
        condvar: "ready",
        // Filling the mailbox slot unblocks the `take` side.
        mutators: &["*slot = Some("],
        waived: &[],
    },
    WaitProtocol {
        name: "parallel.device.taken",
        file: "crates/parallel/src/device.rs",
        condvar: "taken",
        // Emptying the slot unblocks the `put` side.
        mutators: &["slot.take()"],
        waived: &[],
    },
];

/// One lexically-observed condvar wait site.
#[derive(Clone, Debug)]
pub struct WaitSite {
    /// Receiver identifier of the `.wait(…)` call (the condvar field).
    pub condvar: String,
    /// `file:line` of the wait.
    pub at: String,
    /// Whether the wait is lexically inside a loop body.
    pub in_loop: bool,
}

/// Result of the static wait/notify pass.
#[derive(Clone, Debug, Default)]
pub struct WaitReport {
    /// Number of protocols checked.
    pub protocols: usize,
    /// Every wait site found, in scan order.
    pub sites: Vec<WaitSite>,
    /// Diagnostics from all rules.
    pub diagnostics: Vec<Diagnostic>,
}

impl WaitReport {
    /// True when no error-severity diagnostics were produced.
    pub fn ok(&self) -> bool {
        self.diagnostics.iter().all(|d| d.severity != Severity::Error)
    }
}

/// True when `line` contains `kw` as a standalone word.
fn has_keyword(line: &str, kw: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(idx) = line[from..].find(kw) {
        let start = from + idx;
        let end = start + kw.len();
        let before_ok = start == 0
            || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after_ok = end >= bytes.len()
            || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Extract the receiver identifier of a `.wait(`/`.wait_timeout(` call at
/// byte offset `at` of `line`, joining up to three preceding (stripped)
/// lines so multi-line method chains resolve (`self\n.cv\n.wait(g)`).
fn wait_receiver(prev: &[String], line: &str, at: usize) -> Option<String> {
    let mut chain = String::new();
    for p in prev {
        chain.push_str(p.trim());
    }
    chain.push_str(line[..at].trim());
    let compact: String = chain.chars().filter(|c| !c.is_whitespace()).collect();
    let ident: String = compact
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident)
    }
}

/// Per-function bookkeeping while scanning a file.
struct FnScope {
    name: String,
    /// Brace depth just *outside* the function body.
    open_depth: i64,
    /// Mutation lines seen: (protocol index, `file:line`, matched pattern).
    mutations: Vec<(usize, String, String)>,
    /// Protocol indices whose condvar this function notifies.
    notifies: Vec<usize>,
}

/// Scan one file against the protocols declared for it.
fn scan_file(path: &Path, protocols: &[WaitProtocol], report: &mut WaitReport) {
    let Ok(text) = std::fs::read_to_string(path) else {
        report.diagnostics.push(Diagnostic::error(
            "waits.io",
            &path.display().to_string(),
            "failed to read source".to_string(),
        ));
        return;
    };
    let display = path.display().to_string();
    let mine: Vec<(usize, &WaitProtocol)> = protocols
        .iter()
        .enumerate()
        .filter(|(_, p)| display.ends_with(p.file))
        .collect();

    let mut in_block_comment = false;
    let mut depth: i64 = 0;
    let mut loop_depths: Vec<i64> = Vec::new();
    let mut fn_stack: Vec<FnScope> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut prev_lines: Vec<String> = Vec::new();
    let mut channel_lines: Vec<usize> = Vec::new();
    let mut has_drain = false;
    let mut notified_in_file: Vec<bool> = vec![false; protocols.len()];
    let mut finished_fns: Vec<FnScope> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_noise(raw, &mut in_block_comment);
        let subject = format!("{display}:{lineno}");

        // A `fn` keyword opens a pending function; its body starts at the
        // next `{` (signatures may span lines).
        if has_keyword(&line, "fn") {
            if let Some(idx) = line.find("fn ") {
                let name: String = line[idx + 3..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    pending_fn = Some(name);
                }
            }
        }
        let opens_loop = has_keyword(&line, "loop")
            || has_keyword(&line, "while")
            || has_keyword(&line, "for");

        // Wait sites: resolve the receiver across the method chain.
        for pat in [".wait(", ".wait_timeout("] {
            let mut from = 0;
            while let Some(idx) = line[from..].find(pat) {
                let at = from + idx;
                let in_loop = !loop_depths.is_empty();
                if let Some(recv) = wait_receiver(&prev_lines, &line, at) {
                    report.sites.push(WaitSite {
                        condvar: recv.clone(),
                        at: subject.clone(),
                        in_loop,
                    });
                    match mine.iter().find(|(_, p)| p.condvar == recv) {
                        None => report.diagnostics.push(Diagnostic::error(
                            "waits.undeclared",
                            &subject,
                            format!(
                                "wait on condvar `{recv}` matches no declared protocol; \
                                 add it to WAIT_PROTOCOLS and give it an astro-check \
                                 harness"
                            ),
                        )),
                        Some((_, p)) => {
                            if !in_loop {
                                report.diagnostics.push(Diagnostic::error(
                                    "waits.wait-not-in-loop",
                                    &subject,
                                    format!(
                                        "wait on `{}` ({}) is not inside a predicate \
                                         re-check loop; spurious wakeups or a second \
                                         consumer make this a lost wakeup",
                                        p.condvar, p.name
                                    ),
                                ));
                            }
                        }
                    }
                }
                from = at + pat.len();
            }
        }

        // Notifies, mutations and channel use, attributed to the
        // innermost open function.
        for (pidx, p) in &mine {
            if line.contains(&format!("{}.notify", p.condvar)) {
                notified_in_file[*pidx] = true;
                if let Some(f) = fn_stack.last_mut() {
                    f.notifies.push(*pidx);
                }
            }
            for m in p.mutators {
                if line.contains(m) && !p.waived.iter().any(|w| line.contains(w)) {
                    if let Some(f) = fn_stack.last_mut() {
                        f.mutations.push((*pidx, subject.clone(), m.to_string()));
                    }
                }
            }
        }
        if ["mpsc::channel(", "channel::<", "= channel()"]
            .iter()
            .any(|pat| line.contains(pat))
        {
            channel_lines.push(lineno);
        }
        if [".recv(", ".recv_timeout(", ".try_recv(", ".iter()", ".into_iter()"]
            .iter()
            .any(|pat| line.contains(pat))
        {
            has_drain = true;
        }

        // Brace walk: maintain depth, loop scopes and function scopes.
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push(FnScope {
                            name,
                            open_depth: depth - 1,
                            mutations: Vec::new(),
                            notifies: Vec::new(),
                        });
                    } else if opens_loop && loop_depths.last() != Some(&depth) {
                        loop_depths.push(depth);
                    }
                }
                '}' => {
                    depth -= 1;
                    while loop_depths.last().is_some_and(|&d| d > depth) {
                        loop_depths.pop();
                    }
                    while fn_stack.last().is_some_and(|f| f.open_depth >= depth) {
                        if let Some(f) = fn_stack.pop() {
                            finished_fns.push(f);
                        }
                    }
                }
                _ => {}
            }
        }

        prev_lines.push(line);
        if prev_lines.len() > 3 {
            prev_lines.remove(0);
        }
    }
    finished_fns.extend(fn_stack);

    // Per-function rule: a guarded-predicate mutation with no notify of
    // the protocol condvar in the same function.
    for f in &finished_fns {
        for (pidx, at, pattern) in &f.mutations {
            if !f.notifies.contains(pidx) {
                let p = &protocols[*pidx];
                report.diagnostics.push(Diagnostic::error(
                    "waits.mutate-no-notify",
                    at,
                    format!(
                        "`{}` mutates the {} predicate (`{}`) without notifying \
                         `{}` in the same function; a parked waiter misses the \
                         transition",
                        f.name, p.name, pattern, p.condvar
                    ),
                ));
            }
        }
    }

    // File-level rules: unwakeable waiters, undrained channels.
    for (pidx, p) in &mine {
        let waited = report
            .sites
            .iter()
            .any(|s| s.at.starts_with(&display) && s.condvar == p.condvar);
        if waited && !notified_in_file[*pidx] {
            report.diagnostics.push(Diagnostic::error(
                "waits.no-notify",
                &display,
                format!(
                    "protocol {} has wait sites but `{}.notify_one/notify_all` \
                     never appears; waiters can never be woken",
                    p.name, p.condvar
                ),
            ));
        }
        if !waited {
            report.diagnostics.push(Diagnostic::warning(
                "waits.unused-protocol",
                &display,
                format!(
                    "protocol {} is declared for this file but no wait on `{}` \
                     was found; the table has drifted from the code",
                    p.name, p.condvar
                ),
            ));
        }
    }
    if !channel_lines.is_empty() && !has_drain {
        let first = channel_lines[0];
        report.diagnostics.push(Diagnostic::error(
            "waits.channel-no-recv",
            &format!("{display}:{first}"),
            "an mpsc channel is created here but no receiver is ever drained \
             (recv/recv_timeout/try_recv/iter); every Sender clone feeds a \
             queue nobody empties"
                .to_string(),
        ));
    }
}

/// Recursively collect `.rs` files under `dir` (sorted for determinism).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Run the wait/notify pass over the concurrency crates with a caller
/// supplied protocol table (tests use synthetic tables).
pub fn analyze_waits_with(root: &Path, protocols: &[WaitProtocol]) -> WaitReport {
    let mut report = WaitReport {
        protocols: protocols.len(),
        ..WaitReport::default()
    };
    let mut files = Vec::new();
    for crate_dir in [
        "crates/parallel/src",
        "crates/serve/src",
        "crates/resilience/src",
        "crates/telemetry/src",
        "crates/gateway/src",
    ] {
        rust_files(&root.join(crate_dir), &mut files);
    }
    if files.is_empty() {
        report.diagnostics.push(Diagnostic::error(
            "waits.no-sources",
            &root.display().to_string(),
            "no Rust sources found under crates/parallel, crates/serve, \
             crates/resilience, crates/telemetry or crates/gateway"
                .to_string(),
        ));
        return report;
    }
    for file in &files {
        if file.ends_with("lockcheck.rs") || file.ends_with("telemetry/src/sync.rs") {
            // The runtime checker and the sync-primitive shim implement
            // the machinery this pass audits clients of.
            continue;
        }
        scan_file(file, protocols, &mut report);
    }
    report
}

/// Run the full wait/notify pass with the repo's declared protocol table.
pub fn analyze_waits(root: &Path) -> WaitReport {
    analyze_waits_with(root, WAIT_PROTOCOLS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
    }

    /// Write `body` as the sole scanned file of a synthetic workspace and
    /// analyze it against `protocols`.
    fn scan_synthetic(tag: &str, body: &str, protocols: &[WaitProtocol]) -> WaitReport {
        let dir = std::env::temp_dir().join(format!("astro-audit-waits-{tag}-{}", std::process::id()));
        let src = dir.join("crates/gateway/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(dir.join("crates/parallel/src")).unwrap();
        std::fs::write(src.join("proto.rs"), body).unwrap();
        let report = analyze_waits_with(&dir, protocols);
        std::fs::remove_dir_all(&dir).ok();
        report
    }

    const SYNTH: &[WaitProtocol] = &[WaitProtocol {
        name: "synthetic.cv",
        file: "crates/gateway/src/proto.rs",
        condvar: "cv",
        mutators: &["items.push_back("],
        waived: &[],
    }];

    #[test]
    fn workspace_wait_protocols_are_clean() {
        let report = analyze_waits(&repo_root());
        let errors: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.render())
            .collect();
        assert!(errors.is_empty(), "wait/notify errors:\n{}", errors.join("\n"));
        assert!(report.sites.len() >= 5, "expected wait sites, got {:?}", report.sites);
    }

    #[test]
    fn every_declared_protocol_is_used() {
        let report = analyze_waits(&repo_root());
        let unused: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "waits.unused-protocol")
            .collect();
        assert!(unused.is_empty(), "unused protocols: {unused:?}");
    }

    #[test]
    fn correct_synthetic_protocol_passes() {
        let report = scan_synthetic(
            "ok",
            r#"fn push(&self) {
    let mut g = self.inner.lock().unwrap();
    g.items.push_back(1);
    self.cv.notify_one();
}
fn pop(&self) {
    let mut g = self.inner.lock().unwrap();
    while g.items.is_empty() {
        g = self.cv.wait(g).unwrap();
    }
}
"#,
            SYNTH,
        );
        assert!(report.ok(), "{:?}", report.diagnostics);
        assert_eq!(report.sites.len(), 1);
        assert!(report.sites[0].in_loop);
    }

    #[test]
    fn flags_wait_outside_loop() {
        let report = scan_synthetic(
            "ifwait",
            r#"fn pop(&self) {
    let mut g = self.inner.lock().unwrap();
    if g.items.is_empty() {
        g = self.cv.wait(g).unwrap();
    }
    self.cv.notify_one();
}
"#,
            SYNTH,
        );
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "waits.wait-not-in-loop"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn flags_protocol_without_notify() {
        let report = scan_synthetic(
            "nonotify",
            r#"fn pop(&self) {
    let mut g = self.inner.lock().unwrap();
    while g.items.is_empty() {
        g = self.cv.wait(g).unwrap();
    }
}
"#,
            SYNTH,
        );
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "waits.no-notify"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn flags_mutation_without_notify_in_same_fn() {
        // The file *does* notify (in close), so only the per-function
        // rule can catch the silent mutation in push.
        let report = scan_synthetic(
            "mutate",
            r#"fn push(&self) {
    let mut g = self.inner.lock().unwrap();
    g.items.push_back(1);
}
fn close(&self) {
    self.cv.notify_all();
}
fn pop(&self) {
    let mut g = self.inner.lock().unwrap();
    while g.items.is_empty() {
        g = self.cv.wait(g).unwrap();
    }
}
"#,
            SYNTH,
        );
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "waits.mutate-no-notify"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn waiver_exempts_declared_mutation() {
        let protos: &[WaitProtocol] = &[WaitProtocol {
            name: "synthetic.pending",
            file: "crates/gateway/src/proto.rs",
            condvar: "cv",
            mutators: &["*pending =", "*pending +="],
            waived: &["*pending += 1"],
        }];
        let report = scan_synthetic(
            "waiver",
            r#"fn submit(&self) {
    let mut pending = self.pending.lock().unwrap();
    *pending += 1;
}
fn finish(&self) {
    let mut pending = self.pending.lock().unwrap();
    *pending = pending.saturating_sub(1);
    self.cv.notify_all();
}
fn join(&self) {
    let mut pending = self.pending.lock().unwrap();
    while *pending > 0 {
        pending = self.cv.wait(pending).unwrap();
    }
}
"#,
            protos,
        );
        assert!(report.ok(), "{:?}", report.diagnostics);
    }

    #[test]
    fn flags_undeclared_condvar_wait() {
        let report = scan_synthetic(
            "undeclared",
            r#"fn pop(&self) {
    let mut g = self.inner.lock().unwrap();
    while g.items.is_empty() {
        g = self.mystery.wait(g).unwrap();
    }
    self.mystery.notify_one();
}
"#,
            SYNTH,
        );
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "waits.undeclared"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn flags_channel_without_receiver_drain() {
        let report = scan_synthetic(
            "chan",
            r#"fn start(&self) {
    let (tx, _rx) = mpsc::channel();
    tx.send(1).unwrap();
}
"#,
            &[],
        );
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "waits.channel-no-recv"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn multi_line_method_chain_resolves_receiver() {
        let report = scan_synthetic(
            "chain",
            r#"fn pop(&self) {
    let mut g = self.inner.lock().unwrap();
    while g.items.is_empty() {
        g = self
            .cv
            .wait(g)
            .unwrap();
    }
    self.cv.notify_one();
}
"#,
            SYNTH,
        );
        assert!(report.ok(), "{:?}", report.diagnostics);
        assert_eq!(report.sites.len(), 1);
        assert_eq!(report.sites[0].condvar, "cv");
        assert!(report.sites[0].in_loop);
    }
}
