//! Static lock-order analysis over the workspace's annotated lock sites.
//!
//! Every `Mutex::lock()` call in `crates/parallel`, `crates/serve`,
//! `crates/resilience`, `crates/telemetry` and `crates/gateway` is either
//! preceded by a `lockcheck::acquire("<lock name>")` annotation or taken
//! through a combined helper — `lockcheck::lock_ranked("<lock name>", …)`
//! or the model-checkable `sync::lock_ranked("<lock name>", …)` wrapper
//! from `astro_telemetry::sync` (see [`astro_telemetry::lockcheck`]).
//! This pass re-derives the lock-acquisition graph from source text
//! alone:
//!
//! * `locks.unknown` — an annotation names a lock with no declared rank.
//! * `locks.order` — an acquisition is (lexically) nested inside a lock of
//!   equal or higher rank, inverting the declared hierarchy.
//! * `locks.cycle` — the acquired-while-holding graph contains a cycle,
//!   i.e. a potential deadlock even if each individual edge looked locally
//!   justified.
//! * `locks.unannotated` — a `.lock()` call with no `acquire` annotation
//!   within the preceding few lines, so the debug-build checker cannot see
//!   it.
//! * `locks.wait-while-holding` — a condvar `wait` while more than one
//!   ranked lock is held (warning: waits release only their own mutex).
//! * `locks.unused-rank` — a declared rank no source site acquires
//!   (warning: the table has drifted from the code).
//!
//! The pass is lexical, not semantic: it tracks brace depth so a token
//! acquired inside a block stops being "held" when the block closes, which
//! matches the RAII scope of the runtime `LockToken`. Lexical nesting
//! over-approximates dynamic nesting (a guard dropped early is still
//! counted until its block ends), which is the conservative direction for
//! deadlock detection.

use crate::{Diagnostic, Severity};
use astro_telemetry::lockcheck;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// How many lines before a `.lock()` call an `acquire` annotation may sit.
const ANNOTATION_WINDOW: usize = 5;

/// One lexically-observed acquisition site.
#[derive(Clone, Debug)]
pub struct AcquireSite {
    /// Lock name as written in the annotation.
    pub name: String,
    /// `file:line` of the annotation.
    pub at: String,
}

/// Result of the static lock-order pass.
#[derive(Clone, Debug, Default)]
pub struct LockReport {
    /// Every annotation found, in scan order.
    pub sites: Vec<AcquireSite>,
    /// Distinct held→acquired edges observed (by lock name).
    pub edges: Vec<(String, String)>,
    /// Diagnostics from all rules.
    pub diagnostics: Vec<Diagnostic>,
}

impl LockReport {
    /// True when no error-severity diagnostics were produced.
    pub fn ok(&self) -> bool {
        self.diagnostics.iter().all(|d| d.severity != Severity::Error)
    }
}

/// Strip `//` line comments and the interiors of string literals so brace
/// counting and pattern matches ignore prose. Block comments are handled
/// by the caller via `in_block_comment`.
pub(crate) fn strip_noise(line: &str, in_block_comment: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if *in_block_comment {
            if c == '*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        if in_str {
            if c == '\\' {
                i += 2;
                continue;
            }
            if c == '"' {
                in_str = false;
                out.push('"');
                i += 1;
                continue;
            }
            out.push(c); // keep string contents: acquire("name") needs them
            i += 1;
            continue;
        }
        match c {
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            '"' => {
                in_str = true;
                out.push('"');
                i += 1;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Extract the lock name from a `lockcheck::acquire("…")`,
/// `lockcheck::lock_ranked("…", …)` or `sync::lock_ranked("…", …)` call,
/// if any. The combined helpers both annotate and take the lock, so a
/// site using one needs no separate `.lock()` within the annotation
/// window. `sync::lock_ranked` is the `astro_telemetry::sync` wrapper
/// that routes through the model-checker shim under `--cfg astro_check`;
/// it acquires the same rank as the `lockcheck` helpers.
fn acquire_name(line: &str) -> Option<&str> {
    let rest = [
        "lockcheck::acquire(",
        "lockcheck::lock_ranked(",
        "sync::lock_ranked(",
    ]
    .iter()
    .find_map(|pat| line.find(pat).map(|idx| &line[idx + pat.len()..]))?;
    let start = rest.find('"')? + 1;
    let end = start + rest[start..].find('"')?;
    Some(&rest[start..end])
}

/// Scan one file, pushing observed sites/edges/diagnostics.
fn scan_file(path: &Path, report: &mut LockReport) -> std::io::Result<()> {
    let text = std::fs::read_to_string(path)?;
    let display = path.display().to_string();
    // Held stack entries: (name, rank, brace depth at acquisition).
    let mut held: Vec<(String, u32, i64)> = Vec::new();
    let mut depth: i64 = 0;
    let mut in_block_comment = false;
    let mut last_acquire_line: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_noise(raw, &mut in_block_comment);
        // A lexical block closing releases tokens acquired inside it.
        // Apply closings seen on this line *after* processing its
        // acquisitions would be wrong for `}` at line start, so compute the
        // minimum depth reached while walking the line.
        let mut min_depth = depth;
        let mut d = depth;
        for c in line.chars() {
            match c {
                '{' => d += 1,
                '}' => {
                    d -= 1;
                    min_depth = min_depth.min(d);
                }
                _ => {}
            }
        }
        held.retain(|&(_, _, at)| at <= min_depth);

        let subject = format!("{display}:{lineno}");
        if let Some(name) = acquire_name(&line) {
            last_acquire_line = Some(lineno);
            report.sites.push(AcquireSite { name: name.to_string(), at: subject.clone() });
            match lockcheck::rank_of(name) {
                None => report.diagnostics.push(Diagnostic::error(
                    "locks.unknown",
                    &subject,
                    format!("acquire(\"{name}\") names a lock with no declared rank"),
                )),
                Some(rank) => {
                    if let Some((top_name, top_rank, _)) = held.last() {
                        report.edges.push((top_name.clone(), name.to_string()));
                        if rank <= *top_rank {
                            report.diagnostics.push(Diagnostic::error(
                                "locks.order",
                                &subject,
                                format!(
                                    "acquires {name} (rank {rank}) while lexically holding \
                                     {top_name} (rank {top_rank}); ranks must strictly increase"
                                ),
                            ));
                        }
                    }
                    held.push((name.to_string(), rank, d));
                }
            }
        } else if line.contains(".lock()") {
            let annotated = last_acquire_line
                .is_some_and(|l| lineno >= l && lineno - l <= ANNOTATION_WINDOW);
            if !annotated {
                report.diagnostics.push(Diagnostic::error(
                    "locks.unannotated",
                    &subject,
                    ".lock() call with no lockcheck::acquire annotation in the \
                     preceding lines; the debug-build checker cannot see it"
                        .to_string(),
                ));
            }
        }
        if line.contains(".wait(") && held.len() > 1 {
            let names: Vec<&str> = held.iter().map(|(n, _, _)| n.as_str()).collect();
            report.diagnostics.push(Diagnostic::warning(
                "locks.wait-while-holding",
                &subject,
                format!(
                    "condvar wait while holding {} ranked locks ({}); the wait \
                     releases only its own mutex",
                    held.len(),
                    names.join(", ")
                ),
            ));
        }
        depth = d;
    }
    Ok(())
}

/// Recursively collect `.rs` files under `dir` (sorted for determinism).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Depth-first cycle search over the held→acquired edge set.
fn find_cycle(edges: &[(String, String)]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().insert(b);
    }
    // Colours: 0 unvisited, 1 on stack, 2 done.
    let mut colour: BTreeMap<&str, u8> = BTreeMap::new();
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        colour: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        colour.insert(node, 1);
        stack.push(node);
        if let Some(nexts) = adj.get(node) {
            for &next in nexts {
                match colour.get(next).copied().unwrap_or(0) {
                    0 => {
                        if let Some(c) = dfs(next, adj, colour, stack) {
                            return Some(c);
                        }
                    }
                    1 => {
                        let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            stack[pos..].iter().map(|s| s.to_string()).collect();
                        cycle.push(next.to_string());
                        return Some(cycle);
                    }
                    _ => {}
                }
            }
        }
        stack.pop();
        colour.insert(node, 2);
        None
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for node in nodes {
        if colour.get(node).copied().unwrap_or(0) == 0 {
            let mut stack = Vec::new();
            if let Some(c) = dfs(node, &adj, &mut colour, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// Run the full static lock-order pass over `<root>/crates/parallel/src`,
/// `<root>/crates/serve/src`, `<root>/crates/resilience/src`,
/// `<root>/crates/telemetry/src` and `<root>/crates/gateway/src`.
pub fn analyze_locks(root: &Path) -> LockReport {
    let mut report = LockReport::default();
    let mut files = Vec::new();
    for crate_dir in [
        "crates/parallel/src",
        "crates/serve/src",
        "crates/resilience/src",
        "crates/telemetry/src",
        "crates/gateway/src",
    ] {
        rust_files(&root.join(crate_dir), &mut files);
    }
    if files.is_empty() {
        report.diagnostics.push(Diagnostic::error(
            "locks.no-sources",
            &root.display().to_string(),
            "no Rust sources found under crates/parallel, crates/serve, crates/resilience, \
             crates/telemetry or crates/gateway"
                .to_string(),
        ));
        return report;
    }
    for file in &files {
        if file.ends_with("lockcheck.rs") {
            continue; // the checker's own implementation, not a client
        }
        if file.ends_with("telemetry/src/sync.rs") {
            // The sync-primitive re-export shim: its `lock_ranked` wrapper
            // performs the annotated acquisition on behalf of every
            // caller, so its own raw `.lock()` is the annotation
            // mechanism, not an unannotated client site.
            continue;
        }
        if let Err(e) = scan_file(file, &mut report) {
            report.diagnostics.push(Diagnostic::error(
                "locks.io",
                &file.display().to_string(),
                format!("failed to read source: {e}"),
            ));
        }
    }
    report.edges.sort();
    report.edges.dedup();
    if let Some(cycle) = find_cycle(&report.edges) {
        report.diagnostics.push(Diagnostic::error(
            "locks.cycle",
            "lock graph",
            format!("acquisition cycle: {}", cycle.join(" -> ")),
        ));
    }
    let seen: BTreeSet<&str> = report.sites.iter().map(|s| s.name.as_str()).collect();
    for declared in lockcheck::RANKS {
        if !seen.contains(declared.name) {
            report.diagnostics.push(Diagnostic::warning(
                "locks.unused-rank",
                declared.name,
                format!(
                    "rank {} is declared but no source site acquires it",
                    declared.rank
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
    }

    #[test]
    fn workspace_lock_graph_is_clean() {
        let report = analyze_locks(&repo_root());
        let errors: Vec<String> =
            report.diagnostics.iter().filter(|d| d.severity == Severity::Error).map(|d| d.render()).collect();
        assert!(errors.is_empty(), "lock-order errors:\n{}", errors.join("\n"));
        assert!(!report.sites.is_empty(), "expected annotated lock sites");
    }

    #[test]
    fn every_declared_rank_is_used() {
        let report = analyze_locks(&repo_root());
        let unused: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "locks.unused-rank")
            .collect();
        assert!(unused.is_empty(), "unused ranks: {:?}", unused);
    }

    #[test]
    fn acquire_name_extraction() {
        assert_eq!(
            acquire_name("let _o = astro_telemetry::lockcheck::acquire(\"telemetry.sink\");"),
            Some("telemetry.sink")
        );
        assert_eq!(
            acquire_name(
                "let (_o, g) = crate::lockcheck::lock_ranked(\"gateway.queue\", &self.inner);"
            ),
            Some("gateway.queue")
        );
        assert_eq!(
            acquire_name(
                "let (_order, mut inner) = sync::lock_ranked(\"gateway.queue\", &self.inner);"
            ),
            Some("gateway.queue")
        );
        assert_eq!(
            acquire_name(
                "let (_t, g) = crate::sync::lock_ranked(\"telemetry.trace.ring\", ring());"
            ),
            Some("telemetry.trace.ring")
        );
        assert_eq!(acquire_name("let x = foo();"), None);
    }

    #[test]
    fn detects_inverted_order_in_synthetic_source() {
        let dir = std::env::temp_dir().join(format!("astro-audit-locks-{}", std::process::id()));
        let src = dir.join("crates/parallel/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(dir.join("crates/telemetry/src")).unwrap();
        std::fs::write(
            src.join("bad.rs"),
            r#"fn bad() {
    let _a = lockcheck::acquire("telemetry.sink");
    let _g1 = SINK.lock().expect("x");
    let _b = lockcheck::acquire("parallel.pool.pending");
    let _g2 = PENDING.lock().expect("x");
}
"#,
        )
        .unwrap();
        let report = analyze_locks(&dir);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "locks.order"),
            "expected locks.order error, got: {:?}",
            report.diagnostics
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detects_unannotated_lock_site() {
        let dir = std::env::temp_dir().join(format!("astro-audit-unann-{}", std::process::id()));
        let src = dir.join("crates/telemetry/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(dir.join("crates/parallel/src")).unwrap();
        std::fs::write(src.join("raw.rs"), "fn raw() {\n    let _g = M.lock().unwrap();\n}\n")
            .unwrap();
        let report = analyze_locks(&dir);
        assert!(report.diagnostics.iter().any(|d| d.rule == "locks.unannotated"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detects_synthetic_cycle() {
        let edges = vec![
            ("a".to_string(), "b".to_string()),
            ("b".to_string(), "c".to_string()),
            ("c".to_string(), "a".to_string()),
        ];
        let cycle = find_cycle(&edges).expect("cycle expected");
        assert!(cycle.len() >= 3);
        assert!(find_cycle(&[("a".to_string(), "b".to_string())]).is_none());
    }
}
