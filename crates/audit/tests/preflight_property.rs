//! Property test: the static preflight and the runtime shape asserts
//! agree.
//!
//! Using the in-repo PRNG, generate random model/run configurations.
//! Whatever `preflight_model` accepts must run a real forward pass through
//! `astro_model::TrainContext` without tripping any runtime assert; a
//! corrupted variant of the same configuration (non-dividing head count,
//! odd head dim, tokenizer/embedding vocab mismatch, over-long sequence)
//! must be rejected statically with an error diagnostic.

use astro_audit::preflight::preflight_model;
use astro_model::{ModelConfig, Params, TrainContext};
use astro_prng::Rng;

/// Draw a small random configuration. Dims are kept tiny so the accepted
/// cases can afford a real forward pass each.
fn random_config(rng: &mut Rng) -> (ModelConfig, usize, usize) {
    let n_heads = 1 + rng.index(3); // 1..=3
    let head_dim = 2 * (1 + rng.index(4)); // even: 2,4,6,8
    let d_model = n_heads * head_dim;
    let cfg = ModelConfig {
        vocab_size: 280 + rng.index(64),
        d_model,
        n_layers: 1 + rng.index(2),
        n_heads,
        d_ff: d_model + rng.index(2 * d_model + 1),
        max_seq: 16 + rng.index(17), // 16..=32
    };
    let batch = 1 + rng.index(2);
    let seq = 4 + rng.index(cfg.max_seq - 4); // 4..max_seq
    (cfg, batch, seq)
}

#[test]
fn accepted_configs_never_trip_runtime_asserts() {
    let mut rng = Rng::seed_from(0x5eed_a0d1);
    let mut accepted = 0;
    for _ in 0..25 {
        let (cfg, batch, seq) = random_config(&mut rng);
        let report = preflight_model(
            &cfg,
            batch,
            seq,
            cfg.vocab_size, // consistent tokenizer
            1,
            1_000,
            "prop",
        );
        if !report.ok() {
            continue; // rejected: nothing to cross-check here
        }
        accepted += 1;
        // The static pass accepted it: the runtime graph must accept it
        // too. Any shape assert in astro_tensor/astro_model fails the
        // test by panicking.
        let mut init_rng = rng.substream("init");
        let params = Params::init(cfg, &mut init_rng);
        let mut ctx = TrainContext::new(cfg, batch, seq);
        let tokens: Vec<u32> =
            (0..batch * seq).map(|_| rng.index(cfg.vocab_size) as u32).collect();
        let targets: Vec<usize> = (0..batch * seq).map(|_| rng.index(cfg.vocab_size)).collect();
        let mask = vec![true; batch * seq];
        let loss = ctx.loss(&params, &tokens, &targets, &mask);
        assert!(loss.is_finite(), "accepted config produced non-finite loss: {cfg:?}");
    }
    assert!(accepted >= 10, "only {accepted}/25 random configs accepted; generator too strict");
}

#[test]
fn corrupted_configs_are_rejected() {
    let mut rng = Rng::seed_from(0xbad_c0de);
    let mut rejected = [0usize; 4];
    for round in 0..40 {
        let (cfg, batch, seq) = random_config(&mut rng);
        let base = preflight_model(&cfg, batch, seq, cfg.vocab_size, 1, 1_000, "prop");
        if !base.ok() {
            continue;
        }
        let kind = round % 4;
        let (mutated, tokenizer_vocab, run_seq, expect_rule) = match kind {
            // Head count that does not divide d_model (d_model is a
            // multiple of n_heads*2; n_heads = d_model+1 never divides
            // a positive d_model except d_model=1, excluded by evenness).
            0 => (
                ModelConfig { n_heads: cfg.d_model + 1, ..cfg },
                cfg.vocab_size,
                seq,
                "shape.heads.divisibility",
            ),
            // Odd head dim: 1 head over an odd d_model breaks RoPE.
            1 => (
                ModelConfig { d_model: cfg.d_model + 1, n_heads: 1, ..cfg },
                cfg.vocab_size,
                seq,
                "shape.rope.head-dim",
            ),
            // Tokenizer knows more ids than the embedding has rows.
            2 => (cfg, cfg.vocab_size + 17, seq, "shape.embed.rows"),
            // Sequence longer than the RoPE table.
            _ => (cfg, cfg.vocab_size, cfg.max_seq + 1, "shape.seq.max"),
        };
        let report =
            preflight_model(&mutated, batch, run_seq, tokenizer_vocab, 1, 1_000, "prop-bad");
        assert!(
            !report.ok(),
            "corruption kind {kind} not rejected: cfg {mutated:?} tokenizer {tokenizer_vocab} \
             seq {run_seq}"
        );
        assert!(
            report.diagnostics.iter().any(|d| d.rule == expect_rule),
            "corruption kind {kind}: expected rule {expect_rule}, got {:?}",
            report.diagnostics.iter().map(|d| d.rule.clone()).collect::<Vec<_>>()
        );
        rejected[kind] += 1;
    }
    assert!(
        rejected.iter().all(|&n| n > 0),
        "every corruption kind must be exercised at least once: {rejected:?}"
    );
}
