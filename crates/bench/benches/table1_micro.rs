//! E1/E2 micro version — the Table I / Figure 1 pipeline end-to-end at
//! smoke scale under Criterion timing, so `cargo bench` exercises the
//! experiment-regeneration path itself. (The paper-scale regeneration
//! binaries are `table1`, `figure1`, `costs`, `ablation_*`.)

use astromlab::{Study, StudyConfig};
use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("study_pipeline");
    group.sample_size(10);
    group.bench_function("prepare_smoke", |b| {
        b.iter(|| Study::prepare(StudyConfig::smoke(42)));
    });

    let study = Study::prepare(StudyConfig::smoke(42));
    group.bench_function("pretrain_native_7b_smoke", |b| {
        b.iter(|| study.pretrain_native(astromlab::model::Tier::S7b));
    });

    let (native, _) = study.pretrain_native(astromlab::model::Tier::S7b);
    group.bench_function("eval_token_base_smoke", |b| {
        b.iter(|| study.eval(&native, astromlab::eval::Method::TokenBase));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_pipeline
}
criterion_main!(benches);
