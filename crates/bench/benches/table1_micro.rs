//! E1/E2 micro version — the Table I / Figure 1 pipeline end-to-end at
//! smoke scale under the microbench harness, so `cargo bench` exercises
//! the experiment-regeneration path itself. (The paper-scale regeneration
//! binaries are `table1`, `figure1`, `costs`, `ablation_*`.)

use astro_bench::micro::Micro;
use astromlab::{Study, StudyConfig};

fn main() {
    let mut group = Micro::new("study_pipeline");
    group.bench("prepare_smoke", || Study::prepare(StudyConfig::smoke(42)).expect("prepare"));

    let study = Study::prepare(StudyConfig::smoke(42)).expect("prepare");
    group.bench("pretrain_native_7b_smoke", || {
        study.pretrain_native(astromlab::model::Tier::S7b).expect("pretrain")
    });

    let (native, _) = study.pretrain_native(astromlab::model::Tier::S7b).expect("pretrain");
    group.bench("eval_token_base_smoke", || {
        study.eval(&native, astromlab::eval::Method::TokenBase)
    });
}
