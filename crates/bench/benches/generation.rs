//! P4 — autoregressive generation throughput with the KV cache, per tier.
//! This bounds the cost of the full-instruct evaluation (the paper spent
//! 64 A100-hours on it for the 70B model).

use astro_bench::micro::{Micro, Throughput};
use astro_model::{InferenceSession, ModelConfig, Params, Tier};
use astro_prng::Rng;

fn main() {
    let mut group = Micro::new("generation");
    for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
        let cfg = ModelConfig::tier(tier, 512);
        let params = Params::init(cfg, &mut Rng::seed_from(3));
        let prompt: Vec<u32> = (0..64u32).map(|i| i % 500).collect();
        let gen_tokens = 64usize;
        group.throughput(Throughput::Elements((prompt.len() + gen_tokens) as u64));
        group.bench(&format!("prompt64_gen64/{}", tier.label()), || {
            let mut sess = InferenceSession::new(cfg);
            sess.feed_prompt(&params, &prompt);
            let mut tok = 1u32;
            for _ in 0..gen_tokens {
                let logits = sess.feed(&params, tok);
                tok = astro_model::argmax(logits) as u32;
            }
            tok
        });
    }
}
