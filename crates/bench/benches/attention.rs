//! P2 — full training-step throughput per model tier (forward + backward
//! including attention), the number that sizes every experiment preset.

use astro_bench::micro::{Micro, Throughput};
use astro_model::{ModelConfig, Params, Tier, TrainContext};
use astro_prng::Rng;

fn main() {
    let mut group = Micro::new("train_step");
    for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
        let cfg = ModelConfig::tier(tier, 512);
        let params = Params::init(cfg, &mut Rng::seed_from(1));
        let (b, t) = (4usize, 96usize);
        let mut ctx = TrainContext::new(cfg, b, t);
        let mut rng = Rng::seed_from(2);
        let tokens: Vec<u32> = (0..b * t).map(|_| rng.below(512) as u32).collect();
        let targets: Vec<usize> = (0..b * t).map(|_| rng.index(512)).collect();
        let mask = vec![true; b * t];
        let mut grad = vec![0.0f32; params.data.len()];
        group.throughput(Throughput::Elements((b * t) as u64));
        group.bench(&format!("loss_and_grad/{}", tier.label()), || {
            grad.fill(0.0);
            ctx.loss_and_grad(&params, &tokens, &targets, &mask, &mut grad)
        });
    }
}
