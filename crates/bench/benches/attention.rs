//! P2 — full training-step throughput per model tier (forward + backward
//! including attention), the number that sizes every experiment preset.

use astro_model::{ModelConfig, Params, Tier, TrainContext};
use astro_prng::Rng;
use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
        let cfg = ModelConfig::tier(tier, 512);
        let params = Params::init(cfg, &mut Rng::seed_from(1));
        let (b, t) = (4usize, 96usize);
        let mut ctx = TrainContext::new(cfg, b, t);
        let mut rng = Rng::seed_from(2);
        let tokens: Vec<u32> = (0..b * t).map(|_| rng.below(512) as u32).collect();
        let targets: Vec<usize> = (0..b * t).map(|_| rng.index(512)).collect();
        let mask = vec![true; b * t];
        let mut grad = vec![0.0f32; params.data.len()];
        group.throughput(Throughput::Elements((b * t) as u64));
        group.bench_with_input(
            BenchmarkId::new("loss_and_grad", tier.label()),
            &(),
            |be, _| {
                be.iter(|| {
                    grad.fill(0.0);
                    ctx.loss_and_grad(&params, &tokens, &targets, &mask, &mut grad)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500)).sample_size(10);
    targets = bench_train_step
}
criterion_main!(benches);
