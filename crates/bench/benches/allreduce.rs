//! P5 — ring all-reduce throughput across simulated device counts, at the
//! gradient-buffer sizes of the model tiers.

use astro_bench::micro::{Micro, Throughput};
use astro_parallel::ring_all_reduce;

fn main() {
    let mut group = Micro::new("ring_all_reduce");
    for &devices in &[2usize, 4, 8] {
        for &len in &[80_000usize, 820_000] {
            let mut buffers: Vec<Vec<f32>> = (0..devices)
                .map(|d| (0..len).map(|i| (d * len + i) as f32 * 1e-6).collect())
                .collect();
            group.throughput(Throughput::Elements((len * devices) as u64));
            group.bench(&format!("{devices}dev/{len}"), || {
                let mut refs: Vec<&mut [f32]> =
                    buffers.iter_mut().map(|v| v.as_mut_slice()).collect();
                ring_all_reduce(&mut refs)
            });
        }
    }
}
