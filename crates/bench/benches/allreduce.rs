//! P5 — ring all-reduce throughput across simulated device counts, at the
//! gradient-buffer sizes of the model tiers.

use astro_parallel::ring_all_reduce;
use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_all_reduce");
    for &devices in &[2usize, 4, 8] {
        for &len in &[80_000usize, 820_000] {
            let mut buffers: Vec<Vec<f32>> = (0..devices)
                .map(|d| (0..len).map(|i| (d * len + i) as f32 * 1e-6).collect())
                .collect();
            group.throughput(Throughput::Elements((len * devices) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{devices}dev"), len),
                &(),
                |b, _| {
                    b.iter(|| {
                        let mut refs: Vec<&mut [f32]> =
                            buffers.iter_mut().map(|v| v.as_mut_slice()).collect();
                        ring_all_reduce(&mut refs)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500)).sample_size(10);
    targets = bench_allreduce
}
criterion_main!(benches);
