//! P1 — matmul kernel throughput in the three orientations the
//! transformer uses, at sizes matching the model tiers.

use astro_bench::micro::{black_box, Micro, Throughput};
use astro_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b};

fn main() {
    let mut group = Micro::new("matmul");
    for &(m, k, n) in &[(96usize, 48usize, 48usize), (96, 112, 112), (96, 112, 512)] {
        let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.1).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.1).collect();
        let bt: Vec<f32> = (0..n * k).map(|i| (i % 7) as f32 * 0.1).collect();
        let at: Vec<f32> = (0..k * m).map(|i| (i % 13) as f32 * 0.1).collect();
        let mut out = vec![0.0f32; m * n];
        let flops = (2 * m * k * n) as u64;
        group.throughput(Throughput::Elements(flops));
        group.bench(&format!("a_b/{m}x{k}x{n}"), || {
            matmul(black_box(&mut out), black_box(&a), black_box(&b), m, k, n)
        });
        group.bench(&format!("a_bt/{m}x{k}x{n}"), || {
            matmul_a_bt(black_box(&mut out), black_box(&a), black_box(&bt), m, k, n)
        });
        group.bench(&format!("at_b/{m}x{k}x{n}"), || {
            matmul_at_b(black_box(&mut out), black_box(&at), black_box(&b), m, k, n)
        });
    }
}
