//! P3 — tokenizer throughput: BPE training and encoding speed on
//! corpus-like text.

use astro_bench::micro::{black_box, Micro, Throughput};
use astro_prng::Rng;
use astro_tokenizer::{train_bpe, BpeTrainerConfig};
use astro_world::{general_corpus, World, WorldConfig};

fn main() {
    let world = World::generate(1, WorldConfig::small());
    let mut rng = Rng::seed_from(1);
    let docs = general_corpus(&world, 200, &mut rng);
    let texts: Vec<String> = docs.iter().map(|d| d.text.clone()).collect();
    let corpus_bytes: usize = texts.iter().map(|t| t.len()).sum();

    let mut group = Micro::new("tokenizer");
    group.throughput(Throughput::Bytes(corpus_bytes as u64));
    group.bench("train_bpe_vocab512", || {
        train_bpe(
            black_box(&texts),
            &BpeTrainerConfig {
                vocab_size: 512,
                min_pair_count: 2,
                ensure_pieces: Vec::new(),
            },
        )
    });

    let tok = train_bpe(
        &texts,
        &BpeTrainerConfig {
            vocab_size: 512,
            min_pair_count: 2,
            ensure_pieces: Vec::new(),
        },
    );
    let sample = texts.join(" ");
    group.throughput(Throughput::Bytes(sample.len() as u64));
    group.bench("encode", || tok.encode(black_box(&sample)));
    let ids = tok.encode(&sample);
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench("decode", || tok.decode(black_box(&ids)));
}
