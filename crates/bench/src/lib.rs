//! Shared helpers for the experiment-regeneration binaries and the
//! microbench entry points under `benches/`.
//!
//! Every regeneration binary follows the same observability protocol
//! (see `docs/OBSERVABILITY.md`): [`instrumented_run`] parses the
//! `[smoke|fast|full] [seed]` arguments, opens a `telemetry.jsonl` sink
//! in the working directory and starts a run manifest; [`BenchRun::finish`]
//! writes `run_manifest.json`, flushes the sink and prints the span/metric
//! summary tree.

pub mod micro;

use astromlab::StudyConfig;
use std::path::Path;

/// Parse `[smoke|fast|full] [seed]` from the command line; defaults to
/// `fast 42`. Logs the choice so runs are self-describing.
pub fn preset_from_args(binary: &str) -> StudyConfig {
    parse_preset(binary).1
}

fn parse_preset(binary: &str) -> (String, StudyConfig) {
    let args: Vec<String> = std::env::args().collect();
    let preset = args.get(1).map(|s| s.as_str()).unwrap_or("fast");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let config = match preset {
        "micro" => StudyConfig::micro(seed),
        "smoke" => StudyConfig::smoke(seed),
        "fast" => StudyConfig::fast(seed),
        "full" => StudyConfig::full(seed),
        other => {
            astro_telemetry::info!("{binary}: unknown preset {other:?}; use micro|smoke|fast|full");
            std::process::exit(2);
        }
    };
    astro_telemetry::info!("{binary}: preset={preset} seed={seed}");
    (preset.to_string(), config)
}

/// Telemetry lifecycle of one experiment-regeneration run.
pub struct BenchRun {
    manifest: astro_telemetry::RunManifest,
}

/// Parse the preset arguments and start an instrumented run: opens the
/// `telemetry.jsonl` JSONL sink in the working directory and begins the
/// run manifest (config-hashed over the preset's `Debug` representation).
pub fn instrumented_run(binary: &str) -> (StudyConfig, BenchRun) {
    astro_telemetry::init_clock();
    let (preset, config) = parse_preset(binary);
    // Static preflight: shape/dtype/budget-check the whole study grid for
    // this preset and refuse to start on any error — the same pass CI runs
    // via `astro-audit preflight --all-presets`.
    let preflight = astro_audit::preflight_study(&config, &preset);
    for d in preflight.all_diagnostics() {
        match d.severity {
            astro_audit::Severity::Error => astro_telemetry::info!("{binary}: {}", d.render()),
            astro_audit::Severity::Warning => astro_telemetry::debug!("{binary}: {}", d.render()),
        }
    }
    if preflight.errors() > 0 {
        astro_telemetry::info!(
            "{binary}: preflight rejected preset {preset:?} with {} errors; aborting",
            preflight.errors()
        );
        std::process::exit(1);
    }
    if let Err(e) = astro_telemetry::sink::init_file(Path::new("telemetry.jsonl")) {
        astro_telemetry::info!("{binary}: telemetry.jsonl unavailable ({e}); events dropped");
    }
    let manifest = astro_telemetry::RunManifest::begin(
        binary,
        &preset,
        config.seed,
        &format!("{config:?}"),
    );
    (config, BenchRun { manifest })
}

impl BenchRun {
    /// Attach an extra key/value to the manifest (output files, stage
    /// stats, ...).
    pub fn add(&mut self, key: &str, value: &str) {
        self.manifest.add(key, value);
    }

    /// Stamp the manifest, write `run_manifest.json`, flush the JSONL
    /// sink, and print the end-of-run span/metric summary.
    pub fn finish(mut self) {
        self.manifest.finish();
        if let Err(e) = self.manifest.write(Path::new("run_manifest.json")) {
            astro_telemetry::info!("run_manifest.json not written: {e}");
        }
        astro_telemetry::Event::new("run_end")
            .str_field("binary", &self.manifest.binary)
            .f64_field("wall_secs", self.manifest.wall_secs)
            .u64_field("peak_rss_kb", self.manifest.peak_rss_kb)
            .emit();
        for line in astro_telemetry::summary::render().lines() {
            astro_telemetry::info!("{line}");
        }
        astro_telemetry::info!(
            "manifest: preset={} seed={} config={} wall={:.1}s peak_rss={}MB \
             (telemetry.jsonl, run_manifest.json)",
            self.manifest.preset,
            self.manifest.seed,
            self.manifest.config_hash,
            self.manifest.wall_secs,
            self.manifest.peak_rss_kb / 1024
        );
        astro_telemetry::sink::flush();
    }
}

/// Minimal JSON-object emitter for machine-readable bench outputs
/// (`BENCH_table1.json`). Writes the same JSON subset
/// `astro_eval::json` parses.
pub struct JsonObject {
    out: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> JsonObject {
        JsonObject { out: String::from("{") }
    }

    fn key(&mut self, k: &str) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
        astro_telemetry::event::write_json_string(&mut self.out, k);
        self.out.push(':');
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        astro_telemetry::event::write_json_string(&mut self.out, v);
        self
    }

    /// Add a numeric field (non-finite values become `null`).
    pub fn num(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Insert a pre-serialised JSON value (object, array, ...).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.out.push_str(v);
        self
    }

    /// Close the object and return the serialised JSON.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_presets_construct() {
        let _ = StudyConfig::smoke(42);
        let _ = StudyConfig::fast(42);
        let _ = StudyConfig::full(42);
    }

    #[test]
    fn json_object_emits_parseable_subset() {
        let mut o = JsonObject::new();
        o.str("name", "table1").num("score", 62.5).raw("stages", "[1,2]");
        let s = o.finish();
        assert_eq!(s, "{\"name\":\"table1\",\"score\":62.5,\"stages\":[1,2]}");
    }
}
