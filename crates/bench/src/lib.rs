//! Shared helpers for the experiment-regeneration binaries.

use astromlab::StudyConfig;

/// Parse `[smoke|fast|full] [seed]` from the command line; defaults to
/// `fast 42`. Prints the choice to stderr so logs are self-describing.
pub fn preset_from_args(binary: &str) -> StudyConfig {
    let args: Vec<String> = std::env::args().collect();
    let preset = args.get(1).map(|s| s.as_str()).unwrap_or("fast");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let config = match preset {
        "smoke" => StudyConfig::smoke(seed),
        "fast" => StudyConfig::fast(seed),
        "full" => StudyConfig::full(seed),
        other => {
            eprintln!("{binary}: unknown preset {other:?}; use smoke|fast|full");
            std::process::exit(2);
        }
    };
    eprintln!("{binary}: preset={preset} seed={seed}");
    config
}

#[cfg(test)]
mod tests {
    // preset_from_args reads process args; its parsing branches are
    // exercised indirectly by the binaries. Assert the defaults here.
    use astromlab::StudyConfig;

    #[test]
    fn default_presets_construct() {
        let _ = StudyConfig::smoke(42);
        let _ = StudyConfig::fast(42);
        let _ = StudyConfig::full(42);
    }
}
