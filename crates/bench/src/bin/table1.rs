//! Regenerate **Table I**: the eight LLaMA/AstroLLaMA models under the
//! three benchmarking methods, with ↑/↓/⇒ arrows against each series'
//! native baseline.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin table1 -- [smoke|fast|full] [seed]
//! ```
//! Default preset: `fast` (minutes on one core). The run is fully
//! deterministic in the seed. Alongside the measured table, the paper's
//! published numbers are printed for shape comparison; see EXPERIMENTS.md
//! for the recorded analysis.
//!
//! Outputs (working directory): `telemetry.jsonl`, `run_manifest.json`,
//! and the machine-readable `BENCH_table1.json` (scores + stage wall
//! times + tokens/sec) that future performance PRs diff against.

use astro_bench::{instrumented_run, JsonObject};
use astro_telemetry::info;
use astromlab::eval::value::{summarize_gain, FLAGSHIP_SCORES};
use astromlab::eval::Method;
use astromlab::study::{build_rows, StudyResult};
use astromlab::{ModelId, Study};

fn main() {
    let (config, mut run) = instrumented_run("table1");
    let start = std::time::Instant::now();
    let study = Study::prepare(config).expect("prepare");
    info!(
        "world: {} articles / {} facts | benchmark: {} MCQs | eval subset: {}",
        study.world.articles.len(),
        study.world.facts.len(),
        study.mcq.len(),
        study.config.n_eval_questions
    );
    info!("training 3 natives + 5 CPT variants + 7 instruct models ...");
    let result = study.run_table1().expect("run_table1");

    println!("\n=== Table I (measured, this reproduction) ===\n");
    println!("{}", result.table1);

    println!("=== Table I (paper, for shape comparison) ===\n");
    let paper_scores: Vec<(ModelId, [Option<f64>; 3])> = ModelId::all()
        .iter()
        .map(|&id| (id, id.paper_scores()))
        .collect();
    println!(
        "{}",
        astromlab::eval::report::render_table1(&build_rows(&paper_scores))
    );

    // §VI analysis: the 70B gain in cost-efficiency terms.
    if let (Some(cpt), Some(native)) = (
        result.score(ModelId::AstroLlama2_70bAic, Method::TokenBase),
        result.score(ModelId::Llama2_70b, Method::TokenBase),
    ) {
        let v = summarize_gain(cpt, native);
        println!(
            "70B-class CPT gain (token base): {:+.1} points → implied value ratio {:.2}x \
             (paper: +{:.1} points → ~4x)",
            v.delta_points, v.value_multiplier, v.paper_gain
        );
    }
    println!("\nflagship context (paper §VI): ");
    for (name, score) in FLAGSHIP_SCORES {
        println!("  {name:<22} {score:.1}%");
    }

    println!("\nfull-instruct parse trouble (interpreter+failed fraction):");
    for (id, rate) in &result.parse_trouble {
        if id.has_instruct() {
            println!("  {:<34} {:.0}%", id.name(), rate * 100.0);
        }
    }

    let wall = start.elapsed().as_secs_f64();
    let bench_json = bench_table1_json(&result, wall);
    match std::fs::write("BENCH_table1.json", &bench_json) {
        Ok(()) => run.add("bench_json", "BENCH_table1.json"),
        Err(e) => info!("BENCH_table1.json not written: {e}"),
    }
    println!();
    run.finish();
}

/// Serialise scores + per-stage wall times + training throughput into the
/// JSON subset the in-repo parser reads.
fn bench_table1_json(result: &StudyResult, wall_secs: f64) -> String {
    let mut scores = String::from("{");
    for (id, s) in &result.scores {
        let mut o = JsonObject::new();
        for (method, v) in Method::all().iter().zip(s.iter()) {
            match v {
                Some(pct) => o.num(method.key(), *pct),
                None => o.raw(method.key(), "null"),
            };
        }
        if scores.len() > 1 {
            scores.push(',');
        }
        astro_telemetry::event::write_json_string(&mut scores, id.name());
        scores.push(':');
        scores.push_str(&o.finish());
    }
    scores.push('}');

    // Stage wall times: aggregate closed spans by name (seconds).
    let mut stages = JsonObject::new();
    let spans = astro_telemetry::span::snapshot();
    let mut by_name: Vec<(String, f64)> = Vec::new();
    for s in &spans {
        if s.end_us.is_none() {
            continue;
        }
        let secs = s.duration_us() as f64 / 1e6;
        match by_name.iter_mut().find(|(n, _)| *n == s.name) {
            Some(slot) => slot.1 += secs,
            None => by_name.push((s.name.clone(), secs)),
        }
    }
    for (name, secs) in &by_name {
        stages.num(name, *secs);
    }

    let metrics = astro_telemetry::metrics::snapshot();
    let tokens = metrics
        .counters
        .iter()
        .find(|(n, _)| n == "train.tokens")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    let train_secs: f64 = spans
        .iter()
        .filter(|s| s.name == "train" && s.end_us.is_some())
        .map(|s| s.duration_us() as f64 / 1e6)
        .sum();

    let mut top = JsonObject::new();
    top.str("bench", "table1")
        .num("wall_secs", wall_secs)
        .num("train_tokens", tokens as f64)
        .num("train_secs", train_secs)
        .num(
            "tokens_per_sec",
            if train_secs > 0.0 { tokens as f64 / train_secs } else { 0.0 },
        )
        .raw("scores", &scores)
        .raw("stage_secs", &stages.finish());
    let mut out = top.finish();
    out.push('\n');
    out
}
