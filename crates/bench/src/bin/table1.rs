//! Regenerate **Table I**: the eight LLaMA/AstroLLaMA models under the
//! three benchmarking methods, with ↑/↓/⇒ arrows against each series'
//! native baseline.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin table1 -- [smoke|fast|full] [seed]
//! ```
//! Default preset: `fast` (minutes on one core). The run is fully
//! deterministic in the seed. Alongside the measured table, the paper's
//! published numbers are printed for shape comparison; see EXPERIMENTS.md
//! for the recorded analysis.

use astro_bench::preset_from_args;
use astromlab::eval::value::{summarize_gain, FLAGSHIP_SCORES};
use astromlab::eval::Method;
use astromlab::study::build_rows;
use astromlab::{ModelId, Study};

fn main() {
    let config = preset_from_args("table1");
    let start = std::time::Instant::now();
    eprintln!("preparing study (seed {}) ...", config.seed);
    let study = Study::prepare(config);
    eprintln!(
        "world: {} articles / {} facts | benchmark: {} MCQs | eval subset: {}",
        study.world.articles.len(),
        study.world.facts.len(),
        study.mcq.len(),
        study.config.n_eval_questions
    );
    eprintln!("training 3 natives + 5 CPT variants + 7 instruct models ...");
    let result = study.run_table1();

    println!("\n=== Table I (measured, this reproduction) ===\n");
    println!("{}", result.table1);

    println!("=== Table I (paper, for shape comparison) ===\n");
    let paper_scores: Vec<(ModelId, [Option<f64>; 3])> = ModelId::all()
        .iter()
        .map(|&id| (id, id.paper_scores()))
        .collect();
    println!(
        "{}",
        astromlab::eval::report::render_table1(&build_rows(&paper_scores))
    );

    // §VI analysis: the 70B gain in cost-efficiency terms.
    if let (Some(cpt), Some(native)) = (
        result.score(ModelId::AstroLlama2_70bAic, Method::TokenBase),
        result.score(ModelId::Llama2_70b, Method::TokenBase),
    ) {
        let v = summarize_gain(cpt, native);
        println!(
            "70B-class CPT gain (token base): {:+.1} points → implied value ratio {:.2}x \
             (paper: +{:.1} points → ~4x)",
            v.delta_points, v.value_multiplier, v.paper_gain
        );
    }
    println!("\nflagship context (paper §VI): ");
    for (name, score) in FLAGSHIP_SCORES {
        println!("  {name:<22} {score:.1}%");
    }

    println!("\nfull-instruct parse trouble (interpreter+failed fraction):");
    for (id, rate) in &result.parse_trouble {
        if id.has_instruct() {
            println!("  {:<34} {:.0}%", id.name(), rate * 100.0);
        }
    }
    eprintln!("\ntotal wall time: {:.1}s", start.elapsed().as_secs_f64());
}
