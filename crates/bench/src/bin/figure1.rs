//! Regenerate **Figure 1**: per-model scores under the three prompting
//! styles with native full-instruct baselines as horizontal lines, as an
//! ASCII chart plus a CSV series for external plotting.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin figure1 -- [smoke|fast|full] [seed]
//! ```

use astro_bench::instrumented_run;
use astro_telemetry::info;
use astromlab::eval::FlagshipOracle;
use astromlab::prng::Rng;
use astromlab::study::build_rows;
use astromlab::{ModelId, Study};

fn main() {
    let (config, run) = instrumented_run("figure1");
    let study = Study::prepare(config).expect("prepare");
    info!("training + evaluating the 8-model zoo ...");
    let result = study.run_table1().expect("run_table1");

    // Flagship context (paper §VI): noisy calibrated oracles scored on the
    // same evaluation subset.
    let questions = study.eval_questions();
    let mut orng = Rng::seed_from(study.config.seed).substream("flagship-oracles");
    println!("\nflagship oracles on this benchmark subset:");
    for oracle in FlagshipOracle::paper_flagships() {
        println!(
            "  {:<22} calibrated {:.1}% → measured {:.1}%",
            oracle.name,
            oracle.accuracy * 100.0,
            oracle.score(&questions, &mut orng)
        );
    }

    println!("\n=== Figure 1 (measured, this reproduction) ===\n");
    println!("{}", result.figure1);

    println!("=== Figure 1 (paper scores, same renderer) ===\n");
    let paper: Vec<(ModelId, [Option<f64>; 3])> = ModelId::all()
        .iter()
        .map(|&id| (id, id.paper_scores()))
        .collect();
    let rows = build_rows(&paper);
    println!(
        "{}",
        astromlab::eval::report::render_figure1(&rows, 38.0, 80.0)
    );

    println!("=== CSV (measured) ===\n");
    println!("{}", result.figure1_csv);
    run.finish();
}
