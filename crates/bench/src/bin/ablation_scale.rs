//! Ablation A3 — capacity sweep: native vs CPT'd token-base scores per
//! tier. This is the paper's central contrast (7B forgets, 70B gains) as
//! a single controlled experiment.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin ablation_scale -- [smoke|fast|full] [seed]
//! ```

use astro_bench::instrumented_run;
use astro_telemetry::info;
use astromlab::ablations::{ablation_scale, render_ablation};
use astromlab::Study;

fn main() {
    let (config, run) = instrumented_run("ablation_scale");
    let study = Study::prepare(config).expect("prepare");
    info!("pretraining + CPT'ing all three tiers ...");
    let points = ablation_scale(&study).expect("ablation");
    println!(
        "\n{}",
        render_ablation(
            "A3: token-base score, native (primary) vs CPT-AIC (secondary), by capacity tier",
            &points,
            Some("after CPT")
        )
    );
    for p in &points {
        let delta = p.secondary - p.score;
        println!("  {:<14} CPT delta: {delta:+.1} points", p.label);
    }
    println!(
        "\nexpected shape (paper): 7B-class delta negative (catastrophic forgetting), \
         8B-class ≈ neutral, 70B-class positive (+2.1 in the paper)."
    );
    run.finish();
}
