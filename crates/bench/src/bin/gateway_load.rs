//! Load-test the astro-gateway HTTP front-end over real sockets:
//! batched-over-socket throughput vs the serial single-request path,
//! bitwise answer parity, admission-control probes, and graceful drain.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin gateway_load -- [micro|smoke|fast|full] [seed]
//! cargo run --release -p astro-bench --bin gateway_load -- --serve [port]
//! ```
//!
//! The bench run has four phases, all against an untrained S7b model
//! (training state does not change the serving path):
//!
//! 1. **serial** — a gateway with `EngineConfig::serial()` and
//!    `max_batch: 1`, driven by ONE sequential client: the no-batching,
//!    no-cache baseline, still paying full HTTP cost per request;
//! 2. **batched** — a gateway with the pooled engine and a 10ms
//!    micro-batching window, driven by 8 concurrent clients; every
//!    response is checked **bitwise** (via `score_bits`) against the
//!    in-process serial reference;
//! 3. **admission** — a strict gateway (tight rate limit, small body
//!    bound, queue capacity 1) probed for deterministic 429 / 413 and an
//!    overload burst that must surface 503 backpressure;
//! 4. **drain** — a shutdown mid-burst that must answer every accepted
//!    request.
//!
//! Results land in `BENCH_gateway.json`; the contract checks run last
//! and exit non-zero on violation. `--serve` instead parks a gateway on
//! a fixed port for manual curl exploration (see docs/SERVING.md).

use astro_bench::{instrumented_run, JsonObject};
use astro_gateway::{client, Gateway, GatewayConfig, GatewayState};
use astro_telemetry::event::write_json_string;
use astro_telemetry::{info, metrics, trace};
use astromlab::eval::json::Json;
use astromlab::eval::{token_method_predict, EvalModel, InstructEvalConfig, TokenEvalConfig};
use astromlab::mcq::Mcq;
use astromlab::model::{Params, Tier};
use astromlab::prng::Rng;
use astromlab::serve::EngineConfig;
use astromlab::{Study, StudyConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(60);
const CLIENTS: usize = 8;

fn state_for(study: &Study, params: &Arc<Params>) -> GatewayState {
    GatewayState {
        params: Arc::clone(params),
        tokenizer: Arc::new(study.tokenizer.clone()),
        exemplars: Arc::new(study.mcq.exemplars.clone()),
        token_config: TokenEvalConfig::default(),
        instruct_config: InstructEvalConfig::default(),
    }
}

fn score_request_body(q: &Mcq, client_id: &str) -> String {
    let mut out = String::from("{\"question\":");
    write_json_string(&mut out, &q.question);
    out.push_str(",\"options\":[");
    for (i, opt) in q.options.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, opt);
    }
    out.push_str(&format!("],\"group\":{},\"client\":", q.article));
    write_json_string(&mut out, client_id);
    out.push('}');
    out
}

/// Extract the `score_bits` array from a 200 response body.
fn response_bits(body: &str) -> Result<Vec<u32>, String> {
    let v = Json::parse(body).map_err(|e| format!("unparseable body: {e}"))?;
    let Some(Json::Array(items)) = v.get("score_bits") else {
        return Err(format!("no score_bits in {body}"));
    };
    items
        .iter()
        .map(|i| match i {
            Json::Number(n) => Ok(*n as u32),
            other => Err(format!("non-numeric bit {other:?}")),
        })
        .collect()
}

/// Send every question once, sequentially, asserting 200 + parity.
/// Returns the first parity failure, if any.
fn drive_serial(
    addr: std::net::SocketAddr,
    questions: &[Mcq],
    refs: &[Vec<u32>],
    client_id: &str,
) -> Option<String> {
    for (i, q) in questions.iter().enumerate() {
        let body = score_request_body(q, client_id);
        let resp = match client::post_json(addr, "/v1/score", &body, TIMEOUT) {
            Ok(r) => r,
            Err(e) => return Some(format!("q{i}: transport: {e}")),
        };
        if resp.status != 200 {
            return Some(format!("q{i}: status {}: {}", resp.status, resp.body));
        }
        match response_bits(&resp.body) {
            Ok(bits) if bits == refs[i] => {}
            Ok(bits) => return Some(format!("q{i}: bits {bits:?} != {:?}", refs[i])),
            Err(e) => return Some(format!("q{i}: {e}")),
        }
    }
    None
}

fn hist_summary(name: &str) -> Option<astro_telemetry::metrics::HistSummary> {
    metrics::snapshot()
        .histograms
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, h)| h)
}

fn serve_forever(port: u16) -> ! {
    let study = Study::prepare(StudyConfig::smoke(11)).expect("prepare");
    let params = Arc::new(Params::init(
        study.model_config(Tier::S7b),
        &mut Rng::seed_from(11),
    ));
    let config = GatewayConfig {
        bind: format!("127.0.0.1:{port}"),
        ..GatewayConfig::default()
    };
    let gw = Gateway::spawn(config, state_for(&study, &params)).expect("spawn gateway");
    info!("gateway_load --serve: listening on {}", gw.addr());
    info!("try: curl -s http://{}/healthz", gw.addr());
    info!(
        "try: curl -s -X POST http://{}/v1/score -d '{}'",
        gw.addr(),
        score_request_body(&study.mcq.exemplars[0], "curl")
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--serve") {
        let port = args
            .iter()
            .skip_while(|a| *a != "--serve")
            .nth(1)
            .and_then(|p| p.parse().ok())
            .unwrap_or(8080);
        serve_forever(port);
    }

    let (config, mut run) = instrumented_run("gateway_load");
    let study = Study::prepare(config).expect("prepare");
    let params = Arc::new(Params::init(
        study.model_config(Tier::S7b),
        &mut Rng::seed_from(study.config.seed),
    ));
    let model = EvalModel {
        params: &params,
        tokenizer: &study.tokenizer,
    };
    let questions: Vec<Mcq> = study.eval_questions().into_iter().cloned().collect();
    let n = questions.len();
    info!("gateway_load: {n} questions, {CLIENTS} concurrent clients, S7b untrained");

    // In-process serial reference: the bitwise ground truth.
    let token_config = TokenEvalConfig::default();
    let refs: Vec<Vec<u32>> = questions
        .iter()
        .map(|q| {
            let (_pred, scores) =
                token_method_predict(&model, q, &study.mcq.exemplars, &token_config);
            scores.iter().map(|s| s.to_bits()).collect()
        })
        .collect();

    // Phase 1: serial gateway, one sequential client. No cache, no
    // batching — each request pays the full encode.
    let serial_config = GatewayConfig {
        engine: EngineConfig::serial(),
        max_batch: 1,
        batch_window: Duration::from_millis(0),
        rate_per_sec: 10_000.0,
        burst: 10_000.0,
        ..GatewayConfig::default()
    };
    let gw = Gateway::spawn(serial_config, state_for(&study, &params)).expect("serial gateway");
    let t = Instant::now();
    let serial_parity = drive_serial(gw.addr(), &questions, &refs, "serial-client");
    let serial_wall = t.elapsed().as_secs_f64();
    let serial_stats = gw.shutdown();
    let serial_rps = n as f64 / serial_wall;
    info!("serial-over-socket: {serial_wall:.2}s ({serial_rps:.2} req/sec)");

    // Phase 2: batched gateway, 8 concurrent clients each sending the
    // full question set. The micro-batch window coalesces their requests
    // so the prefix cache deduplicates the shared few-shot preamble.
    // Trace state resets with the metrics so the attribution section
    // below sees only batched-phase traces.
    metrics::reset();
    trace::reset();
    let batched_config = GatewayConfig {
        engine: EngineConfig::pooled(),
        max_batch: 16,
        batch_window: Duration::from_millis(10),
        rate_per_sec: 10_000.0,
        burst: 10_000.0,
        ..GatewayConfig::default()
    };
    let gw = Gateway::spawn(batched_config, state_for(&study, &params)).expect("batched gateway");
    let addr = gw.addr();
    let t = Instant::now();
    let batched_parity: Option<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let questions = &questions;
                let refs = &refs;
                scope.spawn(move || {
                    drive_serial(addr, questions, refs, &format!("load-client-{c}"))
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().unwrap_or_else(|_| Some("client panicked".into())))
            .next()
    });
    let batched_wall = t.elapsed().as_secs_f64();
    let batched_stats = gw.shutdown();
    let total = (CLIENTS * n) as f64;
    let batched_rps = total / batched_wall;
    let speedup = batched_rps / serial_rps;
    let occupancy = hist_summary("gateway.batch_occupancy");
    let latency = hist_summary("gateway.request_us");
    let occupancy_mean = occupancy.as_ref().map(|h| h.mean).unwrap_or(0.0);
    info!(
        "batched-over-socket: {batched_wall:.2}s ({batched_rps:.2} req/sec, \
         {speedup:.2}x serial, mean batch occupancy {occupancy_mean:.2})"
    );

    // --- Trace attribution over the batched phase: per-phase latency
    // percentiles, the phases-tile-the-request invariant, the analyzer
    // round-trip (JSONL → astro-trace → Chrome Trace Event JSON), and
    // the tracing-overhead budget. Snapshots run before phases 3/4 add
    // their rejection traces. ---
    let mut trace_failures: Vec<String> = Vec::new();
    let traces_recorded = trace::stats().ring_len;
    let jsonl_path = std::path::Path::new("traces.jsonl");
    let written = trace::write_ring_jsonl(jsonl_path).unwrap_or(0);
    let report =
        astro_trace::parse_jsonl(&std::fs::read_to_string(jsonl_path).unwrap_or_default());
    if report.traces.len() != written || !report.malformed.is_empty() {
        trace_failures.push(format!(
            "trace JSONL round-trip: wrote {written}, parsed {} ({} malformed)",
            report.traces.len(),
            report.malformed.len()
        ));
    }

    // Tiling invariant: each successful request's phase durations must
    // sum (within slack) to its end-to-end latency — no unattributed
    // time hiding between phases.
    let mut ratio_min = f64::INFINITY;
    let mut ratio_max = f64::NEG_INFINITY;
    let mut tiling_violations = 0usize;
    let mut tiled_count = 0usize;
    for t in report
        .traces
        .iter()
        .filter(|t| t.status == 200 && t.name == "gateway./v1/score")
    {
        let e2e = t.duration_us().max(1) as f64;
        let attributed = t.phase_total_us() as f64;
        let ratio = attributed / e2e;
        ratio_min = ratio_min.min(ratio);
        ratio_max = ratio_max.max(ratio);
        tiled_count += 1;
        // 5% relative slack with a 500µs absolute floor: scheduler-side
        // timestamps quantise to whole microseconds and the final ring
        // stamp lands a hair after the `write` phase closes.
        if (e2e - attributed).abs() > (e2e * 0.05).max(500.0) {
            tiling_violations += 1;
        }
    }
    if tiled_count == 0 {
        ratio_min = 0.0;
        ratio_max = 0.0;
        trace_failures.push("no 200-status score traces reached the ring".to_string());
    }
    if tiling_violations > 0 {
        trace_failures.push(format!(
            "{tiling_violations}/{tiled_count} traces' phases do not sum to their \
             end-to-end latency (attributed/e2e range {ratio_min:.3}..{ratio_max:.3})"
        ));
    }
    info!(
        "trace attribution: {tiled_count} scored traces, attributed/e2e \
         {ratio_min:.3}..{ratio_max:.3}"
    );
    for line in astro_trace::render_phase_table(&report.traces).lines() {
        info!("gateway_load: {line}");
    }

    // Chrome Trace Event export must survive its own validation.
    let chrome = astro_trace::chrome_trace_json(&report.traces);
    let chrome_events = match astro_trace::validate_chrome_json(&chrome, &report.traces) {
        Ok(n) => {
            if let Err(e) = std::fs::write("trace_chrome.json", &chrome) {
                info!("trace_chrome.json not written: {e}");
            }
            n
        }
        Err(e) => {
            trace_failures.push(format!("chrome export: {e}"));
            0
        }
    };

    // Tracing overhead: the cost of one full trace lifecycle (mint,
    // start, every phase, finish → sampling/ring/sink) measured alone,
    // as a fraction of the mean request latency it rides on.
    const LIFECYCLE_PHASES: [&str; 10] = [
        "recv", "build", "queue_wait", "batch_form", "cache_lookup", "prefill", "decode", "sync",
        "extract", "write",
    ];
    let lifecycle_runs = 2000u32;
    let t_overhead = Instant::now();
    for _ in 0..lifecycle_runs {
        let id = trace::mint();
        trace::start(id, "bench.overhead", None, astro_telemetry::elapsed_us());
        for name in LIFECYCLE_PHASES {
            trace::phase_since_last(id, name);
        }
        trace::finish(id, 200);
    }
    let trace_lifecycle_us =
        t_overhead.elapsed().as_secs_f64() * 1e6 / f64::from(lifecycle_runs);
    let mean_latency_us = latency.as_ref().map(|h| h.mean).unwrap_or(f64::NAN);
    let trace_overhead_pct = 100.0 * trace_lifecycle_us / mean_latency_us;
    info!(
        "tracing overhead: {trace_lifecycle_us:.2}µs per request lifecycle = \
         {trace_overhead_pct:.3}% of mean request latency ({mean_latency_us:.0}µs)"
    );
    // NaN must fail too, hence not a plain `>= 2.0`.
    if trace_overhead_pct >= 2.0 || trace_overhead_pct.is_nan() {
        trace_failures.push(format!(
            "tracing overhead {trace_overhead_pct:.3}% exceeds the 2% budget"
        ));
    }

    let phase_stats = astro_trace::phase_stats(&report.traces);
    let mut phases_json = String::from("{");
    for (i, s) in phase_stats.iter().enumerate() {
        if i > 0 {
            phases_json.push(',');
        }
        phases_json.push_str(&format!(
            "\"{}\":{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{},\"total_us\":{}}}",
            s.name, s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us, s.total_us
        ));
    }
    phases_json.push('}');

    // Phase 3: admission control on a deliberately strict gateway.
    let strict_config = GatewayConfig {
        engine: EngineConfig::pooled(),
        max_batch: 1,
        batch_window: Duration::from_millis(0),
        queue_capacity: 1,
        rate_per_sec: 0.5,
        burst: 2.0,
        max_body_bytes: 1024,
        ..GatewayConfig::default()
    };
    let gw = Gateway::spawn(strict_config, state_for(&study, &params)).expect("strict gateway");
    let addr = gw.addr();

    // Deterministic 429: burst of 2 for one client, third refused.
    let mut rate_limited_429 = 0u64;
    let body = score_request_body(&questions[0], "greedy");
    for _ in 0..2 {
        match client::post_json(addr, "/v1/score", &body, TIMEOUT) {
            Ok(r) if r.status == 200 => {}
            Ok(r) => info!("gateway_load: burst request got {}", r.status),
            Err(e) => info!("gateway_load: burst request failed: {e}"),
        }
    }
    if let Ok(r) = client::post_json(addr, "/v1/score", &body, TIMEOUT) {
        if r.status == 429 && r.header("Retry-After").is_some() {
            rate_limited_429 = 1;
        } else {
            info!("gateway_load: expected 429, got {}: {}", r.status, r.body);
        }
    }

    // Deterministic 413: body over the 1 KiB bound.
    let mut oversized_413 = 0u64;
    let huge = format!(
        "{{\"question\":\"{}\",\"options\":[\"a\",\"b\",\"c\",\"d\"]}}",
        "x".repeat(4096)
    );
    if let Ok(r) = client::post_json(addr, "/v1/score", &huge, TIMEOUT) {
        if r.status == 413 {
            oversized_413 = 1;
        } else {
            info!("gateway_load: expected 413, got {}: {}", r.status, r.body);
        }
    }

    // Overload burst against queue capacity 1: with 8 clients firing at
    // once on one scheduler, at least one push must see a full queue.
    let burst_503 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let questions = &questions;
                scope.spawn(move || {
                    let mut seen = 0u64;
                    for (i, q) in questions.iter().enumerate().take(4) {
                        let body =
                            score_request_body(q, &format!("burst-{c}-{i}"));
                        if let Ok(r) = client::post_json(addr, "/v1/score", &body, TIMEOUT) {
                            if r.status == 503 {
                                seen += 1;
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum::<u64>()
    });
    let strict_stats = gw.shutdown();
    info!(
        "admission: 429={rate_limited_429} 413={oversized_413} burst 503s={burst_503} \
         (strict drain clean={})",
        strict_stats.drained_clean
    );

    // Phase 4: drain mid-burst — every accepted request answered.
    let gw = Gateway::spawn(GatewayConfig::default(), state_for(&study, &params))
        .expect("drain gateway");
    let addr = gw.addr();
    let drain_stats = std::thread::scope(|scope| {
        for c in 0..4 {
            let questions = &questions;
            scope.spawn(move || {
                for (i, q) in questions.iter().enumerate().take(3) {
                    let body = score_request_body(q, &format!("drain-{c}-{i}"));
                    let _ = client::post_json(addr, "/v1/score", &body, TIMEOUT);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(15));
        gw.shutdown()
    });
    info!(
        "drain mid-burst: accepted={} completed={} clean={}",
        drain_stats.accepted, drain_stats.completed, drain_stats.drained_clean
    );

    let parity = serial_parity.or(batched_parity);
    let drain_clean = serial_stats.drained_clean
        && batched_stats.drained_clean
        && strict_stats.drained_clean
        && drain_stats.drained_clean;

    let mut obj = JsonObject::new();
    obj.str("bench", "gateway_load")
        .str(
            "preset",
            &std::env::args().nth(1).unwrap_or_else(|| "fast".into()),
        )
        .num("seed", study.config.seed as f64)
        .num("n_questions", n as f64)
        .num("clients", CLIENTS as f64)
        .num("serial_wall_secs", serial_wall)
        .num("serial_requests_per_sec", serial_rps)
        .num("batched_wall_secs", batched_wall)
        .num("batched_requests_per_sec", batched_rps)
        .num("batched_total_requests", total)
        .num("speedup", speedup)
        .num("batch_occupancy_mean", occupancy_mean)
        .num(
            "latency_p50_us",
            latency.as_ref().map(|h| h.p50).unwrap_or(f64::NAN),
        )
        .num(
            "latency_p95_us",
            latency.as_ref().map(|h| h.p95).unwrap_or(f64::NAN),
        )
        .num(
            "latency_p99_us",
            latency.as_ref().map(|h| h.p99).unwrap_or(f64::NAN),
        )
        .num("traces_recorded", traces_recorded as f64)
        .num("trace_jsonl_written", written as f64)
        .num("chrome_events", chrome_events as f64)
        .num("phase_sum_ratio_min", ratio_min)
        .num("phase_sum_ratio_max", ratio_max)
        .num("trace_lifecycle_us", trace_lifecycle_us)
        .num("trace_overhead_pct", trace_overhead_pct)
        .raw("phases", &phases_json)
        .num("rate_limited_429", rate_limited_429 as f64)
        .num("oversized_413", oversized_413 as f64)
        .num("backpressure_503", burst_503 as f64)
        .num("drain_accepted", drain_stats.accepted as f64)
        .num("drain_completed", drain_stats.completed as f64)
        .raw("drain_clean", if drain_clean { "true" } else { "false" })
        .str("parity", if parity.is_none() { "bitwise" } else { "FAILED" });
    let json = obj.finish();
    if let Err(e) = Json::parse(&json) {
        info!("gateway_load: emitted invalid JSON ({e:?})");
        std::process::exit(1);
    }
    match std::fs::write("BENCH_gateway.json", &json) {
        Ok(()) => run.add("bench_json", "BENCH_gateway.json"),
        Err(e) => info!("BENCH_gateway.json not written: {e}"),
    }
    run.add("speedup", &format!("{speedup:.2}"));
    run.add("traces_jsonl", "traces.jsonl");
    run.add("trace_chrome", "trace_chrome.json");
    run.finish();

    // Contract checks last, so the JSON and manifest always land for
    // diagnosis even when a check fails the run.
    let mut failures = Vec::new();
    if let Some(msg) = parity {
        failures.push(format!("parity violated: {msg}"));
    }
    if speedup < 2.0 {
        failures.push(format!(
            "batched-over-socket must be >= 2x serial, got {speedup:.2}x"
        ));
    }
    if rate_limited_429 == 0 {
        failures.push("rate-limit probe never saw a 429".to_string());
    }
    if oversized_413 == 0 {
        failures.push("payload probe never saw a 413".to_string());
    }
    if burst_503 == 0 {
        failures.push("overload burst never saw a 503".to_string());
    }
    if !drain_clean {
        failures.push(format!(
            "drain lost requests: serial={serial_stats:?} batched={batched_stats:?} \
             strict={strict_stats:?} midburst={drain_stats:?}"
        ));
    }
    failures.extend(trace_failures);
    if !failures.is_empty() {
        for f in &failures {
            info!("gateway_load: FAIL: {f}");
        }
        std::process::exit(1);
    }
    info!("gateway_load: OK ({speedup:.2}x over socket, parity bitwise, drain clean)");
}
