//! Ablation A4 — evaluation-method options from Appendix C: two-shot vs
//! zero-shot prompting and dynamic answer-token-variant detection on/off.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin ablation_eval_method -- [smoke|fast|full] [seed]
//! ```

use astro_bench::instrumented_run;
use astro_telemetry::info;
use astromlab::ablations::{ablation_eval_method, render_ablation};
use astromlab::Study;

fn main() {
    let (config, run) = instrumented_run("ablation_eval_method");
    let study = Study::prepare(config).expect("prepare");
    info!("evaluating the 8B-class native under 4 token-method settings ...");
    let points = ablation_eval_method(&study).expect("ablation");
    println!(
        "\n{}",
        render_ablation(
            "A4: token-base score by evaluation-method options (8B-class native)",
            &points,
            None
        )
    );
    println!(
        "expected shape: two-shot ≥ zero-shot (the examples 'give the model a clear \
         pattern to follow'), and variant detection ≥ bare letters."
    );
    run.finish();
}
