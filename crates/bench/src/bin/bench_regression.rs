//! Bench-regression gate: compare the machine-portable metrics of a
//! fresh bench run against committed baselines.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin bench_regression -- \
//!     [--current DIR] [--baseline DIR]
//! ```
//!
//! Reads `BENCH_gateway.json` and `BENCH_eval_throughput.json` from the
//! current directory (or `--current`) and their `.baseline.json`
//! counterparts from `goldens/` (or `--baseline`). Only **relative**
//! metrics are compared — speedups, ratios, overhead percentages and
//! boolean contracts — never absolute req/sec, so the gate holds across
//! machines of different raw speed:
//!
//! * batched-vs-serial `speedup` may not regress more than 10% below its
//!   baseline (both benches);
//! * `trace_overhead_pct` must stay under the 2% tracing budget;
//! * `phase_sum_ratio_{min,max}` must stay within the tiling band;
//! * `parity` must remain `bitwise` and `drain_clean` true;
//! * `prefix_hit_rate` may not regress more than 10% below baseline.
//!
//! Missing current files fail the gate (the bench did not run); the
//! comparison report lands in `BENCH_regression.json` and the process
//! exits non-zero on any violation.
//!
//! When refreshing a baseline, record the conservative **floor** of
//! several quiet-machine runs in its `speedup` field, not a single
//! lucky run — micro-preset speedups swing ±25% run-to-run, and a
//! top-of-range baseline turns the 10% band into noise.

use astro_bench::JsonObject;
use astro_telemetry::info;
use astro_eval::json::Json;

struct Loaded {
    label: String,
    value: Json,
}

fn load(dir: &str, name: &str) -> Result<Loaded, String> {
    let path = format!("{dir}/{name}");
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    Ok(Loaded { label: path, value })
}

fn num(doc: &Loaded, key: &str) -> Result<f64, String> {
    match doc.value.get(key) {
        Some(Json::Number(n)) => Ok(*n),
        Some(_) => Err(format!("{}: field {key:?} is not a number", doc.label)),
        None => Err(format!("{}: missing field {key:?}", doc.label)),
    }
}

fn text(doc: &Loaded, key: &str) -> Result<String, String> {
    doc.value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{}: missing string field {key:?}", doc.label))
}

/// `current` must be at least `1 - tolerance` of `baseline`.
fn check_floor(
    failures: &mut Vec<String>,
    bench: &str,
    key: &str,
    current: f64,
    baseline: f64,
    tolerance: f64,
) {
    let floor = baseline * (1.0 - tolerance);
    if current < floor {
        failures.push(format!(
            "{bench}: {key} regressed {current:.3} < {floor:.3} \
             (baseline {baseline:.3}, tolerance {:.0}%)",
            tolerance * 100.0
        ));
    } else {
        info!("bench_regression: {bench}: {key} {current:.3} vs baseline {baseline:.3} ok");
    }
}

fn gateway_checks(cur: &Loaded, base: &Loaded, failures: &mut Vec<String>) -> Result<(), String> {
    check_floor(failures, "gateway", "speedup", num(cur, "speedup")?, num(base, "speedup")?, 0.10);
    let overhead = num(cur, "trace_overhead_pct")?;
    // NaN must fail too, hence not a plain `>= 2.0`.
    if overhead >= 2.0 || overhead.is_nan() {
        failures.push(format!(
            "gateway: trace_overhead_pct {overhead:.3} exceeds the 2% tracing budget"
        ));
    }
    let ratio_min = num(cur, "phase_sum_ratio_min")?;
    let ratio_max = num(cur, "phase_sum_ratio_max")?;
    if !(0.95..=1.05).contains(&ratio_min) || !(0.95..=1.05).contains(&ratio_max) {
        failures.push(format!(
            "gateway: phase attribution ratio band {ratio_min:.3}..{ratio_max:.3} \
             outside 0.95..=1.05"
        ));
    }
    if text(cur, "parity")? != "bitwise" {
        failures.push("gateway: parity is no longer bitwise".to_string());
    }
    if !matches!(cur.value.get("drain_clean"), Some(Json::Bool(true))) {
        failures.push("gateway: drain_clean is not true".to_string());
    }
    Ok(())
}

fn eval_checks(cur: &Loaded, base: &Loaded, failures: &mut Vec<String>) -> Result<(), String> {
    check_floor(failures, "eval", "speedup", num(cur, "speedup")?, num(base, "speedup")?, 0.10);
    check_floor(
        failures,
        "eval",
        "prefix_hit_rate",
        num(cur, "prefix_hit_rate")?,
        num(base, "prefix_hit_rate")?,
        0.10,
    );
    if text(cur, "parity")? != "bitwise" {
        failures.push("eval: parity is no longer bitwise".to_string());
    }
    Ok(())
}

fn arg_value(args: &[String], flag: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let current_dir = arg_value(&args, "--current", ".");
    let baseline_dir = arg_value(&args, "--baseline", "goldens");

    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0u32;
    for (name, check) in [
        (
            "BENCH_gateway.json",
            gateway_checks as fn(&Loaded, &Loaded, &mut Vec<String>) -> Result<(), String>,
        ),
        ("BENCH_eval_throughput.json", eval_checks),
    ] {
        let baseline_name = name.replace(".json", ".baseline.json");
        let pair = load(&current_dir, name)
            .and_then(|cur| load(&baseline_dir, &baseline_name).map(|base| (cur, base)));
        match pair {
            Ok((cur, base)) => {
                compared += 1;
                if let Err(e) = check(&cur, &base, &mut failures) {
                    failures.push(e);
                }
            }
            Err(e) => failures.push(e),
        }
    }

    let mut obj = JsonObject::new();
    obj.str("bench", "bench_regression")
        .num("benches_compared", f64::from(compared))
        .num("violations", failures.len() as f64);
    let mut list = String::from("[");
    for (i, f) in failures.iter().enumerate() {
        if i > 0 {
            list.push(',');
        }
        astro_telemetry::event::write_json_string(&mut list, f);
    }
    list.push(']');
    obj.raw("failures", &list);
    let json = obj.finish();
    if let Err(e) = std::fs::write("BENCH_regression.json", &json) {
        info!("BENCH_regression.json not written: {e}");
    }

    if failures.is_empty() {
        info!("bench_regression: OK ({compared} benches within tolerance)");
    } else {
        for f in &failures {
            info!("bench_regression: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
