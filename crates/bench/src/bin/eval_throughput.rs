//! Benchmark the astro-serve batched eval engine against the serial
//! reference scoring loop: questions/sec, prefix-cache hit rate, and
//! tokens encoded vs saved.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin eval_throughput -- [smoke|fast|full] [seed]
//! ```
//!
//! The run scores the preset's eval subset twice with the token method
//! (base-model readout) on an untrained model — training state does not
//! change the scoring path, so the bench isolates engine overhead:
//!
//! 1. **serial** — the uncached reference loop
//!    (`EngineConfig::serial()`), one fresh session per question;
//! 2. **pooled** — the engine with prefix caching
//!    (`EngineConfig::pooled()`), two-shot preamble and per-article
//!    context encoded once and forked.
//!
//! It then *asserts* the engine's contract and exits non-zero on any
//! violation: per-question predictions and per-option score bits
//! identical to serial, prefix-cache hit rate > 0, pooled questions/sec
//! at least 2x serial, and the disarmed fault-injection hooks (see
//! docs/RESILIENCE.md) costing under 1% of pooled wall time. Results
//! land in `BENCH_eval_throughput.json` (self-validated against the
//! repo's JSON parser) for future performance PRs to diff;
//! docs/SERVING.md explains how to read them.

use astro_bench::{instrumented_run, JsonObject};
use astro_resilience::fault;
use astro_telemetry::{counter, info};
use astromlab::eval::{token_method_outcomes, EvalModel, TokenEvalConfig, TokenOutcome};
use astromlab::model::{Params, Tier};
use astromlab::prng::Rng;
use astromlab::serve::EngineConfig;
use astromlab::Study;

/// Counters the engine publishes (see `astro_serve::engine`); the bench
/// reports the delta across the pooled run.
const ENGINE_COUNTERS: [&str; 5] = [
    "serve.prefix.hits",
    "serve.prefix.misses",
    "serve.tokens.saved",
    "serve.tokens.encoded",
    "serve.cache.evictions",
];

fn counters_now() -> [u64; 5] {
    let mut out = [0u64; 5];
    for (i, name) in ENGINE_COUNTERS.iter().enumerate() {
        out[i] = counter(name).get();
    }
    out
}

/// Bitwise equality of serial and pooled outcomes; returns the first
/// divergence rendered, if any.
fn parity_failure(serial: &[TokenOutcome], pooled: &[TokenOutcome]) -> Option<String> {
    if serial.len() != pooled.len() {
        return Some(format!("length {} vs {}", serial.len(), pooled.len()));
    }
    for (i, (s, p)) in serial.iter().zip(pooled.iter()).enumerate() {
        if s.prediction != p.prediction {
            return Some(format!("q{i}: prediction {} vs {}", s.prediction, p.prediction));
        }
        let (sb, pb): (Vec<u32>, Vec<u32>) = (
            s.scores.iter().map(|v| v.to_bits()).collect(),
            p.scores.iter().map(|v| v.to_bits()).collect(),
        );
        if sb != pb {
            return Some(format!("q{i}: scores {:?} vs {:?}", s.scores, p.scores));
        }
    }
    None
}

fn main() {
    let (config, mut run) = instrumented_run("eval_throughput");
    let study = Study::prepare(config).expect("prepare");
    let params = Params::init(
        study.model_config(Tier::S7b),
        &mut Rng::seed_from(study.config.seed),
    );
    let model = EvalModel {
        params: &params,
        tokenizer: &study.tokenizer,
    };
    let questions = study.eval_questions();
    let n = questions.len();
    info!("eval_throughput: {n} questions, token method, S7b untrained");

    let serial_cfg = TokenEvalConfig {
        engine: EngineConfig::serial(),
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let serial = token_method_outcomes(&model, &questions, &study.mcq.exemplars, &serial_cfg);
    let serial_wall = t.elapsed().as_secs_f64();
    let serial_qps = n as f64 / serial_wall;
    info!("serial: {serial_wall:.2}s ({serial_qps:.2} questions/sec)");

    let pooled_cfg = TokenEvalConfig {
        engine: EngineConfig::pooled(),
        ..Default::default()
    };
    let before = counters_now();
    let t = std::time::Instant::now();
    let pooled = token_method_outcomes(&model, &questions, &study.mcq.exemplars, &pooled_cfg);
    let pooled_wall = t.elapsed().as_secs_f64();
    let after = counters_now();
    let pooled_qps = n as f64 / pooled_wall;
    let [hits, misses, saved, encoded, evictions] =
        [0, 1, 2, 3, 4].map(|i| after[i] - before[i]);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let speedup = pooled_qps / serial_qps;
    let workers = pooled_cfg.engine.resolved_parallelism();
    info!(
        "pooled: {pooled_wall:.2}s ({pooled_qps:.2} questions/sec, {workers} workers) \
         — {speedup:.2}x serial"
    );
    info!(
        "prefix cache: {hits} hits / {misses} misses (rate {hit_rate:.2}), \
         {encoded} tokens encoded, {saved} saved, {evictions} evictions"
    );

    // Disarmed fault hooks must be free: measure the fast path directly
    // (one relaxed atomic load when no plan is installed), then model its
    // cost against the pooled run with a deliberately generous crossing
    // count — two hook crossings per encoded token plus two per job.
    fault::clear();
    let iters: u64 = 2_000_000;
    let t = std::time::Instant::now();
    let mut armed = 0u64;
    for _ in 0..iters {
        if std::hint::black_box(fault::should_fault(std::hint::black_box("serve.cache_full"))) {
            armed += 1;
        }
    }
    let hook_per_call = t.elapsed().as_secs_f64() / iters as f64;
    let hook_crossings = 2.0 * encoded as f64 + 2.0 * n as f64;
    let hook_overhead_pct = 100.0 * hook_per_call * hook_crossings / pooled_wall;
    info!(
        "fault hooks (disarmed): {:.2}ns/call, modelled {hook_crossings:.0} crossings \
         = {hook_overhead_pct:.4}% of pooled wall",
        hook_per_call * 1e9
    );

    let parity = parity_failure(&serial, &pooled);
    let mut obj = JsonObject::new();
    obj.str("bench", "eval_throughput")
        .str(
            "preset",
            &std::env::args().nth(1).unwrap_or_else(|| "fast".into()),
        )
        .num("seed", study.config.seed as f64)
        .num("n_questions", n as f64)
        .num("serial_wall_secs", serial_wall)
        .num("serial_questions_per_sec", serial_qps)
        .num("pooled_wall_secs", pooled_wall)
        .num("pooled_questions_per_sec", pooled_qps)
        .num("pooled_workers", workers as f64)
        .num("speedup", speedup)
        .num("prefix_hits", hits as f64)
        .num("prefix_misses", misses as f64)
        .num("prefix_hit_rate", hit_rate)
        .num("tokens_encoded", encoded as f64)
        .num("tokens_saved", saved as f64)
        .num("cache_evictions", evictions as f64)
        .num("fault_hook_ns_per_call", hook_per_call * 1e9)
        .num("fault_hook_overhead_pct", hook_overhead_pct)
        .str("parity", if parity.is_none() { "bitwise" } else { "FAILED" });
    let json = obj.finish();
    // The output must stay parseable by the repo's own JSON subset.
    if let Err(e) = astromlab::eval::json::Json::parse(&json) {
        info!("eval_throughput: emitted invalid JSON ({e:?})");
        std::process::exit(1);
    }
    match std::fs::write("BENCH_eval_throughput.json", &json) {
        Ok(()) => run.add("bench_json", "BENCH_eval_throughput.json"),
        Err(e) => info!("BENCH_eval_throughput.json not written: {e}"),
    }
    run.add("speedup", &format!("{speedup:.2}"));
    run.finish();

    // Contract checks last, so the JSON and manifest always land for
    // diagnosis even when a check fails the run.
    let mut failures = Vec::new();
    if let Some(msg) = parity {
        failures.push(format!("parity violated: {msg}"));
    }
    if hit_rate <= 0.0 {
        failures.push(format!("prefix-cache hit rate must be > 0, got {hit_rate}"));
    }
    if speedup < 2.0 {
        failures.push(format!("pooled must be >= 2x serial, got {speedup:.2}x"));
    }
    if armed != 0 {
        failures.push(format!("disarmed fault hook reported armed {armed} times"));
    }
    if hook_overhead_pct >= 1.0 {
        failures.push(format!(
            "disarmed fault hooks must cost < 1% of pooled wall, got {hook_overhead_pct:.3}%"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            info!("eval_throughput: FAIL: {f}");
        }
        std::process::exit(1);
    }
    info!("eval_throughput: OK ({speedup:.2}x, hit rate {hit_rate:.2})");
}
