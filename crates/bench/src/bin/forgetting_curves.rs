//! E1b — catastrophic forgetting measured directly in loss space.
//!
//! The paper's Table I differences are downstream of one mechanism: CPT
//! on astro-only text shifts the model toward the astro distribution and
//! away from the general distribution, with the damage depending on
//! capacity. This binary measures that mechanism directly — held-out
//! next-token loss on the general and astro (AIC) distributions before
//! and after CPT, per capacity tier — which is robust at CPU scale where
//! MCQ accuracies are noisy.
//!
//! Expected shape (mirroring S1–S3): astro loss drops for every tier;
//! the *general-loss rise* (forgetting) is largest for the smallest tier.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin forgetting_curves -- [smoke|fast|full] [seed]
//! ```

use astro_bench::instrumented_run;
use astromlab::model::Tier;
use astromlab::train::held_out_loss;
use astromlab::world::CorpusRecipe;
use astromlab::Study;

fn main() {
    let (config, run) = instrumented_run("forgetting_curves");
    let seq = config.seq;
    let study = Study::prepare(config).expect("prepare");
    let windows = 40;

    println!("\n=== E1b: held-out loss before/after CPT (AIC recipe) ===\n");
    println!(
        "{:<12} {:>8} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "tier", "params", "general pre", "general post", "astro pre", "astro post", "forgetting"
    );
    println!("{}", "-".repeat(94));
    let mut forgetting = Vec::new();
    for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
        let (native, _) = study.pretrain_native(tier).expect("pretrain");
        let (cpt, _) = study.cpt(&native, CorpusRecipe::Aic).expect("cpt");
        let (gen_pre, _) = held_out_loss(&native, &study.general_stream, seq, windows);
        let (gen_post, _) = held_out_loss(&cpt, &study.general_stream, seq, windows);
        let astro_stream = study.cpt_stream(CorpusRecipe::Aic).expect("prepared");
        let (astro_pre, _) = held_out_loss(&native, astro_stream, seq, windows);
        let (astro_post, _) = held_out_loss(&cpt, astro_stream, seq, windows);
        let forget = gen_post - gen_pre;
        forgetting.push((tier, forget));
        println!(
            "{:<12} {:>8} {:>14.4} {:>14.4} {:>14.4} {:>14.4} {:>+12.4}",
            tier.label(),
            native.len(),
            gen_pre,
            gen_post,
            astro_pre,
            astro_post,
            forget
        );
    }
    println!(
        "\nshape check (paper S1–S3 mechanism): general-loss rise should shrink as \
         capacity grows."
    );
    let ok = forgetting[0].1 >= forgetting[2].1;
    println!(
        "  7B-class forgetting {:+.4} vs 70B-class {:+.4} → {}",
        forgetting[0].1,
        forgetting[2].1,
        if ok { "shape holds" } else { "shape NOT reproduced at this preset" }
    );
    run.finish();
}
