//! Chaos smoke: sweep one injected fault per fault site through the
//! resumable study pipeline and assert that nothing escapes as a panic
//! and nothing perturbs the scores.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin chaos -- [micro|smoke|fast|full] [seed]
//! ```
//!
//! For every site in [`astro_resilience::SITES`] the run arms a one-shot
//! [`FaultPlan`], executes `Study::run_study` into a fresh directory
//! under `catch_unwind`, and classifies the outcome:
//!
//! * **absorbed** — the run completed despite the fault (degraded pool,
//!   uncached cache-full retry, eval retry); the result must be bitwise
//!   identical to the uninterrupted baseline.
//! * **typed + resumed** — the fault surfaced as a typed `StudyError`;
//!   a fault-free resume over the same ledger must then complete and be
//!   bitwise identical to the baseline.
//! * **panic** — always a violation; the bin exits non-zero.
//!
//! Results land in `BENCH_chaos.json`. CI runs this at the micro preset
//! as its chaos smoke step; docs/RESILIENCE.md documents the fault
//! sites and the determinism-after-resume argument this bin enforces.

use astro_bench::{instrumented_run, JsonObject};
use astro_resilience::fault::{self, FaultPlan};
use astro_resilience::SITES;
use astro_telemetry::info;
use astromlab::study::StudyResult;
use astromlab::Study;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// One deterministic hit count per site, spread so the faults land in
/// different pipeline phases (early training, mid-run, deep eval). The
/// gateway.* sites are exercised separately by `gateway_load` and the
/// gateway integration tests; here their plans must simply never fire.
const HITS: [u64; 8] = [3, 1, 5, 2, 7, 4, 1, 1];

fn score_bits(r: &StudyResult) -> Vec<[Option<u64>; 3]> {
    r.scores.iter().map(|(_, s)| s.map(|v| v.map(f64::to_bits))).collect()
}

fn identical(got: &StudyResult, want: &StudyResult) -> bool {
    got.figure1_csv == want.figure1_csv && score_bits(got) == score_bits(want)
}

fn fresh_dir(site: &str) -> PathBuf {
    let slug = site.replace('.', "-");
    let dir = std::env::temp_dir().join(format!("astro-chaos-bin-{}-{slug}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let (config, mut run) = instrumented_run("chaos");
    let seed = config.seed;
    let study = Study::prepare(config).expect("prepare");
    fault::clear();
    info!("chaos: computing uninterrupted baseline");
    let baseline = study.run_table1().expect("fault-free baseline");

    assert_eq!(HITS.len(), SITES.len(), "one planned hit per fault site");
    let mut site_reports = Vec::new();
    let mut violations = Vec::new();
    for (site, &hit) in SITES.iter().zip(HITS.iter()) {
        let dir = fresh_dir(site);
        fault::install(FaultPlan::single(site, hit));
        let outcome = catch_unwind(AssertUnwindSafe(|| study.run_study(&dir)));
        fault::clear();
        let outcome = match outcome {
            Ok(o) => o,
            Err(_) => {
                violations.push(format!("{site}@{hit}: escaped as a panic"));
                site_reports.push((site, hit, "PANIC".to_string()));
                continue;
            }
        };
        let label = match outcome {
            Ok(r) if identical(&r, &baseline) => "absorbed".to_string(),
            Ok(_) => {
                violations.push(format!("{site}@{hit}: absorbed but scores diverged"));
                "DIVERGED".to_string()
            }
            Err(err) => match study.run_study(&dir) {
                Ok(r) if identical(&r, &baseline) => format!("typed({err}) + resumed"),
                Ok(_) => {
                    violations.push(format!("{site}@{hit}: resume diverged after {err}"));
                    "RESUME-DIVERGED".to_string()
                }
                Err(e) => {
                    violations.push(format!("{site}@{hit}: resume failed after {err}: {e}"));
                    "RESUME-FAILED".to_string()
                }
            },
        };
        info!("chaos: {site}@{hit}: {label}");
        site_reports.push((site, hit, label));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let sites_json: Vec<String> = site_reports
        .iter()
        .map(|(site, hit, label)| {
            let mut o = JsonObject::new();
            o.str("site", site).num("hit", *hit as f64).str("outcome", label);
            o.finish()
        })
        .collect();
    let mut obj = JsonObject::new();
    obj.str("bench", "chaos")
        .str(
            "preset",
            &std::env::args().nth(1).unwrap_or_else(|| "fast".into()),
        )
        .num("seed", seed as f64)
        .num("n_sites", SITES.len() as f64)
        .num("violations", violations.len() as f64)
        .raw("sites", &format!("[{}]", sites_json.join(",")));
    let json = obj.finish();
    if let Err(e) = astromlab::eval::json::Json::parse(&json) {
        info!("chaos: emitted invalid JSON ({e:?})");
        std::process::exit(1);
    }
    match std::fs::write("BENCH_chaos.json", &json) {
        Ok(()) => run.add("bench_json", "BENCH_chaos.json"),
        Err(e) => info!("BENCH_chaos.json not written: {e}"),
    }
    run.add("violations", &violations.len().to_string());
    run.finish();

    if !violations.is_empty() {
        for v in &violations {
            info!("chaos: FAIL: {v}");
        }
        std::process::exit(1);
    }
    info!("chaos: OK ({} fault sites, 0 violations)", SITES.len());
}
