//! Development diagnostic: track token-base MCQ accuracy and held-out
//! losses as a native model trains, to size the presets. Not part of the
//! paper's artefacts.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin diagnose -- [steps] [tier]
//! ```

use astromlab::eval::Method;
use astromlab::model::Tier;
use astromlab::train::held_out_loss;
use astromlab::{Study, StudyConfig};
use astromlab::world::CorpusRecipe;

fn main() {
    let steps: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(800);
    let tier = match std::env::args().nth(2).as_deref() {
        Some("7b") => Tier::S7b,
        Some("70b") => Tier::S70b,
        _ => Tier::S8b,
    };
    let n_entities: usize = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(120);
    let general_docs: usize = std::env::args().nth(4).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let mut config = StudyConfig::fast(42);
    config.n_eval_questions = 120;
    config.world.n_entities = n_entities;
    config.general_docs = general_docs;
    let study = Study::prepare(config).expect("prepare");
    astro_telemetry::info!(
        "world: {} facts | general stream: {} tokens | AIC stream: {} tokens | vocab {}",
        study.world.facts.len(),
        study.general_stream.len(),
        study.cpt_stream(CorpusRecipe::Aic).expect("prepared").len(),
        study.tokenizer.vocab_size()
    );

    // Train in chunks, evaluating between.
    let cfg_model = study.model_config(tier);
    let mut rng = astromlab::prng::Rng::seed_from(42).substream("diag-init");
    let mut params = astromlab::model::Params::init(cfg_model, &mut rng);
    astro_telemetry::info!("tier {:?}: {} params", tier, params.len());
    // Tokenizer diagnostics: do the letter variants exist?
    for piece in ["A", " A", " B", " C", " D", "Answer:", " Answer:"] {
        astro_telemetry::info!("  token_for_str({piece:?}) = {:?}", study.tokenizer.token_for_str(piece));
    }

    let chunk = 100u64;
    let mut done = 0u64;
    let t0 = std::time::Instant::now();
    while done < steps {
        let n = chunk.min(steps - done);
        let tc = astromlab::train::TrainerConfig {
            lr: study.config.native_lr,
            batch: study.config.batch,
            seq: study.config.seq,
            steps: n,
            log_every: 0,
            ..Default::default()
        };
        let report = astromlab::train::train_lm(
            &mut params,
            astromlab::train::BatchSource::Lm(&study.general_stream),
            &tc,
            &astromlab::prng::Rng::seed_from(1000 + done),
        )
        .expect("train");
        done += n;
        let score = study.eval(&params, Method::TokenBase);
        let (hl, _) = held_out_loss(&params, &study.general_stream, study.config.seq, 20);
        // Prediction histogram over the eval subset.
        let questions = study.eval_questions();
        let model = astromlab::eval::EvalModel { params: &params, tokenizer: &study.tokenizer };
        let mut hist = [0usize; 4];
        for q in &questions {
            let (p, _) = astromlab::eval::token_method::token_method_predict(
                &model, q, &study.mcq.exemplars, &astromlab::eval::TokenEvalConfig::default());
            hist[p] += 1;
        }
        astro_telemetry::info!(
            "step {done:>5}: train loss {:.3} | held-out {:.3} | token-base {:>5.1}% ({}/{}) | preds A{} B{} C{} D{} | {:.0}s",
            report.final_loss,
            hl,
            score.percent(),
            score.correct,
            score.total,
            hist[0], hist[1], hist[2], hist[3],
            t0.elapsed().as_secs_f64()
        );
    }

    // Fact-recall probe: completion accuracy on "The {rel} of {ent} is"
    // over consensus facts (does the model KNOW the facts, separate from
    // the MCQ format?).
    let consensus: Vec<&astromlab::world::Fact> = study
        .world
        .facts_of_tier(astromlab::world::FactTier::Consensus)
        .take(60)
        .collect();
    let mut recall_hits = 0usize;
    for fact in &consensus {
        let entity = study.world.entity_of(fact);
        let prompt_text = format!("The {} of {} is", fact.relation.phrase(), entity.name);
        let toks = study.tokenizer.encode_with_bounds(&prompt_text, false);
        let mut sess = astromlab::model::InferenceSession::new(params.cfg);
        let logits = sess.feed_prompt(&params, &toks);
        let next = astromlab::model::argmax(&logits) as u32;
        let value_first = study.tokenizer.encode(&format!(" {}", fact.value));
        if value_first.first() == Some(&next) {
            recall_hits += 1;
        }
    }
    astro_telemetry::info!(
        "fact recall (first token of value): {}/{} = {:.0}%",
        recall_hits,
        consensus.len(),
        100.0 * recall_hits as f64 / consensus.len() as f64
    );

    // In-context MCQ probe: the fact sentence is given right before the
    // question (the context-primer pattern). If the model can do THIS but
    // not the closed-book MCQ, option-matching works and knowledge recall
    // is the bottleneck; if it can't do this either, the induction circuit
    // itself hasn't formed.
    let questions = study.eval_questions();
    let mut ctx_hits = 0usize;
    let mut probe_rng = astromlab::prng::Rng::seed_from(9).substream("ctx-probe");
    for q in questions.iter().take(60) {
        let fact = &study.world.facts[q.fact];
        let context = study.world.render_fact(fact, &mut probe_rng);
        let block = astromlab::mcq::prompts::render_block(q, false);
        let text = format!("{context}\n{block}");
        let toks = study.tokenizer.encode_with_bounds(&text, false);
        let keep = toks.len().min(params.cfg.max_seq);
        let mut sess = astromlab::model::InferenceSession::new(params.cfg);
        let logits = sess.feed_prompt(&params, &toks[toks.len() - keep..]);
        let mut best = (f32::NEG_INFINITY, 0usize);
        for (i, opt) in q.options.iter().enumerate() {
            let head = opt.split(' ').next().unwrap_or(opt);
            for piece in [format!(" {head}"), head.to_string()] {
                if let Some(id) = study.tokenizer.token_for_str(&piece) {
                    let l = logits[id as usize];
                    if l > best.0 {
                        best = (l, i);
                    }
                }
            }
        }
        if best.1 == q.answer {
            ctx_hits += 1;
        }
    }
    astro_telemetry::info!(
        "in-context MCQ accuracy (fact shown): {}/60 = {:.0}%",
        ctx_hits,
        100.0 * ctx_hits as f64 / 60.0
    );

    // Top-10 tokens after one real prompt.
    let questions = study.eval_questions();
    let q = questions[0];
    let prompt = astromlab::mcq::prompts::token_method_prompt(q, &study.mcq.exemplars, 2);
    let tokens = study.tokenizer.encode_with_bounds(&prompt, false);
    astro_telemetry::info!("prompt tokens: {} (max_seq {})", tokens.len(), params.cfg.max_seq);
    let mut sess = astromlab::model::InferenceSession::new(params.cfg);
    let keep = tokens.len().min(params.cfg.max_seq);
    let logits = sess.feed_prompt(&params, &tokens[tokens.len()-keep..]);
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).unwrap());
    astro_telemetry::info!("correct answer: {} ({})", q.answer_letter(), q.options[q.answer]);
    for &i in idx.iter().take(10) {
        astro_telemetry::info!("  top token {:?} logit {:.2}", String::from_utf8_lossy(study.tokenizer.piece(i as u32)), logits[i]);
    }
}
