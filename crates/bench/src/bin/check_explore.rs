//! Run the astro-check concurrency suite and record exploration stats.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin check_explore
//! RUSTFLAGS="--cfg astro_check" cargo run -p astro-bench --bin check_explore
//! ```
//!
//! Three sections, all deterministic:
//!
//! 1. **models** — exhaustive exploration (preemption bound 2) of the
//!    reference protocol models in `astro_check::models`; any violation
//!    is a build-stopping failure.
//! 2. **mutants** — the seeded protocol bugs (dropped notify, wait-`if`,
//!    skipped drain handshake, ×2 for the pool) must each produce a
//!    violation; every counterexample schedule is written to
//!    `counterexamples/<name>.jsonl` and re-verified by replay.
//! 3. **harnesses** (only under `--cfg astro_check`) — the real
//!    `BoundedQueue` and `ThreadPool` protocols explored through the
//!    `astro_telemetry::sync` shim.
//!
//! Results (explored/pruned schedule counts, max steps, mutant verdicts)
//! land in `BENCH_check.json`. Exits non-zero if a correct protocol
//! fails, a mutant escapes detection, or a counterexample fails to
//! replay.

use astro_bench::JsonObject;
use astro_check::models::{self, PoolMutant, QueueMutant};
use astro_check::{explore, replay, CheckConfig, Report, Schedule, ViolationKind};
use std::path::Path;

struct Failures(u32);

impl Failures {
    fn check(&mut self, ok: bool, what: &str) {
        if ok {
            println!("  ok: {what}");
        } else {
            println!("  FAIL: {what}");
            self.0 += 1;
        }
    }
}

fn report_json(name: &str, r: &Report) -> String {
    let mut o = JsonObject::new();
    o.str("name", name)
        .num("schedules", r.schedules as f64)
        .num("pruned", r.pruned as f64)
        .num("max_steps", r.max_steps_seen as f64)
        .str(
            "violation",
            r.violation.as_ref().map(|v| v.kind.label()).unwrap_or(""),
        );
    o.finish()
}

/// Explore a correct protocol: must pass, exhaustively.
fn run_correct<F>(name: &str, fails: &mut Failures, rows: &mut Vec<String>, model: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let r = explore(&CheckConfig::default(), model);
    fails.check(
        r.ok() && !r.truncated && r.schedules > 0,
        &format!("{name}: {} schedules, {} pruned, ok", r.schedules, r.pruned),
    );
    rows.push(report_json(name, &r));
}

/// Explore a seeded mutant: must produce a violation of `expect` kind
/// whose counterexample replays to the same verdict.
fn run_mutant<F, G>(
    name: &str,
    expect: ViolationKind,
    fails: &mut Failures,
    rows: &mut Vec<String>,
    model: F,
    remake: G,
) where
    F: Fn() + Send + Sync + 'static,
    G: Fn() + Send + Sync + 'static,
{
    let r = explore(&CheckConfig::default(), model);
    let (caught, replayed, steps) = match &r.violation {
        Some(v) if v.kind == expect => {
            let path = Path::new("counterexamples").join(format!("{name}.jsonl"));
            let dumped = astro_check::dump_counterexample(&r, &path).unwrap_or(false);
            let text = std::fs::read_to_string(&path).unwrap_or_default();
            let sched = Schedule::from_jsonl(&text);
            let replay_ok = match &sched {
                Some(s) => replay(&CheckConfig::default(), s, remake)
                    .violation
                    .map(|rv| rv.kind == expect)
                    .unwrap_or(false),
                None => false,
            };
            (true, dumped && replay_ok, v.schedule.steps.len())
        }
        _ => (false, false, 0),
    };
    fails.check(
        caught && replayed,
        &format!(
            "mutant {name}: caught={caught} ({:?} expected), counterexample replays={replayed}, {steps} steps",
            expect
        ),
    );
    let mut o = JsonObject::new();
    o.str("name", name)
        .num("schedules_to_violation", r.executions() as f64)
        .str("expected", expect.label())
        .str(
            "got",
            r.violation.as_ref().map(|v| v.kind.label()).unwrap_or(""),
        )
        .raw("caught", if caught { "true" } else { "false" })
        .raw("replayed", if replayed { "true" } else { "false" })
        .num("counterexample_steps", steps as f64);
    rows.push(o.finish());
}

#[cfg(astro_check)]
fn run_harnesses(fails: &mut Failures, rows: &mut Vec<String>) {
    use astro_gateway::queue::{BoundedQueue, Pop};
    use astro_parallel::ThreadPool;
    use astro_telemetry::sync::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    run_correct("harness.gateway_queue", fails, rows, || {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            let mut accepted = 0u32;
            for v in 1..=2u32 {
                if q2.try_push(v).is_ok() {
                    accepted += 1;
                }
            }
            q2.close();
            accepted
        });
        let mut drained = 0u32;
        loop {
            match q.pop(None) {
                Pop::Item(_) => drained += 1,
                Pop::Closed => break,
                Pop::TimedOut => {}
            }
        }
        let accepted = producer.join().unwrap_or(0);
        assert_eq!(drained, accepted, "drain lost accepted items");
    });

    run_correct("harness.pool_quiescence", fails, rows, || {
        let pool = ThreadPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 2);
        drop(pool);
    });
}

#[cfg(not(astro_check))]
fn run_harnesses(_fails: &mut Failures, rows: &mut Vec<String>) {
    println!("  (real-protocol harnesses need RUSTFLAGS=\"--cfg astro_check\"; skipped)");
    let mut o = JsonObject::new();
    o.str("name", "harnesses").str("skipped", "build without --cfg astro_check");
    rows.push(o.finish());
}

fn main() {
    let mut fails = Failures(0);
    let mut correct_rows: Vec<String> = Vec::new();
    let mut mutant_rows: Vec<String> = Vec::new();

    println!("== correct protocols (exhaustive, preemption bound 2) ==");
    run_correct("model.counter", &mut fails, &mut correct_rows, models::counter_model(2));
    run_correct(
        "model.bounded_queue",
        &mut fails,
        &mut correct_rows,
        models::bounded_queue_model(QueueMutant::Correct),
    );
    run_correct(
        "model.pool_quiescence",
        &mut fails,
        &mut correct_rows,
        models::quiescence_model(PoolMutant::Correct),
    );

    println!("== seeded mutants (each must yield a replayable counterexample) ==");
    run_mutant(
        "queue_drop_notify",
        ViolationKind::Deadlock,
        &mut fails,
        &mut mutant_rows,
        models::bounded_queue_model(QueueMutant::DropNotifyOnClose),
        models::bounded_queue_model(QueueMutant::DropNotifyOnClose),
    );
    run_mutant(
        "queue_wait_if",
        ViolationKind::Panic,
        &mut fails,
        &mut mutant_rows,
        models::bounded_queue_model(QueueMutant::WaitIfInsteadOfWhile),
        models::bounded_queue_model(QueueMutant::WaitIfInsteadOfWhile),
    );
    run_mutant(
        "queue_skip_drain",
        ViolationKind::Panic,
        &mut fails,
        &mut mutant_rows,
        models::bounded_queue_model(QueueMutant::SkipDrain),
        models::bounded_queue_model(QueueMutant::SkipDrain),
    );
    run_mutant(
        "pool_drop_notify",
        ViolationKind::Deadlock,
        &mut fails,
        &mut mutant_rows,
        models::quiescence_model(PoolMutant::DropNotify),
        models::quiescence_model(PoolMutant::DropNotify),
    );
    run_mutant(
        "pool_wait_if",
        ViolationKind::Panic,
        &mut fails,
        &mut mutant_rows,
        models::quiescence_model(PoolMutant::IfInsteadOfWhile),
        models::quiescence_model(PoolMutant::IfInsteadOfWhile),
    );

    println!("== real-protocol harnesses ==");
    let mut harness_rows: Vec<String> = Vec::new();
    run_harnesses(&mut fails, &mut harness_rows);

    let mut root = JsonObject::new();
    root.str("bench", "check_explore")
        .num("preemption_bound", CheckConfig::default().preemption_bound as f64)
        .raw(
            "shim_active",
            if cfg!(astro_check) { "true" } else { "false" },
        )
        .raw("correct", &format!("[{}]", correct_rows.join(",")))
        .raw("mutants", &format!("[{}]", mutant_rows.join(",")))
        .raw("harnesses", &format!("[{}]", harness_rows.join(",")))
        .num("failures", fails.0 as f64);
    let json = root.finish();
    if let Err(e) = std::fs::write("BENCH_check.json", &json) {
        println!("FAIL: could not write BENCH_check.json: {e}");
        fails.0 += 1;
    }
    println!("wrote BENCH_check.json");

    if fails.0 > 0 {
        println!("check_explore: {} failure(s)", fails.0);
        std::process::exit(1);
    }
    println!("check_explore: all checks passed");
}
