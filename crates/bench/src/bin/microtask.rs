//! Development diagnostic: isolated option-matching micro-task.
//!
//! Sequences are built directly in token space (no BPE, no filler):
//!
//! ```text
//! <fact-value> Q A: v? B: v? C: v? D: v? => <letter-of-matching-option>
//! ```
//!
//! If the training stack can learn THIS, the MCQ-matching circuit is
//! learnable and any flatness in the full study is a data-mixture /
//! budget issue; if it cannot, the model/trainer has a defect.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin microtask -- [steps]
//! ```

use astromlab::model::{ModelConfig, Params, TrainContext};
use astromlab::prng::Rng;

// Token ids (tiny fixed vocabulary, no tokenizer involved).
const VALUES: std::ops::Range<u32> = 10..18; // 8 distinct values
const LETTERS: [u32; 4] = [2, 3, 4, 5]; // A B C D
const Q: u32 = 6;
const ARROW: u32 = 7;
const COLON: u32 = 8;
const VOCAB: usize = 20;

/// Pure-attention probe: 16 tokens where the LAST position must repeat
/// the token at position 0 (one attention hop; FFN alone cannot solve it).
fn build_copy_example(rng: &mut Rng) -> (Vec<u32>, usize) {
    let v = VALUES.start + rng.below((VALUES.end - VALUES.start) as u64) as u32;
    let mut seq = vec![v];
    for _ in 1..15 {
        seq.push(LETTERS[rng.index(4)]);
    }
    seq.push(v); // target: copy of position 0
    (seq, (v - VALUES.start) as usize)
}

/// One example: 16 tokens ending with the correct letter.
fn build_example(rng: &mut Rng) -> (Vec<u32>, usize) {
    let n_vals = (VALUES.end - VALUES.start) as usize;
    let correct_slot = rng.index(4);
    let mut vals = rng.sample_indices(n_vals, 4);
    let fact = VALUES.start + vals[correct_slot] as u32;
    let mut seq = vec![fact, Q];
    for (slot, v) in vals.drain(..).enumerate() {
        seq.push(LETTERS[slot]);
        seq.push(COLON);
        seq.push(VALUES.start + v as u32);
    }
    seq.push(ARROW);
    seq.push(LETTERS[correct_slot]);
    (seq, correct_slot)
}

fn main() {
    let steps: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600);
    let layers: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let d: usize = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(32);
    let lr: f32 = std::env::args().nth(4).and_then(|s| s.parse().ok()).unwrap_or(3e-3);
    let cfg = ModelConfig {
        vocab_size: VOCAB,
        d_model: d,
        n_layers: layers,
        n_heads: 4.min(d / 8),
        d_ff: 2 * d,
        max_seq: 16,
    };
    astro_telemetry::info!("layers {layers} d {d} lr {lr}");
    let mut rng = Rng::seed_from(7);
    let mut params = Params::init(cfg, &mut rng);
    let b = 16usize;
    let t = 16usize;
    let mut ctx = TrainContext::new(cfg, b, t);
    let mode = std::env::args().nth(5).unwrap_or_default();
    let letter_only = mode == "letteronly" || mode == "copy0";
    let copy_mode = mode == "copy0";
    let mut opt = astromlab::train::AdamW::new(params.len());
    opt.weight_decay = 0.0;
    let mut grad = vec![0.0f32; params.len()];
    for step in 0..steps {
        let mut tokens = Vec::with_capacity(b * t);
        let mut targets = vec![0usize; b * t];
        let mut mask = vec![false; b * t];
        for row in 0..b {
            let (seq, _) = if copy_mode {
                build_copy_example(&mut rng)
            } else {
                build_example(&mut rng)
            };
            assert_eq!(seq.len(), 16);
            tokens.extend_from_slice(&seq);
            for i in 0..t - 1 {
                targets[row * t + i] = seq[i + 1] as usize;
                mask[row * t + i] = !letter_only || i == t - 2;
            }
        }
        grad.fill(0.0);
        let loss = ctx.loss_and_grad(&params, &tokens, &targets, &mask, &mut grad);
        opt.step(&mut params.data, &grad, lr);
        if step % 100 == 0 || step + 1 == steps {
            // Accuracy on fresh examples: predict the letter after ARROW.
            let mut eval_rng = Rng::seed_from(step as u64 + 99_999);
            let mut hits = 0;
            let n_eval = 100;
            for _ in 0..n_eval {
                if copy_mode {
                    let (seq, _) = build_copy_example(&mut eval_rng);
                    let mut sess = astromlab::model::InferenceSession::new(cfg);
                    let logits = sess.feed_prompt(&params, &seq[..seq.len() - 1]);
                    if astromlab::model::argmax(&logits) as u32 == seq[15] {
                        hits += 1;
                    }
                } else {
                    let (seq, correct_slot) = build_example(&mut eval_rng);
                    let mut sess = astromlab::model::InferenceSession::new(cfg);
                    let logits = sess.feed_prompt(&params, &seq[..seq.len() - 1]);
                    let mut best = (f32::NEG_INFINITY, 0usize);
                    for (slot, &letter) in LETTERS.iter().enumerate() {
                        if logits[letter as usize] > best.0 {
                            best = (logits[letter as usize], slot);
                        }
                    }
                    if best.1 == correct_slot {
                        hits += 1;
                    }
                }
            }
            println!("step {step:>5}: loss {loss:.4} | accuracy {}%", hits);
        }
    }
}
