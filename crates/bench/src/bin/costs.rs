//! Regenerate the paper's **§III compute-cost figures** from the A100
//! cost model, and cross-check them against our simulated runs.
//!
//! For each paper number (CPT 32 / 2,000 A100-h; SFT 12 / 100; inference
//! 64 h for 4,425 MCQs) we print the token count the cost model implies
//! and the A100-hours our simulated token counts would cost at paper
//! scale — demonstrating the two are mutually consistent.
//!
//! ```sh
//! cargo run --release -p astro-bench --bin costs -- [smoke|fast|full] [seed]
//! ```
//!
//! Outputs (working directory): `telemetry.jsonl`, `run_manifest.json`,
//! and the machine-readable `BENCH_costs.json`.

use astro_bench::{instrumented_run, JsonObject};
use astro_telemetry::info;
use astromlab::model::Tier;
use astromlab::train::{CostModel, TrainingKind, PAPER_COSTS};

fn main() {
    let (config, mut run) = instrumented_run("costs");
    let _span = astro_telemetry::span!("costs.render");
    let model = CostModel::default();

    println!("\n=== Paper §III cost table vs cost model ===\n");
    println!(
        "{:<30} {:>12} {:>12} {:>18}",
        "Workload", "params (B)", "paper A100-h", "implied tokens"
    );
    println!("{}", "-".repeat(76));
    for (label, params_b, hours, kind) in PAPER_COSTS {
        let tokens = model.implied_tokens(params_b, hours, kind);
        println!("{label:<30} {params_b:>12.0} {hours:>12.0} {tokens:>17.2e}");
    }

    println!(
        "\ncost model: A100 peak {:.0} TFLOP/s, MFU train {:.0}% / inference {:.0}%",
        model.peak_tflops,
        model.train_mfu * 100.0,
        model.infer_mfu * 100.0
    );

    // Consistency check the paper's own numbers: the CPT corpus implied by
    // the 8B and 70B runs should be the same dataset up to the paper's
    // differing max token lengths (512 vs 2048).
    let t8 = model.implied_tokens(8.0, 32.0, TrainingKind::Cpt);
    let t70 = model.implied_tokens(70.0, 2000.0, TrainingKind::Cpt);
    println!(
        "\nimplied CPT corpus: 8B run {:.2e} tokens vs 70B run {:.2e} tokens (ratio {:.1}; \
         the paper trained the 8B at max length 512 vs 2048 for the 70B)",
        t8,
        t70,
        t70 / t8
    );

    // Our simulated runs, scaled to paper corpora.
    println!("\n=== This reproduction's simulated training, priced at paper scale ===\n");
    let study_cfg = config.clone();
    println!(
        "{:<28} {:>14} {:>22}",
        "Simulated run", "sim tokens", "A100-h at paper scale"
    );
    println!("{}", "-".repeat(68));
    for (label, tier, tokens) in [
        ("native pretrain (7B-class)", Tier::S7b, study_cfg.native_tokens(0)),
        ("native pretrain (8B-class)", Tier::S8b, study_cfg.native_tokens(1)),
        ("native pretrain (70B-class)", Tier::S70b, study_cfg.native_tokens(2)),
        ("CPT (70B-class)", Tier::S70b, study_cfg.cpt_tokens()),
    ] {
        // Price the *same token count* on the real model the tier stands
        // in for — the honest statement of what our runs would cost.
        let hours = model.a100_hours(tier.nominal_params_b(), tokens as f64, TrainingKind::Cpt);
        println!("{label:<28} {tokens:>14} {hours:>22.4}");
    }
    println!(
        "\n(The gap to the paper's 2,000 A100-h for 70B CPT is the corpus-scale substitution: \
         {:.2e} paper tokens vs {} simulated tokens.)",
        t70,
        study_cfg.cpt_tokens()
    );

    // Inference cost of the full-instruct benchmark.
    let infer_tokens = model.implied_tokens(70.0, 64.0, TrainingKind::Inference);
    println!(
        "\nfull-instruct inference: paper 64 A100-h for 4,425 MCQs → {:.0} tokens/question \
         (chain-of-thought outputs up to 512 tokens plus prompts)",
        infer_tokens / 4425.0
    );

    // Machine-readable record of the cost cross-check.
    let mut paper = JsonObject::new();
    for (label, params_b, hours, kind) in PAPER_COSTS {
        let mut row = JsonObject::new();
        row.num("params_b", params_b)
            .num("paper_a100_hours", hours)
            .num("implied_tokens", model.implied_tokens(params_b, hours, kind));
        paper.raw(label, &row.finish());
    }
    let mut sim = JsonObject::new();
    sim.num("native_tokens_7b", study_cfg.native_tokens(0) as f64)
        .num("native_tokens_8b", study_cfg.native_tokens(1) as f64)
        .num("native_tokens_70b", study_cfg.native_tokens(2) as f64)
        .num("cpt_tokens", study_cfg.cpt_tokens() as f64);
    let mut top = JsonObject::new();
    top.str("bench", "costs")
        .num("implied_cpt_tokens_8b", t8)
        .num("implied_cpt_tokens_70b", t70)
        .num("infer_tokens_per_question", infer_tokens / 4425.0)
        .raw("paper_costs", &paper.finish())
        .raw("simulated", &sim.finish());
    let mut json = top.finish();
    json.push('\n');
    match std::fs::write("BENCH_costs.json", &json) {
        Ok(()) => run.add("bench_json", "BENCH_costs.json"),
        Err(e) => info!("BENCH_costs.json not written: {e}"),
    }
    drop(_span);
    println!();
    run.finish();
}
