//! Render Figure 1 from an existing Table I run's scores (E2 without
//! retraining: the `figure1` binary re-runs the whole study; this one
//! feeds already-measured scores through the same renderer).
//!
//! ```sh
//! cargo run --release -p astro-bench --bin figure1_render -- \
//!     s1 s2 s3 ... s24
//! ```
//! Scores are given row-major in Table I order (8 models × [full
//! instruct, token instruct, token base]); use `-` for absent cells.
//! With no arguments, renders the paper's published scores.

use astromlab::study::build_rows;
use astromlab::ModelId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scores: Vec<(ModelId, [Option<f64>; 3])> = if args.is_empty() {
        astro_telemetry::info!("(no scores given — rendering the paper's published scores)");
        ModelId::all().iter().map(|&id| (id, id.paper_scores())).collect()
    } else {
        assert_eq!(
            args.len(),
            24,
            "need 24 score cells (8 models x 3 methods), got {}",
            args.len()
        );
        ModelId::all()
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let mut cells = [None; 3];
                for (j, cell) in cells.iter_mut().enumerate() {
                    let raw = &args[i * 3 + j];
                    if raw != "-" {
                        *cell = Some(raw.parse::<f64>().unwrap_or_else(|e| {
                            panic!("bad score {raw:?} for {}: {e}", id.name())
                        }));
                    }
                }
                (id, cells)
            })
            .collect()
    };
    let rows = build_rows(&scores);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, cells) in &scores {
        for s in cells.iter().flatten() {
            lo = lo.min(*s);
            hi = hi.max(*s);
        }
    }
    let pad = ((hi - lo) * 0.1).max(2.0);
    println!(
        "{}",
        astromlab::eval::report::render_figure1(&rows, (lo - pad).max(0.0), (hi + pad).min(100.0))
    );
    println!("{}", astromlab::eval::report::figure1_csv(&rows));
}
