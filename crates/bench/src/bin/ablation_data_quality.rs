//! Ablation A1 — CPT data quality (clean vs LaTeX-artefact vs heavy OCR vs
//! OCR + Nougat cleaning), supporting the paper's claim that high-quality
//! information-dense CPT tokens are critical (§VI, and the motivation for
//! the Summary recipe and the Nougat OCR effort of §III).
//!
//! ```sh
//! cargo run --release -p astro-bench --bin ablation_data_quality -- [smoke|fast|full] [seed]
//! ```

use astro_bench::instrumented_run;
use astro_telemetry::info;
use astromlab::ablations::{ablation_data_quality, render_ablation};
use astromlab::Study;

fn main() {
    let (config, run) = instrumented_run("ablation_data_quality");
    let study = Study::prepare(config).expect("prepare");
    info!("CPT'ing the 8B-class native through 4 noise channels ...");
    let points = ablation_data_quality(&study).expect("ablation");
    println!(
        "\n{}",
        render_ablation(
            "A1: token-base score after CPT on AIC content by data quality",
            &points,
            None
        )
    );
    println!(
        "expected shape: clean ≥ latex-artifacts ≥ heavy-ocr, with nougat cleaning \
         recovering part of the heavy-ocr gap."
    );
    run.finish();
}
