//! Ablation A2 — SFT mixture: astronomy fraction and dataset size,
//! probing the paper's conclusion that "the current SFT dataset ... is
//! insufficient" and that content mix, not just size, drives the
//! instruct-model degradation (§VI).
//!
//! ```sh
//! cargo run --release -p astro-bench --bin ablation_sft_mixture -- [smoke|fast|full] [seed]
//! ```

use astro_bench::instrumented_run;
use astro_telemetry::info;
use astromlab::ablations::{ablation_sft_mixture, render_ablation};
use astromlab::Study;

fn main() {
    let (config, run) = instrumented_run("ablation_sft_mixture");
    let study = Study::prepare(config).expect("prepare");
    info!("SFT'ing the 8B-class AIC model under 4 mixtures ...");
    let points = ablation_sft_mixture(&study).expect("ablation");
    println!(
        "\n{}",
        render_ablation(
            "A2: full-instruct score by SFT mixture (secondary: token-instruct)",
            &points,
            Some("token-instruct")
        )
    );
    println!(
        "expected shape: astronomy-focused mixtures preserve full-instruct ability best; \
         the paper's 1/3-astro mixture sits between the extremes; shrinking the set hurts."
    );
    run.finish();
}
