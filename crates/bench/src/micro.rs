//! Minimal microbenchmark harness for the `benches/` entry points.
//!
//! The workspace builds offline, so Criterion is unavailable; this is a
//! plain warmup-then-measure loop with median/min reporting and optional
//! throughput. It is deliberately small: benches here guide optimisation
//! work, they are not a statistics suite. Timings are also recorded into
//! the telemetry histogram `bench.<group>.<name>.nanos` so a JSONL sink
//! (when active) captures the run.
//!
//! `ASTRO_BENCH_MS` overrides the per-bench measurement budget
//! (milliseconds, default 2000 — matching the old Criterion config).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// What one iteration processes, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Abstract elements (tokens, floats, flops) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A named group of microbenchmarks sharing a measurement budget.
pub struct Micro {
    group: String,
    budget: Duration,
    throughput: Option<Throughput>,
}

impl Micro {
    /// Start a bench group; `ASTRO_BENCH_MS` overrides the 2s budget.
    pub fn new(group: &str) -> Micro {
        let ms = std::env::var("ASTRO_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2000u64);
        astro_telemetry::info!("group {group} (budget {ms}ms per bench)");
        Micro {
            group: group.to_string(),
            budget: Duration::from_millis(ms),
            throughput: None,
        }
    }

    /// Set the per-iteration work for subsequent [`Micro::bench`] calls.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run `f` repeatedly, print a result line, and return the median
    /// per-iteration time.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> Duration {
        // One untimed call so lazy setup (page faults, allocator growth)
        // lands outside measurement, then calibrate batch size to ~10ms.
        let once = time(&mut f, 1);
        let iters_per_batch = (Duration::from_millis(10).as_nanos() / once.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        // Warmup ~1/4 budget, then measure whole batches until the budget
        // is spent (always at least 5 batches).
        let warm_until = Instant::now() + self.budget / 4;
        while Instant::now() < warm_until {
            time(&mut f, iters_per_batch);
        }
        let mut samples: Vec<Duration> = Vec::new();
        let measure_until = Instant::now() + self.budget;
        while samples.len() < 5 || Instant::now() < measure_until {
            samples.push(time(&mut f, iters_per_batch) / iters_per_batch as u32);
            if samples.len() >= 10_000 {
                break;
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let hist = astro_telemetry::histogram(&format!("bench.{}.{name}.nanos", self.group));
        for s in &samples {
            hist.observe(s.as_nanos() as f64);
        }
        let mut line = format!(
            "  {:<36} median {:>12}  min {:>12}  ({} samples x {} iters)",
            name,
            fmt_duration(median),
            fmt_duration(min),
            samples.len(),
            iters_per_batch
        );
        if let Some(t) = self.throughput {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = n as f64 / median.as_secs_f64().max(1e-12);
            line.push_str(&format!("  {} {unit}", fmt_rate(rate)));
        }
        astro_telemetry::info!("{line}");
        median
    }
}

fn time<R, F: FnMut() -> R>(f: &mut F, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2}k", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_plausible_median() {
        std::env::set_var("ASTRO_BENCH_MS", "20");
        let mut m = Micro::new("selftest");
        m.throughput(Throughput::Elements(1000));
        let med = m.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(med > Duration::ZERO && med < Duration::from_millis(100));
        std::env::remove_var("ASTRO_BENCH_MS");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
    }
}
