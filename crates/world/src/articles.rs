//! Synthetic review articles.
//!
//! The paper's MCQ benchmark derives from 885 Annual Review of Astronomy &
//! Astrophysics articles, each a broad review of one subfield. Here an
//! article is a set of facts centred on a few related entities, with a
//! synthetic ARAA-style identifier. Entity popularity across articles is
//! Zipf-distributed: a few famous objects are reviewed repeatedly, most
//! rarely — which controls how often each fact recurs in the CPT stream.

use crate::facts::Fact;
use crate::WorldConfig;
use astro_prng::{Rng, Zipf};

/// One synthetic review article.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Article {
    /// Index into `World::articles`.
    pub id: usize,
    /// ARAA-style identifier, e.g. `2004ARAA..42..517`.
    pub araa_id: String,
    /// The entities this review focuses on.
    pub entity_ids: Vec<usize>,
    /// The facts the review covers (indices into `World::facts`).
    pub fact_ids: Vec<usize>,
}

/// Assign facts to `config.n_articles` articles with Zipf-skewed entity
/// popularity.
pub fn assign_articles(
    root: &Rng,
    config: &WorldConfig,
    n_entities: usize,
    facts: &[Fact],
) -> Vec<Article> {
    let mut rng = root.substream("articles");
    let zipf = Zipf::new(n_entities, config.popularity_skew);

    // Pre-index facts by entity for O(1) lookup.
    let mut by_entity: Vec<Vec<usize>> = vec![Vec::new(); n_entities];
    for f in facts {
        by_entity[f.entity].push(f.id);
    }

    let mut out = Vec::with_capacity(config.n_articles);
    for id in 0..config.n_articles {
        // A review covers a handful of entities.
        let mut entity_ids = Vec::new();
        while entity_ids.len() < 3 {
            let e = zipf.sample(&mut rng);
            if !entity_ids.contains(&e) && !by_entity[e].is_empty() {
                entity_ids.push(e);
            }
        }
        // Gather candidate facts from those entities, then trim/fill to
        // the configured count.
        let mut fact_ids: Vec<usize> = entity_ids
            .iter()
            .flat_map(|&e| by_entity[e].iter().copied())
            .collect();
        rng.shuffle(&mut fact_ids);
        fact_ids.truncate(config.facts_per_article);
        // Reviews integrate insight across subfields (paper §IV): add a
        // few facts from unrelated entities.
        while fact_ids.len() < config.facts_per_article {
            let f = rng.index(facts.len());
            if !fact_ids.contains(&f) {
                fact_ids.push(f);
            }
        }
        let year = 1970 + (id * 54 / config.n_articles.max(1));
        let araa_id = format!("{}ARAA..{:02}..{:03}", year, id % 60, 100 + id % 800);
        out.push(Article {
            id,
            araa_id,
            entity_ids,
            fact_ids,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{World, WorldConfig};

    #[test]
    fn popular_entities_appear_in_more_articles() {
        let w = World::generate(13, WorldConfig::default());
        let mut appearances = vec![0usize; w.entities.len()];
        for a in &w.articles {
            for &e in &a.entity_ids {
                appearances[e] += 1;
            }
        }
        // Zipf skew: the most reviewed entity should appear far more often
        // than the median.
        let max = *appearances.iter().max().unwrap();
        let mut sorted = appearances.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!(max > median * 2, "max {max} median {median}");
    }

    #[test]
    fn every_article_has_requested_fact_count() {
        let cfg = WorldConfig::small();
        let w = World::generate(14, cfg.clone());
        for a in &w.articles {
            assert_eq!(a.fact_ids.len(), cfg.facts_per_article);
        }
    }

    #[test]
    fn article_facts_are_distinct() {
        let w = World::generate(15, WorldConfig::small());
        for a in &w.articles {
            let mut d = a.fact_ids.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), a.fact_ids.len(), "article {} repeats facts", a.id);
        }
    }

    #[test]
    fn araa_ids_unique() {
        let w = World::generate(16, WorldConfig::small());
        let mut ids: Vec<&str> = w.articles.iter().map(|a| a.araa_id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
