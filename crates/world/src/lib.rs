//! The synthetic astronomy knowledge world.
//!
//! The paper's raw material is the astro-ph corpus (papers whose content is
//! astronomical *facts*) and an MCQ benchmark that probes recall of those
//! facts. We cannot ship arXiv, so this crate builds a generative model of
//! a small "universe of facts" and renders it into all the text artefacts
//! the pipeline needs:
//!
//! * a **fact graph**: entities (galaxies, pulsars, supernovae, ...) with
//!   categorical attributes ([`Relation`]), each fact assigned a tier —
//!   [`FactTier::Consensus`] (textbook knowledge that also appears in the
//!   general pretraining corpus), [`FactTier::Frontier`] (research results
//!   that appear in paper abstracts/intros/conclusions), and
//!   [`FactTier::Detail`] (buried in full text; only the *Summary* CPT
//!   recipe surfaces it);
//! * **885 synthetic review articles** mirroring the ARAA source of the
//!   MCQ benchmark;
//! * **corpora**: the general pretraining corpus (everyday facts +
//!   consensus astronomy + exam-format primer), and the three CPT recipes
//!   of the paper — `Abstract`, `AIC`, `Summary` — with an OCR/LaTeX
//!   noise channel standing in for the arXiv-LaTeX artefacts that made the
//!   original AIC data noisy;
//! * **instruction datasets** for SFT with the paper's mixture (≈1/3
//!   astronomy Q&A generated from abstracts, ≈2/3 general instructions à
//!   la LIMA / Open Orca / UltraChat).
//!
//! Everything is deterministic in the world seed.

mod articles;
mod corpus;
mod entities;
mod facts;
mod general;
mod instruct;
mod ocr;

pub use articles::Article;
pub use corpus::{
    build_options, cpt_corpus, exam_primer_doc, general_corpus, partition_article_facts,
    render_article, render_full_text, CorpusRecipe, Document, DocumentKind,
};
pub use entities::{Entity, EntityClass};
pub use facts::{render_question, Fact, FactTier, Relation, RELATIONS};
pub use general::{
    render_general_fact, render_general_question, GeneralFact, GeneralRelation, GENERAL_RELATIONS,
};
pub use instruct::{
    full_instruct_prompt, json_answer, json_answer_text, sft_dataset, Conversation, InstructKind,
    SftMixtureConfig, Turn, EXPERT_SYSTEM_PROMPT,
};
pub use ocr::{clean_ocr, noisify, NoiseConfig};

use astro_prng::Rng;

/// Tunable parameters of the synthetic world.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Number of review articles (the paper uses 885 ARAA articles).
    pub n_articles: usize,
    /// Number of astronomical entities.
    pub n_entities: usize,
    /// Number of everyday entities in the general world.
    pub n_general_entities: usize,
    /// Fraction of astro facts that are textbook consensus (also present
    /// in the general corpus).
    pub consensus_fraction: f64,
    /// Fraction of astro facts that are full-text-only details (the
    /// remainder after consensus are frontier facts).
    pub detail_fraction: f64,
    /// How many facts each article covers.
    pub facts_per_article: usize,
    /// Zipf exponent for entity popularity across articles.
    pub popularity_skew: f64,
    /// General-corpus mixture: fraction of everyday-prose documents.
    pub general_frac: f64,
    /// General-corpus mixture: fraction of textbook-astronomy documents.
    pub textbook_frac: f64,
    /// Number of MCQs per exam-primer document (the remaining corpus
    /// fraction). Real web pretraining data is saturated with exam
    /// content; this is the knob that controls how much of the MCQ task
    /// format the natives absorb.
    pub mcqs_per_primer: usize,
    /// Fraction of primer MCQs preceded by the supporting fact statement
    /// ("study text followed by quiz"), the ubiquitous web pattern that
    /// teaches option matching as pure in-context induction. Eval
    /// questions never include the fact, so scores still measure
    /// knowledge.
    pub primer_context_fraction: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            n_articles: 885,
            n_entities: 450,
            n_general_entities: 160,
            consensus_fraction: 0.55,
            detail_fraction: 0.15,
            facts_per_article: 10,
            popularity_skew: 0.8,
            general_frac: 0.25,
            textbook_frac: 0.30,
            mcqs_per_primer: 2,
            primer_context_fraction: 0.7,
        }
    }
}

impl WorldConfig {
    /// A reduced world for unit tests and the fast experiment preset.
    pub fn small() -> Self {
        WorldConfig {
            n_articles: 60,
            n_entities: 60,
            n_general_entities: 40,
            facts_per_article: 8,
            ..Default::default()
        }
    }
}

/// The fully generated world: fact graph, articles, and the general world.
#[derive(Clone, Debug)]
pub struct World {
    /// Configuration used for generation.
    pub config: WorldConfig,
    /// Master seed.
    pub seed: u64,
    /// Astronomical entities.
    pub entities: Vec<Entity>,
    /// All astro facts, indexed by `fact_id`.
    pub facts: Vec<Fact>,
    /// Everyday-world facts for the general corpus.
    pub general_facts: Vec<GeneralFact>,
    /// The 885 (or configured) review articles.
    pub articles: Vec<Article>,
}

impl World {
    /// Generate a world from a seed and configuration.
    pub fn generate(seed: u64, config: WorldConfig) -> Self {
        let root = Rng::seed_from(seed).substream("world");
        let entities = entities::generate_entities(&root, config.n_entities);
        let facts = facts::generate_facts(
            &root,
            &entities,
            config.consensus_fraction,
            config.detail_fraction,
        );
        let general_facts = general::generate_general_facts(&root, config.n_general_entities);
        let articles = articles::assign_articles(
            &root,
            &config,
            entities.len(),
            &facts,
        );
        World {
            config,
            seed,
            entities,
            facts,
            general_facts,
            articles,
        }
    }

    /// All facts of a given tier.
    pub fn facts_of_tier(&self, tier: FactTier) -> impl Iterator<Item = &Fact> {
        self.facts.iter().filter(move |f| f.tier == tier)
    }

    /// The entity a fact is about.
    pub fn entity_of(&self, fact: &Fact) -> &Entity {
        &self.entities[fact.entity]
    }

    /// Render one fact as a sentence, choosing a phrasing template with
    /// `rng`.
    pub fn render_fact(&self, fact: &Fact, rng: &mut Rng) -> String {
        facts::render_fact(&self.entities[fact.entity], fact, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(7, WorldConfig::small());
        let b = World::generate(7, WorldConfig::small());
        assert_eq!(a.entities.len(), b.entities.len());
        assert_eq!(a.facts.len(), b.facts.len());
        assert_eq!(a.facts[0].value, b.facts[0].value);
        assert_eq!(a.articles[0].fact_ids, b.articles[0].fact_ids);
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(1, WorldConfig::small());
        let b = World::generate(2, WorldConfig::small());
        let same = a
            .facts
            .iter()
            .zip(b.facts.iter())
            .filter(|(x, y)| x.value == y.value)
            .count();
        assert!(same < a.facts.len(), "worlds identical across seeds");
    }

    #[test]
    fn article_count_matches_config() {
        let w = World::generate(3, WorldConfig::small());
        assert_eq!(w.articles.len(), w.config.n_articles);
    }

    #[test]
    fn fact_tiers_cover_all_three() {
        let w = World::generate(4, WorldConfig::default());
        assert!(w.facts_of_tier(FactTier::Consensus).count() > 0);
        assert!(w.facts_of_tier(FactTier::Frontier).count() > 0);
        assert!(w.facts_of_tier(FactTier::Detail).count() > 0);
    }

    #[test]
    fn tier_fractions_roughly_match_config() {
        let cfg = WorldConfig::default();
        let w = World::generate(5, cfg.clone());
        let total = w.facts.len() as f64;
        let consensus = w.facts_of_tier(FactTier::Consensus).count() as f64 / total;
        let detail = w.facts_of_tier(FactTier::Detail).count() as f64 / total;
        assert!((consensus - cfg.consensus_fraction).abs() < 0.07, "consensus {consensus}");
        assert!((detail - cfg.detail_fraction).abs() < 0.07, "detail {detail}");
    }

    #[test]
    fn every_article_has_facts_within_range() {
        let w = World::generate(6, WorldConfig::small());
        for art in &w.articles {
            assert!(!art.fact_ids.is_empty());
            for &fid in &art.fact_ids {
                assert!(fid < w.facts.len());
            }
        }
    }

    #[test]
    fn render_fact_mentions_entity_and_value() {
        let w = World::generate(8, WorldConfig::small());
        let mut rng = Rng::seed_from(0);
        let fact = &w.facts[0];
        let s = w.render_fact(fact, &mut rng);
        assert!(s.contains(&w.entity_of(fact).name), "{s}");
        assert!(s.contains(fact.value), "{s}");
    }
}
