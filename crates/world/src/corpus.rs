//! Document generators: the general pretraining corpus and the three CPT
//! recipes of the paper (*Abstract*, *AIC*, *Summary*).
//!
//! Per-article fact placement mirrors where information lives in a real
//! paper:
//!
//! * the **abstract** states a subset of the headline (non-detail) facts;
//! * **introduction + conclusion** restate the remaining headline facts;
//! * the **body** holds everything, including [`FactTier::Detail`] facts
//!   that never surface in A/I/C — which is exactly why the paper's
//!   `Summary` recipe (LLM summaries of full text) can carry knowledge the
//!   `AIC` recipe cannot.
//!
//! `Abstract` and `AIC` documents pass through the LaTeX/OCR noise channel
//! (the paper found "some methods did not fully provide excellent data
//! quality" for the LaTeX-derived AIC set); `Summary` documents are clean.

use crate::facts::FactTier;
use crate::general::{render_general_fact, render_general_question};
use crate::ocr::{noisify, NoiseConfig};
use crate::{Article, World};
use astro_prng::Rng;

/// What kind of text a document is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DocumentKind {
    /// Everyday prose from the general world.
    General,
    /// Consensus astronomy stated textbook-style.
    Textbook,
    /// Exam-format primer (MCQ with answer) over known facts.
    ExamPrimer,
    /// An astro-ph style abstract.
    Abstract,
    /// Abstract + introduction + conclusion.
    Aic,
    /// Full paper text.
    FullText,
    /// Clean LLM-style summary of the full text.
    Summary,
}

/// One generated document.
#[derive(Clone, Debug)]
pub struct Document {
    /// The document's kind.
    pub kind: DocumentKind,
    /// Source article, for astro documents.
    pub article: Option<usize>,
    /// The text.
    pub text: String,
}

/// The three continual-pretraining data recipes of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorpusRecipe {
    /// CPT on abstracts only (AstroLLaMA-2-7B-Abstract, ref [27]).
    Abstract,
    /// CPT on abstract+introduction+conclusion (the "AIC" models, ref [28]).
    Aic,
    /// CPT on clean full-text summaries (AstroLLaMA-3-8B-Summary).
    Summary,
}

impl CorpusRecipe {
    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CorpusRecipe::Abstract => "Abstract",
            CorpusRecipe::Aic => "AIC",
            CorpusRecipe::Summary => "Summary",
        }
    }

    /// The noise channel this recipe's documents pass through.
    pub fn noise(self) -> NoiseConfig {
        match self {
            // LaTeX-derived sets carry artefacts.
            CorpusRecipe::Abstract | CorpusRecipe::Aic => NoiseConfig::latex_artifacts(),
            // LLM summaries are clean.
            CorpusRecipe::Summary => NoiseConfig::clean(),
        }
    }
}

/// Filler sentences that pad astro documents (no fact content).
const ASTRO_FILLER: [&str; 8] = [
    "We discuss the implications for structure formation.",
    "These results are consistent with previous surveys.",
    "Further observations are required to confirm this scenario.",
    "The data were reduced with standard pipelines.",
    "We compare our findings with theoretical models.",
    "Systematic uncertainties are discussed in detail.",
    "This review summarizes the current state of the field.",
    "Future instruments will improve these constraints.",
];

/// Filler sentences for general documents.
const GENERAL_FILLER: [&str; 6] = [
    "People talk about this all the time.",
    "It is a common topic of conversation.",
    "Many travelers mention it in their notes.",
    "The markets were busy that season.",
    "Records of this are kept carefully.",
    "This is taught in every school.",
];

/// Fraction of an article's non-detail facts that appear in its abstract.
const ABSTRACT_COVERAGE: f64 = 0.4;

/// Partition an article's facts into (abstract, intro/conclusion, body)
/// id lists. Detail-tier facts always land in the body.
pub fn partition_article_facts(world: &World, article: &Article) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut headline: Vec<usize> = Vec::new();
    let mut body: Vec<usize> = Vec::new();
    for &fid in &article.fact_ids {
        if world.facts[fid].tier == FactTier::Detail {
            body.push(fid);
        } else {
            headline.push(fid);
        }
    }
    let n_abs = ((headline.len() as f64) * ABSTRACT_COVERAGE).ceil() as usize;
    let ic = headline.split_off(n_abs.min(headline.len()));
    (headline, ic, body)
}

/// Render one article under a CPT recipe (clean text, before noise).
pub fn render_article(world: &World, article: &Article, recipe: CorpusRecipe, rng: &mut Rng) -> String {
    let (abs_facts, ic_facts, body_facts) = partition_article_facts(world, article);
    let mut s = String::with_capacity(512);
    match recipe {
        CorpusRecipe::Abstract => {
            push_section(world, &mut s, "Abstract.", &abs_facts, rng, 1);
        }
        CorpusRecipe::Aic => {
            push_section(world, &mut s, "Abstract.", &abs_facts, rng, 1);
            push_section(world, &mut s, "Introduction.", &ic_facts, rng, 2);
            push_section(world, &mut s, "Conclusion.", &ic_facts, rng, 1);
        }
        CorpusRecipe::Summary => {
            s.push_str("Summary. ");
            for &fid in abs_facts.iter().chain(ic_facts.iter()).chain(body_facts.iter()) {
                s.push_str(&world.render_fact(&world.facts[fid], rng));
                s.push(' ');
            }
        }
    }
    s.trim_end().to_string()
}

/// Render the complete full text of an article (all facts plus filler),
/// used by the OCR/Nougat ablation.
pub fn render_full_text(world: &World, article: &Article, rng: &mut Rng) -> String {
    let (abs_facts, ic_facts, body_facts) = partition_article_facts(world, article);
    let mut s = String::with_capacity(1024);
    push_section(world, &mut s, "Abstract.", &abs_facts, rng, 1);
    push_section(world, &mut s, "Introduction.", &ic_facts, rng, 3);
    s.push_str("Body. ");
    for &fid in &body_facts {
        s.push_str(&world.render_fact(&world.facts[fid], rng));
        s.push(' ');
        s.push_str(ASTRO_FILLER[rng.index(ASTRO_FILLER.len())]);
        s.push(' ');
    }
    push_section(world, &mut s, "Conclusion.", &ic_facts, rng, 2);
    s.trim_end().to_string()
}

fn push_section(
    world: &World,
    s: &mut String,
    header: &str,
    fact_ids: &[usize],
    rng: &mut Rng,
    filler: usize,
) {
    s.push_str(header);
    s.push(' ');
    for &fid in fact_ids {
        s.push_str(&world.render_fact(&world.facts[fid], rng));
        s.push(' ');
    }
    for _ in 0..filler {
        s.push_str(ASTRO_FILLER[rng.index(ASTRO_FILLER.len())]);
        s.push(' ');
    }
}

/// Build the full CPT corpus for a recipe: one document per article, with
/// the recipe's noise channel applied.
pub fn cpt_corpus(world: &World, recipe: CorpusRecipe, rng: &mut Rng) -> Vec<Document> {
    let noise = recipe.noise();
    world
        .articles
        .iter()
        .map(|article| {
            let clean = render_article(world, article, recipe, rng);
            let text = noisify(&clean, &noise, rng);
            Document {
                kind: match recipe {
                    CorpusRecipe::Abstract => DocumentKind::Abstract,
                    CorpusRecipe::Aic => DocumentKind::Aic,
                    CorpusRecipe::Summary => DocumentKind::Summary,
                },
                article: Some(article.id),
                text,
            }
        })
        .collect()
}

/// One exam-primer document: an MCQ in the canonical evaluation format,
/// with the correct answer, about a fact the reader (native model) can
/// know. `options` are drawn from the relation's value pool.
///
/// The answer line states the winning option's *value* (`Answer: 0.45`)
/// rather than its letter. Real LLMs answer by letter because web-scale
/// pretraining installs the letter-indirection circuit; at CPU scale that
/// circuit does not form (docs/TUNING.md round 5 — the isolated matching
/// micro-task sits at chance while pure attention-copy reaches 100%), so
/// this world's exam convention names the value. The evaluation readout
/// compares the four options' value tokens, preserving the paper's
/// "next-token logit over answer representations" method; the letter
/// readout remains available as an ablation.
pub fn exam_primer_doc(question: &str, options: &[&str; 4], answer_idx: usize) -> String {
    let letters = ['A', 'B', 'C', 'D'];
    let mut s = String::with_capacity(128);
    s.push_str("Question: ");
    s.push_str(question);
    s.push('\n');
    for (i, opt) in options.iter().enumerate() {
        s.push_str(&format!("{}: {}\n", letters[i], opt));
    }
    s.push_str(&format!("Answer: {}", options[answer_idx]));
    s
}

/// Build the general pretraining corpus: everyday facts, consensus
/// astronomy stated textbook-style, and exam-format primer MCQs over both.
///
/// `n_docs` controls total size; the mixture fractions come from
/// [`crate::WorldConfig`] (`general_frac` / `textbook_frac`, remainder
/// exam primer — teaching the evaluation format is what real LLM
/// pretraining gets from web exam corpora).
pub fn general_corpus(world: &World, n_docs: usize, rng: &mut Rng) -> Vec<Document> {
    let consensus: Vec<usize> = world
        .facts_of_tier(FactTier::Consensus)
        .map(|f| f.id)
        .collect();
    let cfg = &world.config;
    let mut out = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        let roll = rng.f64();
        if roll < cfg.general_frac {
            // General prose paragraph: a few everyday facts + filler.
            let mut s = String::new();
            for _ in 0..3 {
                let f = rng.choose(&world.general_facts);
                s.push_str(&render_general_fact(f, rng));
                s.push(' ');
            }
            s.push_str(GENERAL_FILLER[rng.index(GENERAL_FILLER.len())]);
            out.push(Document {
                kind: DocumentKind::General,
                article: None,
                text: s,
            });
        } else if roll < cfg.general_frac + cfg.textbook_frac {
            // Textbook astronomy: consensus facts.
            let mut s = String::from("From the textbook: ");
            for _ in 0..3 {
                let fid = consensus[rng.index(consensus.len())];
                s.push_str(&world.render_fact(&world.facts[fid], rng));
                s.push(' ');
            }
            out.push(Document {
                kind: DocumentKind::Textbook,
                article: None,
                text: s.trim_end().to_string(),
            });
        } else {
            // Exam primer: several MCQs over everyday facts and consensus
            // astro facts, in the canonical evaluation format.
            let mut text = String::new();
            for i in 0..cfg.mcqs_per_primer.max(1) {
                if i > 0 {
                    text.push_str("\n\n");
                }
                let with_context = rng.chance(cfg.primer_context_fraction);
                let block = if rng.chance(0.5) {
                    let f = rng.choose(&world.general_facts);
                    let pool = f.relation.values();
                    let (options, answer) = build_options(pool, f.value, rng);
                    let mcq = exam_primer_doc(&render_general_question(f), &options, answer);
                    if with_context {
                        format!("{}\n{mcq}", render_general_fact(f, rng))
                    } else {
                        mcq
                    }
                } else {
                    let fid = consensus[rng.index(consensus.len())];
                    let f = &world.facts[fid];
                    let entity = world.entity_of(f);
                    let pool = f.relation.values();
                    let (options, answer) = build_options(pool, f.value, rng);
                    let mcq = exam_primer_doc(
                        &crate::facts::render_question(entity, f.relation),
                        &options,
                        answer,
                    );
                    if with_context {
                        format!("{}\n{mcq}", world.render_fact(f, rng))
                    } else {
                        mcq
                    }
                };
                text.push_str(&block);
            }
            out.push(Document {
                kind: DocumentKind::ExamPrimer,
                article: None,
                text,
            });
        }
    }
    out
}

/// Pick 3 distractors from `pool` (≠ `correct`) and place the correct
/// value at a random position. Returns the options and the answer index.
pub fn build_options<'a>(
    pool: &[&'a str],
    correct: &'a str,
    rng: &mut Rng,
) -> ([&'a str; 4], usize) {
    let mut distractors: Vec<&str> = pool.iter().copied().filter(|&v| v != correct).collect();
    rng.shuffle(&mut distractors);
    distractors.truncate(3);
    assert!(distractors.len() == 3, "value pool too small for 4 options");
    let answer = rng.index(4);
    let mut options = [""; 4];
    let mut d = distractors.into_iter();
    for (i, slot) in options.iter_mut().enumerate() {
        *slot = if i == answer {
            correct
        } else {
            d.next().expect("three distractors")
        };
    }
    (options, answer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;

    fn world() -> World {
        World::generate(21, WorldConfig::small())
    }

    #[test]
    fn partition_sends_detail_to_body() {
        let w = world();
        for a in &w.articles {
            let (abs_f, ic, body) = partition_article_facts(&w, a);
            for &fid in abs_f.iter().chain(ic.iter()) {
                assert_ne!(w.facts[fid].tier, FactTier::Detail);
            }
            for &fid in &body {
                assert_eq!(w.facts[fid].tier, FactTier::Detail);
            }
        }
    }

    #[test]
    fn summary_recipe_covers_detail_facts() {
        let w = world();
        let mut rng = Rng::seed_from(0);
        // Find an article with at least one detail fact.
        let art = w
            .articles
            .iter()
            .find(|a| a.fact_ids.iter().any(|&f| w.facts[f].tier == FactTier::Detail))
            .expect("some article has detail facts");
        let detail_fact = art
            .fact_ids
            .iter()
            .map(|&f| &w.facts[f])
            .find(|f| f.tier == FactTier::Detail)
            .unwrap();
        let summary = render_article(&w, art, CorpusRecipe::Summary, &mut rng);
        assert!(summary.contains(&w.entity_of(detail_fact).name));
        let aic = render_article(&w, art, CorpusRecipe::Aic, &mut rng);
        // AIC must NOT contain the detail fact's sentence. The entity name
        // may appear for other facts, so check the (name, value) pairing
        // cannot appear via this fact: count occurrences of the value next
        // to the relation phrase is overkill — instead assert the body-only
        // fact's value string count in summary ≥ in AIC.
        let val = detail_fact.value;
        let in_summary = summary.matches(val).count();
        let in_aic = aic.matches(val).count();
        assert!(in_summary >= 1);
        assert!(in_summary >= in_aic);
    }

    #[test]
    fn abstract_is_shorter_than_aic() {
        let w = world();
        let mut rng = Rng::seed_from(1);
        let a = render_article(&w, &w.articles[0], CorpusRecipe::Abstract, &mut rng);
        let b = render_article(&w, &w.articles[0], CorpusRecipe::Aic, &mut rng);
        assert!(a.len() < b.len());
    }

    #[test]
    fn cpt_corpus_one_doc_per_article() {
        let w = world();
        let mut rng = Rng::seed_from(2);
        for recipe in [CorpusRecipe::Abstract, CorpusRecipe::Aic, CorpusRecipe::Summary] {
            let docs = cpt_corpus(&w, recipe, &mut rng);
            assert_eq!(docs.len(), w.articles.len());
        }
    }

    #[test]
    fn summary_docs_are_clean_of_latex() {
        let w = world();
        let mut rng = Rng::seed_from(3);
        let docs = cpt_corpus(&w, CorpusRecipe::Summary, &mut rng);
        for d in &docs {
            assert!(!d.text.contains('\\'), "summary has LaTeX noise: {}", d.text);
        }
    }

    #[test]
    fn general_corpus_has_all_kinds() {
        let w = world();
        let mut rng = Rng::seed_from(4);
        let docs = general_corpus(&w, 300, &mut rng);
        assert_eq!(docs.len(), 300);
        for kind in [DocumentKind::General, DocumentKind::Textbook, DocumentKind::ExamPrimer] {
            assert!(docs.iter().any(|d| d.kind == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn exam_primer_format_matches_eval_format() {
        let options = ["0.1", "0.2", "0.3", "0.4"];
        let doc = exam_primer_doc("What is the redshift of NGC-1?", &options, 2);
        assert!(doc.starts_with("Question: What is the redshift of NGC-1?\n"));
        assert!(doc.contains("\nA: 0.1\n"));
        assert!(doc.ends_with("Answer: 0.3"), "{doc}");
    }

    #[test]
    fn primer_docs_contain_configured_mcq_count() {
        let mut cfg = WorldConfig::small();
        cfg.mcqs_per_primer = 4;
        cfg.primer_context_fraction = 0.0;
        let w = World::generate(77, cfg);
        let mut rng = Rng::seed_from(7);
        let docs = general_corpus(&w, 200, &mut rng);
        let primer = docs
            .iter()
            .find(|d| d.kind == DocumentKind::ExamPrimer)
            .expect("primer docs exist");
        assert_eq!(primer.text.matches("Question: ").count(), 4);
        assert_eq!(primer.text.matches("Answer: ").count(), 4);
    }

    #[test]
    fn primer_context_fraction_controls_fact_lines() {
        let mk = |frac: f64| {
            let mut cfg = WorldConfig::small();
            cfg.mcqs_per_primer = 1;
            cfg.primer_context_fraction = frac;
            let w = World::generate(78, cfg);
            let mut rng = Rng::seed_from(8);
            let docs = general_corpus(&w, 400, &mut rng);
            docs.into_iter()
                .filter(|d| d.kind == DocumentKind::ExamPrimer)
                .collect::<Vec<_>>()
        };
        // frac 0: every primer starts at the question.
        for d in mk(0.0) {
            assert!(d.text.starts_with("Question: "), "{}", d.text);
        }
        // frac 1: every primer starts with a context sentence.
        for d in mk(1.0) {
            assert!(!d.text.starts_with("Question: "), "{}", d.text);
            assert!(d.text.contains("\nQuestion: "), "{}", d.text);
        }
    }

    #[test]
    fn primer_context_line_supports_the_question() {
        // With context on, the fact value must appear both in the context
        // line and among the options.
        let mut cfg = WorldConfig::small();
        cfg.mcqs_per_primer = 1;
        cfg.primer_context_fraction = 1.0;
        let w = World::generate(79, cfg);
        let mut rng = Rng::seed_from(9);
        let docs = general_corpus(&w, 100, &mut rng);
        for d in docs.iter().filter(|d| d.kind == DocumentKind::ExamPrimer) {
            let (context, _) = d.text.split_once("\nQuestion: ").expect("context + question");
            let answer_value = d
                .text
                .rsplit_once("Answer: ")
                .map(|(_, v)| v)
                .expect("answer line");
            assert!(
                context.contains(answer_value),
                "context {context:?} does not contain answer value {answer_value:?}"
            );
        }
    }

    #[test]
    fn build_options_contains_answer_and_three_distractors() {
        let pool = ["a", "b", "c", "d", "e"];
        let mut rng = Rng::seed_from(5);
        for _ in 0..100 {
            let (opts, idx) = build_options(&pool, "c", &mut rng);
            assert_eq!(opts[idx], "c");
            let mut uniq = opts.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 4, "options must be distinct");
        }
    }

    #[test]
    fn build_options_answer_position_varies() {
        let pool = ["a", "b", "c", "d", "e"];
        let mut rng = Rng::seed_from(6);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let (_, idx) = build_options(&pool, "a", &mut rng);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "answer should land in every slot");
    }
}
