//! The everyday-knowledge world behind the general pretraining corpus and
//! the general instruction datasets (the LIMA / Open Orca / UltraChat
//! stand-ins).
//!
//! Structurally a twin of the astro fact graph, but over mundane entities
//! (countries, materials, dishes, ...). Native models are pretrained on
//! text rendered from these facts plus the consensus astronomy tier; CPT
//! on astro-only text then *displaces* this distribution — the mechanism
//! behind the paper's catastrophic-forgetting observation.

use astro_prng::Rng;

/// Everyday attribute kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GeneralRelation {
    /// Capital city of a country.
    Capital,
    /// Currency of a country.
    Currency,
    /// Primary colour association of an item.
    Color,
    /// Principal material of an object.
    Material,
    /// Continent of a country.
    Continent,
    /// Flavour profile of a dish.
    Flavor,
}

/// All general relations in declaration order.
pub const GENERAL_RELATIONS: [GeneralRelation; 6] = [
    GeneralRelation::Capital,
    GeneralRelation::Currency,
    GeneralRelation::Color,
    GeneralRelation::Material,
    GeneralRelation::Continent,
    GeneralRelation::Flavor,
];

impl GeneralRelation {
    /// Noun phrase for questions/sentences.
    pub fn phrase(self) -> &'static str {
        match self {
            GeneralRelation::Capital => "capital",
            GeneralRelation::Currency => "currency",
            GeneralRelation::Color => "typical color",
            GeneralRelation::Material => "main material",
            GeneralRelation::Continent => "continent",
            GeneralRelation::Flavor => "flavor profile",
        }
    }

    /// Closed value pool.
    pub fn values(self) -> &'static [&'static str] {
        match self {
            GeneralRelation::Capital => &[
                "Avala", "Brinport", "Corvale", "Dunmar", "Elstrand", "Farholm", "Gellica",
                "Hartvale",
            ],
            GeneralRelation::Currency => &[
                "crown", "mark", "peso", "dinar", "florin", "talent",
            ],
            GeneralRelation::Color => &[
                "red", "blue", "green", "yellow", "purple", "orange", "silver",
            ],
            GeneralRelation::Material => &[
                "oak", "steel", "glass", "ceramic", "wool", "granite",
            ],
            GeneralRelation::Continent => &[
                "Vestria", "Ostara", "Meridia", "Borealia", "Zephyria",
            ],
            GeneralRelation::Flavor => &[
                "sweet", "savory", "bitter", "smoky", "tangy", "spicy",
            ],
        }
    }

    /// Name stem used when generating entity names for this relation's
    /// typical subject.
    fn subject_stem(self) -> &'static str {
        match self {
            GeneralRelation::Capital | GeneralRelation::Currency | GeneralRelation::Continent => {
                "Land"
            }
            GeneralRelation::Color => "Stone",
            GeneralRelation::Material => "Tool",
            GeneralRelation::Flavor => "Dish",
        }
    }
}

/// One everyday fact: a named subject with a relation and value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralFact {
    /// Index into `World::general_facts`.
    pub id: usize,
    /// Synthetic subject name, e.g. `Land-47`.
    pub subject: String,
    /// The attribute.
    pub relation: GeneralRelation,
    /// The value (an entry of `relation.values()`).
    pub value: &'static str,
}

/// Generate `n_subjects` everyday subjects, each with one fact per
/// applicable relation bucket (one relation sampled per subject, three
/// facts for country-like subjects).
pub fn generate_general_facts(root: &Rng, n_subjects: usize) -> Vec<GeneralFact> {
    let mut rng = root.substream("general-facts");
    let mut out = Vec::with_capacity(n_subjects * 2);
    for i in 0..n_subjects {
        let relation = GENERAL_RELATIONS[rng.index(GENERAL_RELATIONS.len())];
        let subject = format!("{}-{}", relation.subject_stem(), i);
        let value = *rng.choose(relation.values());
        out.push(GeneralFact {
            id: out.len(),
            subject: subject.clone(),
            relation,
            value,
        });
        // Country-like subjects get the full attribute set, mirroring how
        // real general corpora repeat facts about prominent entities.
        if relation == GeneralRelation::Capital {
            for extra in [GeneralRelation::Currency, GeneralRelation::Continent] {
                let value = *rng.choose(extra.values());
                out.push(GeneralFact {
                    id: out.len(),
                    subject: subject.clone(),
                    relation: extra,
                    value,
                });
            }
        }
    }
    out
}

/// Render an everyday fact as a sentence.
pub fn render_general_fact(fact: &GeneralFact, rng: &mut Rng) -> String {
    let rel = fact.relation.phrase();
    let s = &fact.subject;
    let v = fact.value;
    match rng.index(3) {
        0 => format!("The {rel} of {s} is {v}."),
        1 => format!("{s} has a {rel} of {v}."),
        _ => format!("Everyone knows the {rel} of {s} is {v}."),
    }
}

/// Canonical question form for an everyday fact.
pub fn render_general_question(fact: &GeneralFact) -> String {
    format!("What is the {} of {}?", fact.relation.phrase(), fact.subject)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate_general_facts(&Rng::seed_from(1), 50);
        let b = generate_general_facts(&Rng::seed_from(1), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn values_in_pools() {
        let fs = generate_general_facts(&Rng::seed_from(2), 80);
        for f in &fs {
            assert!(f.relation.values().contains(&f.value));
        }
    }

    #[test]
    fn country_subjects_get_three_facts() {
        let fs = generate_general_facts(&Rng::seed_from(3), 200);
        let capitals: Vec<&GeneralFact> = fs
            .iter()
            .filter(|f| f.relation == GeneralRelation::Capital)
            .collect();
        assert!(!capitals.is_empty());
        for cap in capitals {
            let n = fs.iter().filter(|f| f.subject == cap.subject).count();
            assert_eq!(n, 3, "{} should have 3 facts", cap.subject);
        }
    }

    #[test]
    fn pools_have_four_options_for_mcq_primer() {
        for rel in GENERAL_RELATIONS {
            assert!(rel.values().len() >= 4);
        }
    }

    #[test]
    fn render_contains_subject_and_value() {
        let fs = generate_general_facts(&Rng::seed_from(4), 10);
        let mut rng = Rng::seed_from(0);
        for f in &fs {
            let s = render_general_fact(f, &mut rng);
            assert!(s.contains(&f.subject) && s.contains(f.value), "{s}");
        }
    }
}
