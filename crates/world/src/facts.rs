//! The astro fact graph: relations, value pools, tiers, and sentence
//! rendering.
//!
//! A fact is a triple *(entity, relation, value)* with a tier that
//! controls where in the text universe it surfaces. Relations carry small
//! categorical value pools whose entries share a common format — this is
//! what lets the MCQ generator build distractor options "of equal length,
//! preventing easy elimination based on superficial characteristics"
//! (paper §IV).

use crate::entities::Entity;
use astro_prng::Rng;

/// An attribute an astronomical object can have.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Cosmological redshift.
    Redshift,
    /// Characteristic mass.
    Mass,
    /// Dominant emission band.
    Emission,
    /// Morphological type.
    Morphology,
    /// Host constellation.
    Constellation,
    /// Rotation/pulse period.
    Period,
    /// Metallicity.
    Metallicity,
    /// Distance from the Sun.
    Distance,
    /// Effective temperature.
    Temperature,
    /// Age.
    Age,
    /// Instrument credited with the discovery.
    Instrument,
}

/// All relations in declaration order.
pub const RELATIONS: [Relation; 11] = [
    Relation::Redshift,
    Relation::Mass,
    Relation::Emission,
    Relation::Morphology,
    Relation::Constellation,
    Relation::Period,
    Relation::Metallicity,
    Relation::Distance,
    Relation::Temperature,
    Relation::Age,
    Relation::Instrument,
];

impl Relation {
    /// The noun phrase used in questions and fact sentences.
    pub fn phrase(self) -> &'static str {
        match self {
            Relation::Redshift => "redshift",
            Relation::Mass => "characteristic mass",
            Relation::Emission => "dominant emission band",
            Relation::Morphology => "morphology",
            Relation::Constellation => "host constellation",
            Relation::Period => "rotation period",
            Relation::Metallicity => "metallicity",
            Relation::Distance => "distance",
            Relation::Temperature => "effective temperature",
            Relation::Age => "age",
            Relation::Instrument => "discovery instrument",
        }
    }

    /// The closed value pool for this relation. All entries of a pool
    /// share a format, so MCQ options look homogeneous.
    pub fn values(self) -> &'static [&'static str] {
        match self {
            Relation::Redshift => &[
                "0.05", "0.12", "0.27", "0.45", "0.68", "0.91", "1.2", "1.7", "2.3", "3.1",
            ],
            Relation::Mass => &[
                "0.3 Msun", "0.8 Msun", "1.4 Msun", "2.5 Msun", "8 Msun", "20 Msun", "60 Msun",
            ],
            Relation::Emission => &[
                "radio", "X-ray", "optical", "infrared", "ultraviolet", "gamma-ray",
            ],
            Relation::Morphology => &[
                "spiral", "elliptical", "irregular", "lenticular", "barred", "ring",
            ],
            Relation::Constellation => &[
                "Orion", "Cygnus", "Lyra", "Vela", "Draco", "Carina", "Fornax", "Pavo",
            ],
            Relation::Period => &["1.3 ms", "4.7 ms", "33 ms", "0.7 s", "1.4 s", "5.2 s"],
            Relation::Metallicity => &[
                "-2.1 dex", "-1.4 dex", "-0.7 dex", "0.0 dex", "+0.3 dex",
            ],
            Relation::Distance => &[
                "12 pc", "140 pc", "2.1 kpc", "16 kpc", "770 kpc", "54 Mpc",
            ],
            Relation::Temperature => &["3200 K", "5800 K", "9900 K", "15000 K", "31000 K"],
            Relation::Age => &["2 Myr", "45 Myr", "600 Myr", "3 Gyr", "9 Gyr", "13 Gyr"],
            Relation::Instrument => &[
                "Hubble", "Chandra", "VLA", "ALMA", "Gaia", "JWST", "Arecibo", "Keck",
            ],
        }
    }
}

/// Where in the text universe a fact surfaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FactTier {
    /// Textbook knowledge: present in the general pretraining corpus *and*
    /// in astro-ph documents. Native models can know these.
    Consensus,
    /// Research results: present only in astro-ph abstracts, intros and
    /// conclusions (all CPT recipes see them).
    Frontier,
    /// Full-text-only details: only the Summary recipe (which summarises
    /// whole papers) surfaces them.
    Detail,
}

/// One *(entity, relation, value)* fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fact {
    /// Index into `World::facts`.
    pub id: usize,
    /// Index into `World::entities`.
    pub entity: usize,
    /// The attribute.
    pub relation: Relation,
    /// The attribute's value (an entry of `relation.values()`).
    pub value: &'static str,
    /// Visibility tier.
    pub tier: FactTier,
}

/// How many relations each entity receives.
const RELATIONS_PER_ENTITY: usize = 5;

/// Generate the fact graph: each entity gets `RELATIONS_PER_ENTITY`
/// distinct relations with uniformly sampled values; tiers are assigned by
/// the configured fractions.
pub fn generate_facts(
    root: &Rng,
    entities: &[Entity],
    consensus_fraction: f64,
    detail_fraction: f64,
) -> Vec<Fact> {
    let mut rng = root.substream("facts");
    let mut out = Vec::with_capacity(entities.len() * RELATIONS_PER_ENTITY);
    for entity in entities {
        let picks = rng.sample_indices(RELATIONS.len(), RELATIONS_PER_ENTITY);
        for rel_idx in picks {
            let relation = RELATIONS[rel_idx];
            let value = *rng.choose(relation.values());
            let roll = rng.f64();
            let tier = if roll < consensus_fraction {
                FactTier::Consensus
            } else if roll < consensus_fraction + detail_fraction {
                FactTier::Detail
            } else {
                FactTier::Frontier
            };
            let id = out.len();
            out.push(Fact {
                id,
                entity: entity.id,
                relation,
                value,
                tier,
            });
        }
    }
    out
}

/// Number of distinct declarative templates used by [`render_fact`].
pub const FACT_TEMPLATES: usize = 4;

/// Render a fact as a declarative sentence using one of several phrasing
/// templates (template choice via `rng` gives the corpus surface variety).
pub fn render_fact(entity: &Entity, fact: &Fact, rng: &mut Rng) -> String {
    let rel = fact.relation.phrase();
    let name = &entity.name;
    let val = fact.value;
    match rng.index(FACT_TEMPLATES) {
        0 => format!("The {rel} of {name} is {val}."),
        1 => format!("{name} has a {rel} of {val}."),
        2 => format!("Measurements indicate that the {rel} of {name} is {val}."),
        _ => format!("The {} {name} shows a {rel} of {val}.", entity.class.noun()),
    }
}

/// Render the canonical question form for a fact (used both by the MCQ
/// generator and by the exam-format primer in the general corpus, so the
/// surface form the models are evaluated on is the surface form they can
/// learn).
pub fn render_question(entity: &Entity, relation: Relation) -> String {
    format!("What is the {} of {}?", relation.phrase(), entity.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::generate_entities;

    fn setup() -> (Vec<Entity>, Vec<Fact>) {
        let root = Rng::seed_from(11);
        let es = generate_entities(&root, 50);
        let fs = generate_facts(&root, &es, 0.5, 0.2);
        (es, fs)
    }

    #[test]
    fn each_entity_gets_distinct_relations() {
        let (_, fs) = setup();
        for eid in 0..50 {
            let rels: Vec<Relation> = fs
                .iter()
                .filter(|f| f.entity == eid)
                .map(|f| f.relation)
                .collect();
            assert_eq!(rels.len(), RELATIONS_PER_ENTITY);
            let mut d = rels.clone();
            d.sort_by_key(|r| r.phrase());
            d.dedup();
            assert_eq!(d.len(), RELATIONS_PER_ENTITY, "duplicate relation for entity {eid}");
        }
    }

    #[test]
    fn values_come_from_relation_pool() {
        let (_, fs) = setup();
        for f in &fs {
            assert!(f.relation.values().contains(&f.value));
        }
    }

    #[test]
    fn fact_ids_sequential() {
        let (_, fs) = setup();
        for (i, f) in fs.iter().enumerate() {
            assert_eq!(f.id, i);
        }
    }

    #[test]
    fn value_pools_have_at_least_four_options() {
        // The MCQ generator needs 4 options per question.
        for rel in RELATIONS {
            assert!(rel.values().len() >= 4, "{rel:?} pool too small");
        }
    }

    #[test]
    fn value_pools_have_no_duplicates() {
        for rel in RELATIONS {
            let mut vals = rel.values().to_vec();
            vals.sort_unstable();
            vals.dedup();
            assert_eq!(vals.len(), rel.values().len(), "{rel:?} has duplicate values");
        }
    }

    #[test]
    fn render_question_is_stable() {
        let (es, _) = setup();
        let q = render_question(&es[0], Relation::Redshift);
        assert_eq!(q, format!("What is the redshift of {}?", es[0].name));
    }

    #[test]
    fn all_templates_reachable() {
        let (es, fs) = setup();
        let mut seen = std::collections::HashSet::new();
        let mut rng = Rng::seed_from(0);
        for _ in 0..200 {
            seen.insert(render_fact(&es[fs[0].entity], &fs[0], &mut rng));
        }
        assert_eq!(seen.len(), FACT_TEMPLATES);
    }
}
