//! Instruction/conversation datasets for SFT.
//!
//! The paper's SFT set combines 10,356 astronomy conversations generated
//! from arXiv abstracts by GPT-4 with LIMA, 10k Open Orca samples and 10k
//! UltraChat samples — only about a third astronomy-focused, which the
//! paper identifies as the root cause of the instruct models'
//! underperformance. This module generates the synthetic equivalent with
//! the same mixture structure and exposes the knobs the paper's analysis
//! turns on (astronomy fraction, dataset size, fraction of examples that
//! demonstrate the JSON MCQ answer format).

use crate::corpus::build_options;
use crate::facts::{render_question, FactTier};
use crate::general::render_general_question;
use crate::World;
use astro_prng::Rng;

/// Which sub-dataset a conversation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstructKind {
    /// Astronomy Q&A generated from article facts (free-form answers).
    AstroQa,
    /// Astronomy MCQ demonstrations with JSON answers (the slice that
    /// teaches the full-instruct output format).
    AstroMcqJson,
    /// LIMA stand-in: general knowledge, verbose answers.
    LimaLike,
    /// Open Orca stand-in: instruction + short factual completion.
    OrcaLike,
    /// UltraChat stand-in: multi-turn small talk over general facts.
    UltraChatLike,
}

/// One conversation turn.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Turn {
    /// `"system"`, `"user"` or `"assistant"`.
    pub role: &'static str,
    /// Turn content.
    pub text: String,
}

/// One SFT conversation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conversation {
    /// Which sub-dataset generated it.
    pub kind: InstructKind,
    /// The turns in order.
    pub turns: Vec<Turn>,
}

/// Mixture configuration for the SFT dataset.
#[derive(Clone, Debug)]
pub struct SftMixtureConfig {
    /// Number of astronomy conversations (paper: 10,356).
    pub n_astro: usize,
    /// Number of LIMA-like conversations (paper: ~1k).
    pub n_lima: usize,
    /// Number of Orca-like conversations (paper: 10k).
    pub n_orca: usize,
    /// Number of UltraChat-like conversations (paper: 10k).
    pub n_ultrachat: usize,
    /// Fraction of astro conversations rendered as MCQ-with-JSON
    /// demonstrations (the rest are free-form Q&A).
    pub astro_json_fraction: f64,
}

impl SftMixtureConfig {
    /// The paper's mixture, scaled by `scale` (1.0 reproduces the original
    /// 31k-conversation proportions; tests use small scales).
    pub fn paper_mixture(scale: f64) -> Self {
        let s = |n: f64| ((n * scale).round() as usize).max(1);
        SftMixtureConfig {
            n_astro: s(10_356.0),
            n_lima: s(1_000.0),
            n_orca: s(10_000.0),
            n_ultrachat: s(10_000.0),
            astro_json_fraction: 0.35,
        }
    }

    /// Total conversations.
    pub fn total(&self) -> usize {
        self.n_astro + self.n_lima + self.n_orca + self.n_ultrachat
    }

    /// Astronomy fraction of the mixture.
    pub fn astro_fraction(&self) -> f64 {
        self.n_astro as f64 / self.total() as f64
    }
}

/// The system prompt used by astro MCQ demonstrations and by the
/// full-instruct evaluation (paper Appendix B, condensed to the scale of
/// our models).
pub const EXPERT_SYSTEM_PROMPT: &str = "You are an expert in general astrophysics.";

/// Render the full-instruct MCQ prompt (paper Appendix B). `verbose`
/// includes the instruction boilerplate; the compact form keeps only the
/// structural skeleton that fits small-model context windows.
pub fn full_instruct_prompt(question: &str, options: &[String; 4], verbose: bool) -> String {
    let mut s = String::with_capacity(256);
    if verbose {
        s.push_str(
            "Your task is to answer and explain the following multiple-choice \
             question on astrophysics.\n",
        );
    }
    s.push_str("Question: ");
    s.push_str(question);
    s.push('\n');
    for (letter, opt) in ['A', 'B', 'C', 'D'].iter().zip(options.iter()) {
        s.push_str(&format!("{letter}: {opt}\n"));
    }
    if verbose {
        s.push_str(
            "Provide your response in valid JSON format only, with fields \
             ANSWER and EXPLANATION. Give only one answer, either A, B, C or D.\n",
        );
    }
    s.push_str("Output format: {\"ANSWER\": \"X\", \"EXPLANATION\": \"...\"}");
    s
}

/// Render the canonical JSON answer body with a letter answer (the
/// paper's literal format; used by the letter-readout ablation).
pub fn json_answer(letter: char, explanation: &str) -> String {
    format!("{{\"ANSWER\": \"{letter}\", \"EXPLANATION\": \"{explanation}\"}}")
}

/// Render the JSON answer body with free answer text (this world's
/// convention: the winning option's value).
pub fn json_answer_text(answer: &str, explanation: &str) -> String {
    format!("{{\"ANSWER\": \"{answer}\", \"EXPLANATION\": \"{explanation}\"}}")
}

/// Generate the SFT dataset for a world.
pub fn sft_dataset(world: &World, config: &SftMixtureConfig, rng: &mut Rng) -> Vec<Conversation> {
    let mut out = Vec::with_capacity(config.total());
    // Astro facts eligible for Q&A: abstracts expose consensus + frontier.
    let qa_facts: Vec<usize> = world
        .facts
        .iter()
        .filter(|f| f.tier != FactTier::Detail)
        .map(|f| f.id)
        .collect();
    for _ in 0..config.n_astro {
        let fid = qa_facts[rng.index(qa_facts.len())];
        let fact = &world.facts[fid];
        let entity = world.entity_of(fact);
        let question = render_question(entity, fact.relation);
        if rng.chance(config.astro_json_fraction) {
            // MCQ demonstration with JSON answer. The ANSWER field states
            // the winning option's value (this world's exam convention —
            // see `exam_primer_doc`); the extraction cascade matches it
            // against the options.
            let (options, answer_idx) = build_options(fact.relation.values(), fact.value, rng);
            let options: [String; 4] = options.map(|o| o.to_string());
            let explanation = format!(
                "The {} of {} is {}.",
                fact.relation.phrase(),
                entity.name,
                fact.value
            );
            out.push(Conversation {
                kind: InstructKind::AstroMcqJson,
                turns: vec![
                    Turn {
                        role: "system",
                        text: EXPERT_SYSTEM_PROMPT.to_string(),
                    },
                    Turn {
                        role: "user",
                        text: full_instruct_prompt(&question, &options, false),
                    },
                    Turn {
                        role: "assistant",
                        text: json_answer_text(&options[answer_idx], &explanation),
                    },
                ],
            });
        } else {
            // Free-form Q&A from the abstract.
            out.push(Conversation {
                kind: InstructKind::AstroQa,
                turns: vec![
                    Turn {
                        role: "user",
                        text: question,
                    },
                    Turn {
                        role: "assistant",
                        text: format!(
                            "The {} of {} is {}.",
                            fact.relation.phrase(),
                            entity.name,
                            fact.value
                        ),
                    },
                ],
            });
        }
    }
    for _ in 0..config.n_lima {
        let f = rng.choose(&world.general_facts);
        out.push(Conversation {
            kind: InstructKind::LimaLike,
            turns: vec![
                Turn {
                    role: "user",
                    text: render_general_question(f),
                },
                Turn {
                    role: "assistant",
                    text: format!(
                        "That is a good question. The {} of {} is {}. People ask this often.",
                        f.relation.phrase(),
                        f.subject,
                        f.value
                    ),
                },
            ],
        });
    }
    for _ in 0..config.n_orca {
        let f = rng.choose(&world.general_facts);
        out.push(Conversation {
            kind: InstructKind::OrcaLike,
            turns: vec![
                Turn {
                    role: "user",
                    text: format!("Complete the statement. The {} of {} is", f.relation.phrase(), f.subject),
                },
                Turn {
                    role: "assistant",
                    text: format!("{}.", f.value),
                },
            ],
        });
    }
    for _ in 0..config.n_ultrachat {
        let f1 = rng.choose(&world.general_facts);
        let f2 = rng.choose(&world.general_facts);
        out.push(Conversation {
            kind: InstructKind::UltraChatLike,
            turns: vec![
                Turn {
                    role: "user",
                    text: format!("Tell me about {}.", f1.subject),
                },
                Turn {
                    role: "assistant",
                    text: format!("The {} of {} is {}.", f1.relation.phrase(), f1.subject, f1.value),
                },
                Turn {
                    role: "user",
                    text: format!("And {}?", f2.subject),
                },
                Turn {
                    role: "assistant",
                    text: format!("The {} of {} is {}.", f2.relation.phrase(), f2.subject, f2.value),
                },
            ],
        });
    }
    rng.shuffle(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;

    fn world() -> World {
        World::generate(31, WorldConfig::small())
    }

    fn small_mix() -> SftMixtureConfig {
        SftMixtureConfig {
            n_astro: 30,
            n_lima: 5,
            n_orca: 20,
            n_ultrachat: 20,
            astro_json_fraction: 0.4,
        }
    }

    #[test]
    fn paper_mixture_is_one_third_astro() {
        let m = SftMixtureConfig::paper_mixture(1.0);
        assert_eq!(m.total(), 31_356);
        assert!((m.astro_fraction() - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn dataset_has_requested_size_and_kinds() {
        let w = world();
        let mut rng = Rng::seed_from(1);
        let convs = sft_dataset(&w, &small_mix(), &mut rng);
        assert_eq!(convs.len(), 75);
        for kind in [
            InstructKind::AstroQa,
            InstructKind::AstroMcqJson,
            InstructKind::LimaLike,
            InstructKind::OrcaLike,
            InstructKind::UltraChatLike,
        ] {
            assert!(convs.iter().any(|c| c.kind == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn conversations_alternate_user_assistant() {
        let w = world();
        let mut rng = Rng::seed_from(2);
        let convs = sft_dataset(&w, &small_mix(), &mut rng);
        for c in &convs {
            let non_system: Vec<&Turn> =
                c.turns.iter().filter(|t| t.role != "system").collect();
            assert!(!non_system.is_empty());
            for (i, t) in non_system.iter().enumerate() {
                let want = if i % 2 == 0 { "user" } else { "assistant" };
                assert_eq!(t.role, want);
            }
            assert_eq!(non_system.last().unwrap().role, "assistant");
        }
    }

    #[test]
    fn json_demos_answer_with_an_option_value() {
        let w = world();
        let mut rng = Rng::seed_from(3);
        let convs = sft_dataset(&w, &small_mix(), &mut rng);
        let mut seen = 0;
        for c in convs.iter().filter(|c| c.kind == InstructKind::AstroMcqJson) {
            seen += 1;
            let answer = &c.turns.last().unwrap().text;
            assert!(answer.starts_with("{\"ANSWER\": \""), "{answer}");
            assert!(answer.contains("\"EXPLANATION\""), "{answer}");
            // The ANSWER value must appear among the options listed in the
            // user prompt.
            let user = &c.turns[1].text;
            let value = answer
                .strip_prefix("{\"ANSWER\": \"")
                .and_then(|s| s.split('"').next())
                .expect("answer value");
            assert!(user.contains(value), "answer {value:?} not among options:\n{user}");
        }
        assert!(seen > 0);
    }

    #[test]
    fn json_fraction_zero_produces_no_demos() {
        let w = world();
        let mut rng = Rng::seed_from(4);
        let mut mix = small_mix();
        mix.astro_json_fraction = 0.0;
        let convs = sft_dataset(&w, &mix, &mut rng);
        assert!(convs.iter().all(|c| c.kind != InstructKind::AstroMcqJson));
    }

    #[test]
    fn full_instruct_prompt_verbose_contains_boilerplate() {
        let opts = ["a".to_string(), "b".to_string(), "c".to_string(), "d".to_string()];
        let v = full_instruct_prompt("Q?", &opts, true);
        let c = full_instruct_prompt("Q?", &opts, false);
        assert!(v.len() > c.len());
        assert!(v.contains("valid JSON"));
        assert!(c.contains("Question: Q?"));
        assert!(c.contains("A: a\n"));
        assert!(c.contains("Output format"));
    }

    #[test]
    fn json_answer_shape() {
        let j = json_answer('B', "because");
        assert_eq!(j, "{\"ANSWER\": \"B\", \"EXPLANATION\": \"because\"}");
    }
}
