//! Astronomical entities: object classes and deterministic name
//! generation.
//!
//! Names follow real catalogue conventions (NGC, PSR, HD, ...) so the
//! corpus "reads like" astronomy, but every name is synthetic. Names are
//! kept short and numeric-suffixed so a small BPE vocabulary tokenises
//! them into a handful of stable tokens.

use astro_prng::Rng;

/// The class of an astronomical object, which determines its catalogue
/// prefix and which relations apply to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EntityClass {
    /// Spiral/elliptical galaxies (NGC catalogue).
    Galaxy,
    /// Main-sequence or evolved stars (HD catalogue).
    Star,
    /// Pulsars (PSR catalogue).
    Pulsar,
    /// Supernovae (SN designations).
    Supernova,
    /// Quasars / AGN (QSO designations).
    Quasar,
    /// Star-forming nebulae (LBN catalogue).
    Nebula,
    /// Galaxy clusters (Abell catalogue).
    Cluster,
    /// Exoplanets (Kepler-style designations).
    Exoplanet,
}

/// All entity classes, in declaration order.
pub const CLASSES: [EntityClass; 8] = [
    EntityClass::Galaxy,
    EntityClass::Star,
    EntityClass::Pulsar,
    EntityClass::Supernova,
    EntityClass::Quasar,
    EntityClass::Nebula,
    EntityClass::Cluster,
    EntityClass::Exoplanet,
];

impl EntityClass {
    /// Catalogue prefix used in generated names.
    pub fn prefix(self) -> &'static str {
        match self {
            EntityClass::Galaxy => "NGC",
            EntityClass::Star => "HD",
            EntityClass::Pulsar => "PSR",
            EntityClass::Supernova => "SN",
            EntityClass::Quasar => "QSO",
            EntityClass::Nebula => "LBN",
            EntityClass::Cluster => "Abell",
            EntityClass::Exoplanet => "Kepler",
        }
    }

    /// Human-readable class noun used in generated prose.
    pub fn noun(self) -> &'static str {
        match self {
            EntityClass::Galaxy => "galaxy",
            EntityClass::Star => "star",
            EntityClass::Pulsar => "pulsar",
            EntityClass::Supernova => "supernova",
            EntityClass::Quasar => "quasar",
            EntityClass::Nebula => "nebula",
            EntityClass::Cluster => "cluster",
            EntityClass::Exoplanet => "exoplanet",
        }
    }
}

/// One astronomical object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entity {
    /// Index into `World::entities`.
    pub id: usize,
    /// Catalogue-style designation, e.g. `NGC-382`.
    pub name: String,
    /// Object class.
    pub class: EntityClass,
}

/// Deterministically generate `n` entities with unique names, cycling
/// through classes so every class is represented.
pub fn generate_entities(root: &Rng, n: usize) -> Vec<Entity> {
    let mut rng = root.substream("entities");
    let mut used = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    for id in 0..n {
        let class = CLASSES[id % CLASSES.len()];
        // Catalogue numbers: 3–4 digits, unique per name.
        let name = loop {
            let num = rng.range_u64(100, 9999);
            let candidate = format!("{}-{}", class.prefix(), num);
            if used.insert(candidate.clone()) {
                break candidate;
            }
        };
        out.push(Entity { id, name, class });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let root = Rng::seed_from(1);
        let es = generate_entities(&root, 500);
        let mut names: Vec<&str> = es.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 500);
    }

    #[test]
    fn all_classes_present() {
        let root = Rng::seed_from(2);
        let es = generate_entities(&root, 16);
        for class in CLASSES {
            assert!(es.iter().any(|e| e.class == class), "{class:?} missing");
        }
    }

    #[test]
    fn names_use_class_prefix() {
        let root = Rng::seed_from(3);
        let es = generate_entities(&root, 40);
        for e in &es {
            assert!(
                e.name.starts_with(e.class.prefix()),
                "{} does not match {:?}",
                e.name,
                e.class
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_entities(&Rng::seed_from(9), 30);
        let b = generate_entities(&Rng::seed_from(9), 30);
        assert_eq!(a, b);
    }

    #[test]
    fn ids_are_sequential() {
        let es = generate_entities(&Rng::seed_from(4), 10);
        for (i, e) in es.iter().enumerate() {
            assert_eq!(e.id, i);
        }
    }
}
