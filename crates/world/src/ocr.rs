//! The LaTeX-artefact / OCR noise channel.
//!
//! The original AstroLLaMA AIC dataset came from algorithmically cleaned
//! arXiv LaTeX sources and retained artefacts; the paper's follow-up ran
//! Nougat OCR over PDFs to obtain cleaner text. We model both ends:
//! [`noisify`] injects LaTeX-ish artefacts and character corruptions at
//! configurable rates, and [`clean_ocr`] is the Nougat stand-in that strips
//! most (not all) of them.

use astro_prng::Rng;

/// Noise-injection rates, all per-word probabilities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseConfig {
    /// Probability of inserting a LaTeX artefact token after a word
    /// (`\cite{...}`, `$\sim$`, `\ref{fig}` ...).
    pub latex_rate: f64,
    /// Probability of corrupting a word (dropping/garbling characters —
    /// the OCR failure mode).
    pub corruption_rate: f64,
    /// Probability of a spurious hyphen-linebreak inside a word.
    pub hyphenation_rate: f64,
}

impl NoiseConfig {
    /// No noise at all (LLM-summary quality).
    pub fn clean() -> Self {
        NoiseConfig {
            latex_rate: 0.0,
            corruption_rate: 0.0,
            hyphenation_rate: 0.0,
        }
    }

    /// The LaTeX-derived AIC data quality of refs [27]/[28].
    pub fn latex_artifacts() -> Self {
        NoiseConfig {
            latex_rate: 0.08,
            corruption_rate: 0.02,
            hyphenation_rate: 0.02,
        }
    }

    /// Heavier raw-OCR noise, for the data-quality ablation.
    pub fn heavy_ocr() -> Self {
        NoiseConfig {
            latex_rate: 0.12,
            corruption_rate: 0.08,
            hyphenation_rate: 0.05,
        }
    }
}

/// Artefacts injected by the LaTeX channel. Kept as fixed strings so the
/// cleaner can recognise them.
const LATEX_ARTIFACTS: [&str; 6] = [
    "\\cite{ref}",
    "$\\sim$",
    "\\ref{fig}",
    "{\\it et al.}",
    "\\footnote{1}",
    "$\\alpha$",
];

/// Inject noise into text word-by-word.
pub fn noisify(text: &str, config: &NoiseConfig, rng: &mut Rng) -> String {
    if config.latex_rate == 0.0 && config.corruption_rate == 0.0 && config.hyphenation_rate == 0.0 {
        return text.to_string();
    }
    let mut out = String::with_capacity(text.len() + text.len() / 8);
    for (i, word) in text.split(' ').enumerate() {
        if i > 0 {
            out.push(' ');
        }
        if rng.chance(config.corruption_rate) && word.len() > 2 {
            // Drop one interior character (classic OCR garble).
            let chars: Vec<char> = word.chars().collect();
            let drop = 1 + rng.index(chars.len().saturating_sub(2).max(1));
            for (j, c) in chars.iter().enumerate() {
                if j != drop {
                    out.push(*c);
                }
            }
        } else if rng.chance(config.hyphenation_rate) && word.len() > 4 {
            let chars: Vec<char> = word.chars().collect();
            let split = 2 + rng.index(chars.len() - 3);
            for c in &chars[..split] {
                out.push(*c);
            }
            out.push_str("-\n");
            for c in &chars[split..] {
                out.push(*c);
            }
        } else {
            out.push_str(word);
        }
        if rng.chance(config.latex_rate) {
            out.push(' ');
            out.push_str(LATEX_ARTIFACTS[rng.index(LATEX_ARTIFACTS.len())]);
        }
    }
    out
}

/// The Nougat-OCR stand-in: strip recognised LaTeX artefacts and repair
/// hyphen-linebreaks. Character garbles (information already lost) cannot
/// be repaired, mirroring real OCR limits.
pub fn clean_ocr(text: &str) -> String {
    let mut s = text.to_string();
    for artefact in LATEX_ARTIFACTS {
        s = s.replace(&format!(" {artefact}"), "");
        s = s.replace(artefact, "");
    }
    // Repair hyphenation.
    s = s.replace("-\n", "");
    // Collapse double spaces left by removals.
    while s.contains("  ") {
        s = s.replace("  ", " ");
    }
    s.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "The redshift of NGC-382 is 0.45. Measurements indicate that the \
                          distance of Abell-221 is 54 Mpc.";

    #[test]
    fn clean_config_is_identity() {
        let mut rng = Rng::seed_from(1);
        assert_eq!(noisify(SAMPLE, &NoiseConfig::clean(), &mut rng), SAMPLE);
    }

    #[test]
    fn latex_config_injects_artifacts() {
        let mut rng = Rng::seed_from(2);
        let long = SAMPLE.repeat(20);
        let noisy = noisify(&long, &NoiseConfig::latex_artifacts(), &mut rng);
        assert!(noisy.len() > long.len());
        assert!(noisy.contains('\\') || noisy.contains('$'), "no artefacts injected");
    }

    #[test]
    fn heavy_ocr_corrupts_more_than_latex() {
        let long = SAMPLE.repeat(30);
        let mut r1 = Rng::seed_from(3);
        let mut r2 = Rng::seed_from(3);
        let light = noisify(&long, &NoiseConfig::latex_artifacts(), &mut r1);
        let heavy = noisify(&long, &NoiseConfig::heavy_ocr(), &mut r2);
        let diff = |a: &str| {
            a.split(' ')
                .zip(long.split(' '))
                .filter(|(x, y)| x != y)
                .count()
        };
        assert!(diff(&heavy) >= diff(&light));
    }

    #[test]
    fn cleaner_removes_artifacts() {
        let mut rng = Rng::seed_from(4);
        let long = SAMPLE.repeat(10);
        let noisy = noisify(&long, &NoiseConfig::latex_artifacts(), &mut rng);
        let cleaned = clean_ocr(&noisy);
        assert!(!cleaned.contains('\\'));
        assert!(!cleaned.contains("-\n"));
    }

    #[test]
    fn cleaner_cannot_undo_garbles() {
        // A corruption-only channel loses characters; the cleaner must not
        // (and cannot) restore them.
        let cfg = NoiseConfig {
            latex_rate: 0.0,
            corruption_rate: 1.0,
            hyphenation_rate: 0.0,
        };
        let mut rng = Rng::seed_from(5);
        let noisy = noisify("important measurement results", &cfg, &mut rng);
        let cleaned = clean_ocr(&noisy);
        assert_ne!(cleaned, "important measurement results");
    }

    #[test]
    fn cleaner_is_idempotent() {
        let mut rng = Rng::seed_from(6);
        let noisy = noisify(&SAMPLE.repeat(5), &NoiseConfig::latex_artifacts(), &mut rng);
        let once = clean_ocr(&noisy);
        assert_eq!(clean_ocr(&once), once);
    }

    #[test]
    fn noise_is_deterministic_in_seed() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        assert_eq!(
            noisify(SAMPLE, &NoiseConfig::heavy_ocr(), &mut a),
            noisify(SAMPLE, &NoiseConfig::heavy_ocr(), &mut b)
        );
    }
}
