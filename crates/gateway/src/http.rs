//! Minimal HTTP/1.1 request parsing and response writing over raw
//! streams. Deliberately small: one request per connection
//! (`Connection: close`), `Content-Length` bodies only (no chunked
//! encoding), ASCII header names. Exactly what the gateway's JSON API
//! needs and nothing that would require a dependency.

use std::io::{Read, Write};

/// Cap on the request head (request line + headers) so a hostile client
/// cannot grow memory by never sending `\r\n\r\n`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target path, e.g. `/v1/score` (query string split off).
    pub path: String,
    /// Raw query string after `?`, empty when absent.
    pub query: String,
    /// Header name/value pairs in arrival order; names not normalised.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length` long; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// True when the query string contains `key=value` as one exact
    /// `&`-separated pair (no percent-decoding — the gateway's query
    /// vocabulary is fixed tokens like `format=prometheus`).
    pub fn query_param_is(&self, key: &str, value: &str) -> bool {
        self.query
            .split('&')
            .any(|pair| pair.split_once('=') == Some((key, value)))
    }
}

/// Why a request could not be read. Each variant maps onto one HTTP
/// status (or a silent close) in the connection handler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or head too large → 400.
    BadRequest(String),
    /// Declared body exceeds the configured bound → 413.
    PayloadTooLarge {
        /// Bytes the client declared.
        declared: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// The socket read timed out mid-request → 408.
    Timeout,
    /// The peer closed before a full request arrived → close silently.
    ConnectionClosed,
    /// Any other I/O failure → close silently.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::PayloadTooLarge { declared, limit } => {
                write!(f, "payload too large: {declared} > {limit}")
            }
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn classify_io(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe => HttpError::ConnectionClosed,
        _ => HttpError::Io(e.to_string()),
    }
}

/// Read and parse one request from `stream`. `max_body` bounds the
/// accepted `Content-Length`; the head is bounded by [`MAX_HEAD_BYTES`].
/// The caller is expected to have set a read timeout on the stream.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate until the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk).map_err(classify_io)?;
        if n == 0 {
            return Err(HttpError::ConnectionClosed);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty head".to_string()))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    let req = Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        headers,
        body: Vec::new(),
    };
    let declared = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {v:?}")))?,
    };
    if declared > max_body {
        return Err(HttpError::PayloadTooLarge {
            declared,
            limit: max_body,
        });
    }

    // Body bytes already buffered past the head, then read the rest.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < declared {
        let n = stream.read(&mut chunk).map_err(classify_io)?;
        if n == 0 {
            return Err(HttpError::ConnectionClosed);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(declared);
    Ok(Request { body, ..req })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Canonical reason phrase for the status codes the gateway emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one complete response (`Connection: close`) and flush.
/// `extra_headers` are appended verbatim (e.g. `("Retry-After", "2")`).
/// `content_type` is usually `application/json`; the Prometheus
/// exposition endpoint uses `text/plain; version=0.0.4`.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut out = String::with_capacity(128 + body.len());
    out.push_str(&format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_reason(status),
        body.len()
    ));
    for (k, v) in extra_headers {
        out.push_str(&format!("{k}: {v}\r\n"));
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        read_request(&mut cursor, 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/score HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\nabcd";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/score");
        assert_eq!(req.header("Content-Length"), Some("4"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.query.is_empty());
    }

    #[test]
    fn splits_query_string_off_the_path() {
        let req = parse(b"GET /metricsz?format=prometheus&x=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/metricsz");
        assert_eq!(req.query, "format=prometheus&x=1");
        assert!(req.query_param_is("format", "prometheus"));
        assert!(req.query_param_is("x", "1"));
        assert!(!req.query_param_is("format", "json"));
        assert!(!req.query_param_is("missing", "1"));
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = parse(b"GET / HTTP/1.1\r\nX-Client: abc\r\n\r\n").unwrap();
        assert_eq!(req.header("x-client"), Some("abc"));
        assert_eq!(req.header("X-CLIENT"), Some("abc"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn rejects_malformed_request_line() {
        for raw in [
            b"GARBAGE\r\n\r\n".to_vec(),
            b"GET noslash HTTP/1.1\r\n\r\n".to_vec(),
            b"GET / SPDY/3\r\n\r\n".to_vec(),
        ] {
            assert!(
                matches!(parse(&raw), Err(HttpError::BadRequest(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn rejects_oversized_body_before_reading_it() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        match parse(raw) {
            Err(HttpError::PayloadTooLarge { declared, limit }) => {
                assert_eq!(declared, 9999);
                assert_eq!(limit, 1024);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_content_length() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn truncated_request_is_connection_closed() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::ConnectionClosed)
        );
        assert_eq!(parse(b""), Err(HttpError::ConnectionClosed));
    }

    #[test]
    fn response_has_content_length_and_close() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "2")],
            "{\"e\":1}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"e\":1}"));
    }
}
