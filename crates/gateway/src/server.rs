//! The gateway server: acceptor, connection handlers, admission control,
//! and graceful drain.
//!
//! Lifecycle: [`Gateway::spawn`] validates every config layer, binds the
//! socket, and starts two long-lived threads — the acceptor (one handler
//! thread per connection) and the micro-batching scheduler. Admission
//! happens in the handler *before* anything reaches the queue: drain
//! state (503), body bounds (413), JSON schema (400), per-client rate
//! limit (429 + `Retry-After`), bounded-queue backpressure (503).
//! [`Gateway::shutdown`] stops accepting, waits for in-flight
//! connections, then closes the queue so the scheduler flushes every
//! accepted request — zero loss on a clean drain.

use crate::api;
use crate::config::GatewayConfig;
use crate::http::{self, HttpError, Request};
use crate::limiter::{Admission, RateLimiter};
use crate::queue::{BoundedQueue, PushError};
use crate::scheduler::{run_scheduler, Pending, Reply, Work};
use astro_eval::{generate_job, score_job, EvalModel, InstructEvalConfig, TokenEvalConfig};
use astro_mcq::Mcq;
use astro_model::Params;
use astro_prng::Rng;
use astro_resilience::fault;
use astro_serve::EvalEngine;
use astro_telemetry::trace::{self, TraceConfig, TraceId};
use astro_telemetry::{metrics, span, span::SpanGuard};
use astro_tokenizer::Tokenizer;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Everything the endpoints need to build jobs: the model, the shared
/// tokenizer, few-shot exemplars, and the two method configs. The
/// `engine` fields inside the method configs are ignored — the gateway's
/// scheduler owns batching.
#[derive(Clone)]
pub struct GatewayState {
    /// Model weights served by both endpoints.
    pub params: Arc<Params>,
    /// Tokenizer shared with the training run that produced `params`.
    pub tokenizer: Arc<Tokenizer>,
    /// Few-shot exemplars for the token method prompt.
    pub exemplars: Arc<Vec<Mcq>>,
    /// Token-method settings (`/v1/score`).
    pub token_config: TokenEvalConfig,
    /// Full-instruct settings (`/v1/generate`).
    pub instruct_config: InstructEvalConfig,
}

/// Why the gateway could not start.
#[derive(Clone, Debug)]
pub enum GatewayError {
    /// A config layer failed validation (gateway, engine, or method).
    Config(String),
    /// The listener could not bind the requested address.
    Bind(String),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Config(m) => write!(f, "invalid config: {m}"),
            GatewayError::Bind(m) => write!(f, "bind failed: {m}"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// What a graceful shutdown observed.
#[derive(Clone, Copy, Debug)]
pub struct DrainStats {
    /// Requests admitted past every admission check.
    pub accepted: u64,
    /// Admitted requests that received a scheduler reply.
    pub completed: u64,
    /// True when every connection finished within `drain_timeout` and
    /// every accepted request was answered.
    pub drained_clean: bool,
}

struct Shared {
    config: GatewayConfig,
    state: GatewayState,
    queue: Arc<BoundedQueue<Pending>>,
    limiter: RateLimiter,
    draining: AtomicBool,
    open_conns: AtomicUsize,
    accepted: AtomicU64,
    completed: AtomicU64,
}

/// A running gateway. Dropping it without calling [`Gateway::shutdown`]
/// aborts: the listener stops, the queue closes, buffered requests are
/// still flushed, but in-flight connections are not waited for.
pub struct Gateway {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl Gateway {
    /// Validate every config layer, bind, and start serving.
    pub fn spawn(config: GatewayConfig, state: GatewayState) -> Result<Gateway, GatewayError> {
        config.validate().map_err(GatewayError::Config)?;
        state
            .token_config
            .validate()
            .map_err(|e| GatewayError::Config(format!("token_config: {e}")))?;
        state
            .instruct_config
            .validate()
            .map_err(|e| GatewayError::Config(format!("instruct_config: {e}")))?;

        let listener =
            TcpListener::bind(&config.bind).map_err(|e| GatewayError::Bind(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| GatewayError::Bind(e.to_string()))?;

        // Install the observability bounds before the first request can
        // race them: the trace ring, tail-sampling rate, and the span
        // registry's retirement cap all come from the gateway config.
        trace::configure(TraceConfig {
            ring_capacity: config.trace_ring_capacity,
            sample_one_in: config.trace_sample_one_in,
            ..TraceConfig::default()
        });
        span::set_capacity(config.span_capacity);

        let engine = Arc::new(EvalEngine::new(config.engine, &state.params));
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let shared = Arc::new(Shared {
            limiter: RateLimiter::new(config.rate_per_sec, config.burst),
            queue: Arc::clone(&queue),
            state,
            draining: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            config,
        });

        let (window, max_batch) = (shared.config.batch_window, shared.config.max_batch);
        let tokenizer = Arc::clone(&shared.state.tokenizer);
        let scheduler = std::thread::spawn(move || {
            run_scheduler(queue, engine, tokenizer, window, max_batch);
        });

        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::spawn(move || accept_loop(&listener, &accept_shared));

        astro_telemetry::info!("gateway: listening on {addr}");
        Ok(Gateway {
            shared,
            addr,
            acceptor: Some(acceptor),
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wait up to `drain_timeout` for in-flight
    /// connections, flush the queue, and stop the scheduler. Every
    /// request accepted before the drain began is answered.
    pub fn shutdown(mut self) -> DrainStats {
        let _span = span!("gateway.drain");
        self.shared.draining.store(true, Ordering::SeqCst);
        self.wake_and_join_acceptor();

        // Handlers still hold connections; the scheduler is still
        // running, so their queued work completes. Wait for them.
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.open_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let conns_done = self.shared.open_conns.load(Ordering::SeqCst) == 0;

        self.shared.queue.close();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        let accepted = self.shared.accepted.load(Ordering::SeqCst);
        let completed = self.shared.completed.load(Ordering::SeqCst);
        let stats = DrainStats {
            accepted,
            completed,
            drained_clean: conns_done && accepted == completed,
        };
        astro_telemetry::info!(
            "gateway: drained accepted={} completed={} clean={}",
            stats.accepted,
            stats.completed,
            stats.drained_clean
        );
        stats
    }

    /// Hard stop: close the queue immediately and do not wait for
    /// in-flight connections. Buffered requests are still flushed by the
    /// scheduler on its way out; rejected pushes after this point see
    /// typed `Closed` errors, never a panic.
    pub fn abort(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        self.wake_and_join_acceptor();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }

    fn wake_and_join_acceptor(&mut self) {
        // `accept` blocks; poke it with a throwaway connection so the
        // loop re-checks the drain flag.
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        if self.acceptor.is_none() && self.scheduler.is_none() {
            return;
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if fault::should_fault("gateway.accept_fail") {
            // Injected accept failure: the connection is dropped before a
            // handler exists. The client sees a reset and may retry; the
            // server keeps serving. The dropped connection still leaves a
            // fault-marked trace (status 0) so the fault is attributable.
            metrics::counter("gateway.accept_fail").add(1);
            let tid = trace::mint();
            trace::start(tid, "gateway.reject", None, astro_telemetry::elapsed_us());
            trace::mark_fault(tid, "gateway.accept_fail");
            trace::finish(tid, 0);
            drop(stream);
            continue;
        }
        shared.open_conns.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                serve_connection(&conn_shared, stream);
            }));
            if result.is_err() {
                metrics::counter("gateway.handler_panics").add(1);
            }
            conn_shared.open_conns.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

const CT_JSON: &str = "application/json";
/// Prometheus text exposition content type (satellite of `/metricsz`).
const CT_PROMETHEUS: &str = "text/plain; version=0.0.4";

struct HttpReply {
    status: u16,
    retry_after: Option<u64>,
    content_type: &'static str,
    body: String,
}

impl HttpReply {
    fn ok(body: String) -> HttpReply {
        HttpReply {
            status: 200,
            retry_after: None,
            content_type: CT_JSON,
            body,
        }
    }

    fn ok_prometheus(body: String) -> HttpReply {
        HttpReply {
            status: 200,
            retry_after: None,
            content_type: CT_PROMETHEUS,
            body,
        }
    }

    fn error(status: u16, message: &str) -> HttpReply {
        HttpReply {
            status,
            retry_after: None,
            content_type: CT_JSON,
            body: api::error_body(message),
        }
    }

    fn retry(status: u16, after: u64, message: &str) -> HttpReply {
        HttpReply {
            status,
            retry_after: Some(after),
            content_type: CT_JSON,
            body: api::error_body(message),
        }
    }
}

/// Start the trace for a request that never parsed: minted id, no remote
/// parent, `recv` phase covering everything read so far.
fn start_reject_trace(t_conn: u64) -> TraceId {
    let tid = trace::mint();
    trace::start(tid, "gateway.reject", None, t_conn);
    trace::phase(tid, "recv", t_conn, astro_telemetry::elapsed_us());
    tid
}

/// Start (or adopt, via W3C `traceparent`) the trace for a parsed
/// request. A replayed traceparent whose id is already in flight gets a
/// fresh minted id — ids are one-shot here.
fn start_request_trace(req: &Request, t_conn: u64, span: &SpanGuard) -> TraceId {
    let (mut tid, remote_parent) = match req.header("traceparent").and_then(trace::parse_traceparent)
    {
        Some((t, p)) => (t, Some(p)),
        None => (trace::mint(), None),
    };
    let name = format!("gateway.{}", req.path);
    if !trace::start(tid, &name, remote_parent, t_conn) {
        tid = trace::mint();
        trace::start(tid, &name, remote_parent, t_conn);
    }
    span.set_trace(tid.0);
    trace::phase(tid, "recv", t_conn, astro_telemetry::elapsed_us());
    tid
}

/// The fixed endpoint set that gets per-endpoint latency histograms —
/// arbitrary 404 paths must not mint unbounded metric names.
fn endpoint_histogram_name(path: &str) -> Option<&'static str> {
    match path {
        "/healthz" => Some("gateway.endpoint./healthz.us"),
        "/metricsz" => Some("gateway.endpoint./metricsz.us"),
        "/v1/score" => Some("gateway.endpoint./v1/score.us"),
        "/v1/generate" => Some("gateway.endpoint./v1/generate.us"),
        _ => None,
    }
}

/// Handle one connection: parse, route, answer, close. Every request
/// that reaches this handler leaves exactly one finished trace: its
/// `recv` phase anchors at connection accept, the trace closes after the
/// response bytes are written (`write` phase), and the final HTTP status
/// becomes the trace status.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let t_conn = astro_telemetry::elapsed_us();
    let span = span!("gateway.request");
    let t0 = Instant::now();
    metrics::counter("gateway.connections").add(1);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    if fault::should_fault("gateway.slow_client") {
        // Injected slow client: treat the connection as having stalled
        // mid-request and answer exactly like a real read timeout.
        metrics::counter("gateway.slow_client").add(1);
        let tid = start_reject_trace(t_conn);
        trace::mark_fault(tid, "gateway.slow_client");
        let reply = HttpReply::error(408, "request read timed out");
        let header = trace::format_traceparent(tid, span.id() as u64);
        write_reply(&mut stream, &reply, true, Some(&header));
        trace::phase_since_last(tid, "write");
        trace::finish(tid, reply.status);
        return;
    }
    let peer = match stream.peer_addr() {
        Ok(a) => a.ip().to_string(),
        Err(_) => "unknown".to_string(),
    };
    let (mut reply, request_fully_read, tid) =
        match http::read_request(&mut stream, shared.config.max_body_bytes) {
            Ok(req) => {
                let tid = start_request_trace(&req, t_conn, &span);
                let reply = route(shared, &req, &peer, tid);
                if let Some(name) = endpoint_histogram_name(&req.path) {
                    metrics::histogram(name).observe(t0.elapsed().as_micros() as f64);
                }
                (reply, true, tid)
            }
            Err(HttpError::BadRequest(m)) => {
                (HttpReply::error(400, &m), false, start_reject_trace(t_conn))
            }
            Err(HttpError::PayloadTooLarge { declared, limit }) => {
                metrics::counter("gateway.oversized").add(1);
                (
                    HttpReply::error(413, &format!("body of {declared} bytes exceeds {limit}")),
                    false,
                    start_reject_trace(t_conn),
                )
            }
            Err(HttpError::Timeout) => (
                HttpReply::error(408, "request read timed out"),
                false,
                start_reject_trace(t_conn),
            ),
            // Peer vanished before sending a request; nothing to answer.
            Err(HttpError::ConnectionClosed) | Err(HttpError::Io(_)) => return,
        };
    // Successful JSON responses carry their own phase breakdown (the
    // snapshot runs before the `write` phase, so `write` appears only in
    // the sink/ring record, never the body).
    if reply.status == 200 && reply.content_type == CT_JSON {
        if let Some(rec) = trace::inflight_snapshot(tid) {
            reply.body = api::body_with_trace(&reply.body, &rec);
        }
    }
    span.record_f64("status", f64::from(reply.status));
    metrics::histogram("gateway.request_us").observe(t0.elapsed().as_micros() as f64);
    let header = trace::format_traceparent(tid, span.id() as u64);
    write_reply(&mut stream, &reply, !request_fully_read, Some(&header));
    trace::phase_since_last(tid, "write");
    trace::finish(tid, reply.status);
}

/// Write a response. When the request was *not* fully consumed (early
/// rejection), half-close and drain the leftover bytes first — closing a
/// socket with unread data makes the kernel send RST, which would
/// destroy the very response we just queued.
fn write_reply(
    stream: &mut TcpStream,
    reply: &HttpReply,
    drain_unread: bool,
    traceparent: Option<&str>,
) {
    let retry_value;
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(after) = reply.retry_after {
        retry_value = after.to_string();
        headers.push(("Retry-After", &retry_value));
    }
    if let Some(tp) = traceparent {
        headers.push(("traceparent", tp));
    }
    if http::write_response(stream, reply.status, reply.content_type, &headers, &reply.body)
        .is_err()
    {
        return;
    }
    if !drain_unread {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 1024];
    // Bounded by the read timeout set on the stream and this byte budget.
    let mut budget = 256 * 1024usize;
    while budget > 0 {
        match std::io::Read::read(stream, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

fn route(shared: &Shared, req: &Request, peer: &str, tid: TraceId) -> HttpReply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => HttpReply::ok(api::health_body(
            shared.draining.load(Ordering::SeqCst),
            shared.queue.depth(),
        )),
        ("GET", "/metricsz") => {
            if req.query_param_is("format", "prometheus") {
                HttpReply::ok_prometheus(api::prometheus_body(&metrics::snapshot()))
            } else {
                HttpReply::ok(api::metrics_body(&metrics::snapshot()))
            }
        }
        ("POST", "/v1/score") => handle_score(shared, req, peer, tid),
        ("POST", "/v1/generate") => handle_generate(shared, req, peer, tid),
        (_, "/healthz" | "/metricsz" | "/v1/score" | "/v1/generate") => {
            HttpReply::error(405, &format!("method {} not allowed here", req.method))
        }
        (_, path) => HttpReply::error(404, &format!("no route for {path}")),
    }
}

fn body_utf8(req: &Request) -> Result<&str, HttpReply> {
    std::str::from_utf8(&req.body)
        .map_err(|_| HttpReply::error(400, "request body is not UTF-8"))
}

fn handle_score(shared: &Shared, req: &Request, peer: &str, tid: TraceId) -> HttpReply {
    let body = match body_utf8(req) {
        Ok(b) => b,
        Err(reply) => return reply,
    };
    let parsed = match api::ScoreRequest::parse(body) {
        Ok(p) => p,
        Err(m) => return HttpReply::error(400, &m),
    };
    let model = EvalModel {
        params: &shared.state.params,
        tokenizer: &shared.state.tokenizer,
    };
    let mcq = api::mcq_from_request(&parsed.question, &parsed.options, parsed.group);
    let job = score_job(&model, &mcq, &shared.state.exemplars, &shared.state.token_config);
    let client = parsed.client.as_deref().unwrap_or(peer).to_string();
    admit_and_run(shared, Work::Score(job), &client, tid)
}

fn handle_generate(shared: &Shared, req: &Request, peer: &str, tid: TraceId) -> HttpReply {
    let body = match body_utf8(req) {
        Ok(b) => b,
        Err(reply) => return reply,
    };
    let parsed = match api::GenerateRequest::parse(body) {
        Ok(p) => p,
        Err(m) => return HttpReply::error(400, &m),
    };
    let model = EvalModel {
        params: &shared.state.params,
        tokenizer: &shared.state.tokenizer,
    };
    let mcq = api::mcq_from_request(&parsed.question, &parsed.options, parsed.group);
    let job = generate_job(
        &model,
        &mcq,
        &shared.state.instruct_config,
        Rng::seed_from(parsed.seed),
    );
    let client = parsed.client.as_deref().unwrap_or(peer).to_string();
    admit_and_run(
        shared,
        Work::Generate {
            job,
            options: parsed.options,
        },
        &client,
        tid,
    )
}

/// Admission gauntlet, queue push, and the wait for a scheduler reply.
/// The `build` phase (body parse + prompt/tokenizer work in the handler)
/// closes here, just before the queue push, so `queue_wait` starts at
/// the enqueue instant.
fn admit_and_run(shared: &Shared, work: Work, client: &str, tid: TraceId) -> HttpReply {
    trace::phase_since_last(tid, "build");
    if shared.draining.load(Ordering::SeqCst) {
        return HttpReply::retry(503, 1, "server is draining");
    }
    if let Admission::RetryAfter(secs) = shared.limiter.admit(client) {
        metrics::counter("gateway.rate_limited").add(1);
        return HttpReply::retry(429, secs, &format!("rate limit exceeded for {client:?}"));
    }
    let (tx, rx) = mpsc::channel();
    let now = Instant::now();
    let pending = Pending {
        work,
        reply: tx,
        deadline: now + shared.config.deadline,
        enqueued: now,
        trace: Some(tid),
    };
    match shared.queue.try_push(pending) {
        Ok(depth) => metrics::gauge("gateway.queue_depth").set(depth as i64),
        Err(PushError::Full(_)) => {
            metrics::counter("gateway.backpressure").add(1);
            return HttpReply::retry(503, 1, "request queue is full");
        }
        Err(PushError::Closed(_)) => return HttpReply::retry(503, 1, "server is draining"),
    }
    shared.accepted.fetch_add(1, Ordering::SeqCst);
    match rx.recv_timeout(shared.config.deadline) {
        Ok(reply) => {
            shared.completed.fetch_add(1, Ordering::SeqCst);
            match reply {
                Reply::Score { scores, prediction } => {
                    HttpReply::ok(api::score_body(&scores, prediction))
                }
                Reply::Generate {
                    prediction,
                    stage,
                    raw,
                } => HttpReply::ok(api::generate_body(prediction, stage, &raw)),
                Reply::Expired => HttpReply::error(504, "deadline expired before execution"),
                Reply::Error(m) => HttpReply::error(500, &m),
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            metrics::counter("gateway.deadline_timeouts").add(1);
            trace::mark_deadline(tid);
            HttpReply::error(504, "deadline expired waiting for the scheduler")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            HttpReply::error(503, "scheduler stopped before answering")
        }
    }
}
