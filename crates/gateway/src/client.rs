//! A minimal blocking HTTP client for the gateway's own tests and load
//! bench. Speaks exactly the dialect the server emits: one request per
//! connection, `Connection: close`, `Content-Length` bodies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body decoded as UTF-8.
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn round_trip(
    addr: SocketAddr,
    request: &str,
    timeout: Duration,
) -> Result<HttpResponse, String> {
    let stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let mut stream = stream;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "no header terminator in response".to_string())?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|e| format!("head utf8: {e}"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| "empty response".to_string())?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let headers = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            l.split_once(':')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|e| format!("body utf8: {e}"))?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// POST a JSON body and return the parsed response.
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<HttpResponse, String> {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    round_trip(addr, &request, timeout)
}

/// GET a path and return the parsed response.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<HttpResponse, String> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    round_trip(addr, &request, timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_headers_and_body() {
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 2\r\nContent-Length: 2\r\n\r\nhi";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.body, "hi");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
