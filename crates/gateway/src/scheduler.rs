//! Continuous micro-batching scheduler.
//!
//! A single thread drains the request queue: it blocks for the first
//! pending request, keeps collecting until the batching window closes
//! (or `max_batch` is reached), then dispatches everything as *one*
//! engine batch. Because the engine's radix prefix cache deduplicates
//! shared prompt prefixes within a batch, concurrent clients asking
//! related questions get the same cache wins as an in-process batch —
//! that is where the gateway's throughput over serial comes from on a
//! single core.
//!
//! Determinism: the engine guarantees results are independent of batch
//! composition, so whatever coalescing the wall clock produces, each
//! response is bitwise identical to a serial run of that request alone.

use crate::queue::{BoundedQueue, Pop};
use astro_eval::{extract_answer, ExtractionStage};
use astro_serve::{EvalEngine, GenerateJob, ScoreJob};
use astro_telemetry::trace::{self, TraceId};
use astro_telemetry::{metrics, span, TraceContext};
use astro_tokenizer::Tokenizer;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The work item carried by one pending request.
pub enum Work {
    /// A `/v1/score` request (token method readout).
    Score(ScoreJob),
    /// A `/v1/generate` request; options ride along for extraction.
    Generate {
        /// The prepared generation job.
        job: GenerateJob,
        /// The four options, needed by the extraction cascade.
        options: [String; 4],
    },
}

/// One admitted request waiting for a batch slot.
pub struct Pending {
    /// What to run.
    pub work: Work,
    /// Where the connection handler waits for the result.
    pub reply: mpsc::Sender<Reply>,
    /// Absolute deadline; expired requests are answered without running.
    pub deadline: Instant,
    /// When the request entered the queue (queue-wait histogram).
    pub enqueued: Instant,
    /// The request's trace, if the handler started one. The scheduler
    /// records the `queue_wait`/`batch_form`/`sync`/`extract` phases and
    /// threads the context into the engine job for the worker-side
    /// phases; the handler still owns `finish`.
    pub trace: Option<TraceId>,
}

/// Result sent back to the connection handler.
pub enum Reply {
    /// Token-method scores plus the argmax prediction.
    Score {
        /// Per-option readouts (bitwise-stable).
        scores: [f32; 4],
        /// Argmax over `scores` (ties resolve to the lowest index,
        /// matching `token_method_outcomes`).
        prediction: usize,
    },
    /// Full-instruct completion after the extraction cascade.
    Generate {
        /// Extracted option index, if any stage recovered one.
        prediction: Option<usize>,
        /// Which extraction stage produced the answer.
        stage: ExtractionStage,
        /// The raw decoded completion.
        raw: String,
    },
    /// The deadline passed while queued → 504.
    Expired,
    /// The engine failed this job → 500 with the message.
    Error(String),
}

/// Scheduler loop: runs until the queue is closed *and* drained, so a
/// graceful shutdown flushes every accepted request. Spawned once by
/// `Gateway::spawn`; never panics — engine errors become per-request
/// [`Reply::Error`]s.
pub fn run_scheduler(
    queue: Arc<BoundedQueue<Pending>>,
    engine: Arc<EvalEngine>,
    tokenizer: Arc<Tokenizer>,
    window: Duration,
    max_batch: usize,
) {
    loop {
        let first = match queue.pop(None) {
            Pop::Item(p) => p,
            Pop::Closed => return,
            Pop::TimedOut => continue,
        };
        note_popped(&first);
        let mut batch = vec![first];
        let window_end = Instant::now() + window;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            match queue.pop(Some(window_end - now)) {
                Pop::Item(p) => {
                    note_popped(&p);
                    batch.push(p);
                }
                // Closed: dispatch what we have; the next outer pop
                // observes Closed-and-empty and exits the loop.
                Pop::TimedOut | Pop::Closed => break,
            }
        }
        dispatch_batch(&engine, &tokenizer, batch);
        metrics::gauge("gateway.queue_depth").set(queue.depth() as i64);
    }
}

/// Close the request's `queue_wait` phase the moment it leaves the queue;
/// `batch_form` then runs from here until the batch dispatches.
fn note_popped(p: &Pending) {
    if let Some(t) = p.trace {
        trace::phase_since_last(t, "queue_wait");
    }
}

/// Run one coalesced batch through the engine and answer every request.
fn dispatch_batch(engine: &EvalEngine, tokenizer: &Tokenizer, batch: Vec<Pending>) {
    let span = span!("gateway.batch", size = batch.len());
    let now = Instant::now();
    metrics::counter("gateway.batches").add(1);
    metrics::histogram("gateway.batch_occupancy").observe(batch.len() as f64);
    for p in &batch {
        let wait = now.saturating_duration_since(p.enqueued);
        metrics::histogram("gateway.queue_wait_us").observe(wait.as_micros() as f64);
    }

    // Expired requests are answered immediately and never hit the engine.
    let (live, expired): (Vec<Pending>, Vec<Pending>) =
        batch.into_iter().partition(|p| now < p.deadline);
    for p in expired {
        metrics::counter("gateway.expired").add(1);
        if let Some(t) = p.trace {
            trace::mark_deadline(t);
            trace::phase_since_last(t, "batch_form");
        }
        let _ = p.reply.send(Reply::Expired);
    }

    // Close each member's `batch_form` phase and wire the cross-thread
    // causality edge both ways: the batch span records every member trace
    // it carries, and every member trace records the batch span, so the
    // analyzer can reconstruct which requests shared one engine dispatch.
    let parent = span.id();
    let mut score_items: Vec<(ScoreJob, mpsc::Sender<Reply>, Option<TraceId>)> = Vec::new();
    let mut generate_items = Vec::new();
    for p in live {
        let ctx = p.trace.map(|t| {
            trace::phase_since_last(t, "batch_form");
            trace::link(t, "gateway.batch", parent);
            span.link_trace(t.0);
            TraceContext {
                trace: t,
                parent_span: Some(parent),
            }
        });
        match p.work {
            Work::Score(mut job) => {
                job.trace = ctx;
                score_items.push((job, p.reply, p.trace));
            }
            Work::Generate { mut job, options } => {
                job.trace = ctx;
                generate_items.push((job, options, p.reply, p.trace));
            }
        }
    }
    span.record_f64("score_jobs", score_items.len() as f64);
    span.record_f64("generate_jobs", generate_items.len() as f64);

    if !score_items.is_empty() {
        let mut jobs = Vec::with_capacity(score_items.len());
        let mut rest = Vec::with_capacity(score_items.len());
        for (job, reply, t) in score_items {
            jobs.push(job);
            rest.push((reply, t));
        }
        for (result, (reply, t)) in engine.score_batch(jobs).into_iter().zip(rest) {
            if let Some(t) = t {
                trace::phase_since_last(t, "sync");
            }
            let msg = match result {
                Ok(s) => {
                    let mut scores = [f32::NEG_INFINITY; 4];
                    for (dst, src) in scores.iter_mut().zip(s.iter()) {
                        *dst = *src;
                    }
                    let mut best = 0;
                    for i in 1..4 {
                        if scores[i] > scores[best] {
                            best = i;
                        }
                    }
                    Reply::Score {
                        scores,
                        prediction: best,
                    }
                }
                Err(e) => Reply::Error(e.to_string()),
            };
            if let Some(t) = t {
                trace::phase_since_last(t, "extract");
            }
            // A handler that already timed out has dropped its receiver;
            // that is its problem, not the scheduler's.
            let _ = reply.send(msg);
        }
    }

    if !generate_items.is_empty() {
        let mut jobs = Vec::with_capacity(generate_items.len());
        let mut rest = Vec::with_capacity(generate_items.len());
        for (job, options, reply, t) in generate_items {
            jobs.push(job);
            rest.push((options, reply, t));
        }
        for (result, (options, reply, t)) in engine.generate_batch(jobs).into_iter().zip(rest) {
            if let Some(t) = t {
                trace::phase_since_last(t, "sync");
            }
            let msg = match result {
                Ok(tokens) => {
                    let raw = tokenizer.decode(&tokens);
                    let (prediction, stage) = extract_answer(&raw, &options);
                    Reply::Generate {
                        prediction,
                        stage,
                        raw,
                    }
                }
                Err(e) => Reply::Error(e.to_string()),
            };
            if let Some(t) = t {
                trace::phase_since_last(t, "extract");
            }
            let _ = reply.send(msg);
        }
    }
}
