//! HTTP serving front-end for the batched eval engine.
//!
//! The paper's models only matter deployed: AstroLLaMA-Chat shipped as a
//! live chat demo and AstroMLab 4 frames its 70B model as a Q&A service.
//! This crate is that network surface for our reproduction — a std-only
//! HTTP/1.1 JSON server (hand-rolled parser over `TcpListener`, no
//! external dependencies) exposing the benchmarking methods as endpoints:
//!
//! * `POST /v1/score` — the token method's per-option readout via
//!   [`astro_serve::EvalEngine::score_batch`];
//! * `POST /v1/generate` — the full-instruct method via `generate_batch`
//!   plus the existing extraction cascade;
//! * `GET /healthz` — liveness and drain state;
//! * `GET /metricsz` — the telemetry metric registry as JSON.
//!
//! # Architecture
//!
//! A thread-per-connection acceptor parses and admits requests, then
//! pushes them onto a bounded MPMC [`queue::BoundedQueue`]. A single
//! scheduler thread implements **continuous micro-batching**: it blocks
//! for the first request, then coalesces everything arriving within a
//! configurable window (or until `max_batch`) into one engine call, so
//! concurrent clients share the radix prefix cache exactly like an
//! in-process batch. Admission control happens *before* the queue:
//! per-client token-bucket rate limiting (429 + `Retry-After`), payload
//! bounds (413), and bounded-queue backpressure (503) keep memory use
//! flat under overload. Shutdown drains: stop accepting, flush in-flight
//! requests, then exit ([`server::Gateway::shutdown`]).
//!
//! # Determinism contract
//!
//! Responses are **bitwise identical** to the serial in-process path:
//! request handlers build jobs with the same public builders the eval
//! crate uses internally ([`astro_eval::score_job`],
//! [`astro_eval::generate_job`]), and the engine's determinism contract
//! (see `astro_serve`) guarantees batch composition cannot leak into
//! results. Score responses carry `score_bits` (IEEE-754 bit patterns)
//! so clients can verify this without float round-tripping.

pub mod api;
pub mod client;
pub mod config;
pub mod http;
pub mod limiter;
pub mod queue;
pub mod scheduler;
pub mod server;

pub use config::GatewayConfig;
pub use server::{DrainStats, Gateway, GatewayError, GatewayState};
