//! Gateway configuration and its structural validation.

use astro_serve::EngineConfig;
use std::time::Duration;

/// Tunables for the serving front-end. Defaults suit a local deployment;
/// every bound is checked by [`GatewayConfig::validate`] before the
/// server binds its socket.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub bind: String,
    /// Execution strategy for the shared engine behind both endpoints.
    /// The per-method `engine` fields on the eval configs are ignored by
    /// the gateway — batching is the scheduler's job here.
    pub engine: EngineConfig,
    /// Micro-batching window: after the first request of a batch arrives,
    /// how long the scheduler keeps collecting more before dispatching.
    pub batch_window: Duration,
    /// Dispatch immediately once a batch reaches this many requests.
    pub max_batch: usize,
    /// Bounded request-queue capacity; pushes beyond it are rejected with
    /// 503 (backpressure, never unbounded memory).
    pub queue_capacity: usize,
    /// Token-bucket refill rate per client, in requests per second.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity per client (initial and maximum).
    pub burst: f64,
    /// Per-request deadline: admission to response. Expired requests get
    /// 504 and are dropped by the scheduler if still queued.
    pub deadline: Duration,
    /// Maximum request body size; larger bodies get 413.
    pub max_body_bytes: usize,
    /// Socket read timeout for request parsing (slow-client bound).
    pub read_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight connections.
    pub drain_timeout: Duration,
    /// Finished-trace ring capacity (oldest evicted; memory bound).
    pub trace_ring_capacity: usize,
    /// Tail sampling: keep 1 in N unflagged traces (error/deadline/fault/
    /// slowest-p1% traces are always kept; 1 = keep everything).
    pub trace_sample_one_in: u64,
    /// Span-registry capacity: closed spans past this are retired into
    /// the trace ring instead of growing process memory without bound.
    pub span_capacity: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            bind: "127.0.0.1:0".to_string(),
            engine: EngineConfig::pooled(),
            batch_window: Duration::from_millis(5),
            max_batch: 16,
            queue_capacity: 64,
            rate_per_sec: 50.0,
            burst: 20.0,
            deadline: Duration::from_secs(30),
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(10),
            trace_ring_capacity: 2048,
            trace_sample_one_in: 1,
            span_capacity: 8192,
        }
    }
}

impl GatewayConfig {
    /// Structural validation, mirroring the `StudyConfig`/`TrainerConfig`
    /// pattern: reject configurations that cannot serve (zero capacity)
    /// or that typo'd a unit (a one-hour batching window). Called by
    /// [`crate::server::Gateway::spawn`] before the socket binds.
    pub fn validate(&self) -> Result<(), String> {
        if self.bind.is_empty() {
            return Err("bind address must be nonempty".to_string());
        }
        if self.batch_window > Duration::from_secs(1) {
            return Err(format!(
                "batch_window {:?} exceeds the 1s bound; the window is a \
                 coalescing delay, not a poll interval",
                self.batch_window
            ));
        }
        if self.max_batch == 0 || self.max_batch > 1024 {
            return Err(format!(
                "max_batch {} outside 1..=1024",
                self.max_batch
            ));
        }
        if self.queue_capacity == 0 || self.queue_capacity > 65_536 {
            return Err(format!(
                "queue_capacity {} outside 1..=65536",
                self.queue_capacity
            ));
        }
        if !(self.rate_per_sec.is_finite() && self.rate_per_sec > 0.0) {
            return Err(format!(
                "rate_per_sec {} must be positive and finite",
                self.rate_per_sec
            ));
        }
        if !(self.burst.is_finite() && self.burst >= 1.0) {
            return Err(format!(
                "burst {} must be at least 1 (a client must be able to \
                 send one request)",
                self.burst
            ));
        }
        if self.deadline.is_zero() || self.deadline > Duration::from_secs(300) {
            return Err(format!(
                "deadline {:?} outside (0, 300s]",
                self.deadline
            ));
        }
        if self.max_body_bytes == 0 || self.max_body_bytes > 16 << 20 {
            return Err(format!(
                "max_body_bytes {} outside 1..=16MiB",
                self.max_body_bytes
            ));
        }
        if self.read_timeout.is_zero() {
            return Err("read_timeout must be nonzero (a zero OS timeout \
                        means block forever)"
                .to_string());
        }
        if self.drain_timeout < self.batch_window {
            return Err(format!(
                "drain_timeout {:?} is shorter than batch_window {:?}; a \
                 drain could not flush even one batch",
                self.drain_timeout, self.batch_window
            ));
        }
        if self.trace_ring_capacity == 0 || self.trace_ring_capacity > 1 << 20 {
            return Err(format!(
                "trace_ring_capacity {} outside 1..=1048576",
                self.trace_ring_capacity
            ));
        }
        if self.trace_sample_one_in == 0 {
            return Err("trace_sample_one_in must be at least 1 (1 = keep \
                        every trace)"
                .to_string());
        }
        if self.span_capacity < 16 || self.span_capacity > 1 << 20 {
            return Err(format!(
                "span_capacity {} outside 16..=1048576",
                self.span_capacity
            ));
        }
        self.engine.validate().map_err(|e| format!("engine: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert_eq!(GatewayConfig::default().validate(), Ok(()));
    }

    #[test]
    fn rejections_name_the_offending_field() {
        type Mutator = Box<dyn Fn(&mut GatewayConfig)>;
        let cases: Vec<(Mutator, &str)> = vec![
            (Box::new(|c| c.bind = String::new()), "bind"),
            (Box::new(|c| c.batch_window = Duration::from_secs(2)), "batch_window"),
            (Box::new(|c| c.max_batch = 0), "max_batch"),
            (Box::new(|c| c.queue_capacity = 0), "queue_capacity"),
            (Box::new(|c| c.rate_per_sec = 0.0), "rate_per_sec"),
            (Box::new(|c| c.rate_per_sec = f64::NAN), "rate_per_sec"),
            (Box::new(|c| c.burst = 0.5), "burst"),
            (Box::new(|c| c.deadline = Duration::ZERO), "deadline"),
            (Box::new(|c| c.max_body_bytes = 0), "max_body_bytes"),
            (Box::new(|c| c.read_timeout = Duration::ZERO), "read_timeout"),
            (Box::new(|c| c.drain_timeout = Duration::ZERO), "drain_timeout"),
            (Box::new(|c| c.trace_ring_capacity = 0), "trace_ring_capacity"),
            (Box::new(|c| c.trace_sample_one_in = 0), "trace_sample_one_in"),
            (Box::new(|c| c.span_capacity = 8), "span_capacity"),
            (
                Box::new(|c| c.engine.parallelism = astro_serve::MAX_PARALLELISM + 1),
                "engine",
            ),
        ];
        for (mutate, field) in cases {
            let mut c = GatewayConfig::default();
            mutate(&mut c);
            let err = c.validate().unwrap_err();
            assert!(err.contains(field), "expected {field} in error: {err}");
        }
    }
}
