//! Per-client token-bucket rate limiting.
//!
//! Each client (the `client` field of a request, defaulting to the peer
//! address) gets a bucket holding up to `burst` tokens, refilled at
//! `rate_per_sec`. A request costs one token; an empty bucket yields a
//! 429 with a `Retry-After` hint computed from the deficit. The bucket
//! map's mutex is ranked `gateway.limiter` — below `gateway.queue`, so
//! admission completes before any queue interaction.

use std::collections::HashMap;
use std::time::Instant;

/// Evict buckets idle long enough to have fully refilled once the map
/// grows past this many clients; keeps memory bounded under client churn.
const EVICT_THRESHOLD: usize = 4096;

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Admission decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A token was available; the request may proceed.
    Granted,
    /// Bucket empty; retry after this many whole seconds (≥ 1).
    RetryAfter(u64),
}

/// Token-bucket limiter keyed by client identity.
pub struct RateLimiter {
    rate: f64,
    burst: f64,
    buckets: std::sync::Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// Create a limiter granting `burst` initial tokens per client,
    /// refilled at `rate` tokens per second. Bounds are enforced by
    /// `GatewayConfig::validate` (rate positive finite, burst ≥ 1).
    pub fn new(rate: f64, burst: f64) -> Self {
        RateLimiter {
            rate,
            burst,
            buckets: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// Try to take one token for `client` at time `now`.
    pub fn admit_at(&self, client: &str, now: Instant) -> Admission {
        let (_order, mut buckets) =
            astro_telemetry::lockcheck::lock_ranked("gateway.limiter", &self.buckets);
        if buckets.len() > EVICT_THRESHOLD {
            let (rate, burst) = (self.rate, self.burst);
            buckets.retain(|_, b| {
                let elapsed = now.saturating_duration_since(b.last).as_secs_f64();
                elapsed * rate < burst
            });
        }
        let bucket = buckets.entry(client.to_string()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Admission::Granted
        } else {
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / self.rate).ceil().max(1.0);
            Admission::RetryAfter(secs as u64)
        }
    }

    /// Try to take one token for `client` now.
    pub fn admit(&self, client: &str) -> Admission {
        self.admit_at(client, Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_reject() {
        let lim = RateLimiter::new(1.0, 3.0);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert_eq!(lim.admit_at("a", t0), Admission::Granted);
        }
        match lim.admit_at("a", t0) {
            Admission::RetryAfter(s) => assert!(s >= 1, "retry-after {s}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn refills_over_time() {
        let lim = RateLimiter::new(2.0, 2.0);
        let t0 = Instant::now();
        assert_eq!(lim.admit_at("a", t0), Admission::Granted);
        assert_eq!(lim.admit_at("a", t0), Admission::Granted);
        assert!(matches!(lim.admit_at("a", t0), Admission::RetryAfter(_)));
        // 1 second at 2 tokens/s refills both slots.
        let t1 = t0 + Duration::from_secs(1);
        assert_eq!(lim.admit_at("a", t1), Admission::Granted);
        assert_eq!(lim.admit_at("a", t1), Admission::Granted);
    }

    #[test]
    fn clients_are_independent() {
        let lim = RateLimiter::new(1.0, 1.0);
        let t0 = Instant::now();
        assert_eq!(lim.admit_at("a", t0), Admission::Granted);
        assert!(matches!(lim.admit_at("a", t0), Admission::RetryAfter(_)));
        assert_eq!(lim.admit_at("b", t0), Admission::Granted);
    }

    #[test]
    fn retry_after_reflects_deficit_at_slow_rates() {
        // 0.2 tokens/s, empty bucket: a full token is 5 seconds away.
        let lim = RateLimiter::new(0.2, 1.0);
        let t0 = Instant::now();
        assert_eq!(lim.admit_at("a", t0), Admission::Granted);
        match lim.admit_at("a", t0) {
            Admission::RetryAfter(s) => assert_eq!(s, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tokens_never_exceed_burst() {
        let lim = RateLimiter::new(100.0, 2.0);
        let t0 = Instant::now();
        assert_eq!(lim.admit_at("a", t0), Admission::Granted);
        // A long idle period must not bank more than `burst` tokens.
        let t1 = t0 + Duration::from_secs(60);
        assert_eq!(lim.admit_at("a", t1), Admission::Granted);
        assert_eq!(lim.admit_at("a", t1), Admission::Granted);
        assert!(matches!(lim.admit_at("a", t1), Admission::RetryAfter(_)));
    }
}
