//! Request/response JSON schemas for the gateway endpoints.
//!
//! Parsing reuses the eval crate's recursive-descent [`Json`] parser (the
//! same one the extraction cascade uses on model output), and rendering
//! uses the telemetry crate's JSON string escaper — no new dependencies
//! and no second JSON implementation.
//!
//! Score responses carry both decimal `scores` and `score_bits` (the
//! IEEE-754 bit patterns as unsigned integers) so clients can check the
//! bitwise determinism contract without float round-tripping. Non-finite
//! scores render as `null` in the decimal array; the bit pattern is
//! always exact.

use astro_eval::json::Json;
use astro_eval::ExtractionStage;
use astro_mcq::Mcq;
use astro_telemetry::event::write_json_string;
use astro_telemetry::metrics::MetricsSnapshot;
use astro_telemetry::trace::TraceRecord;
use astro_world::FactTier;

/// One `/v1/score` request: score a four-option question with the token
/// method and return per-option readouts.
#[derive(Clone, Debug)]
pub struct ScoreRequest {
    /// Question text.
    pub question: String,
    /// The four options, in presentation order.
    pub options: [String; 4],
    /// Prefix-sharing group (callers batching related questions should
    /// reuse a group id; it maps to the engine's cache group).
    pub group: u64,
    /// Client identity for rate limiting; defaults to the peer address.
    pub client: Option<String>,
}

/// One `/v1/generate` request: run the full-instruct method and return
/// the extracted answer plus the raw completion.
#[derive(Clone, Debug)]
pub struct GenerateRequest {
    /// Question text.
    pub question: String,
    /// The four options, in presentation order.
    pub options: [String; 4],
    /// Prefix-sharing group (see [`ScoreRequest::group`]).
    pub group: u64,
    /// Sampler seed; identical seeds produce identical completions.
    pub seed: u64,
    /// Client identity for rate limiting; defaults to the peer address.
    pub client: Option<String>,
}

fn field_str(obj: &Json, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Json::String(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field {key:?} must be a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn field_u64_or(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(Json::Number(n)) if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        Some(_) => Err(format!("field {key:?} must be a non-negative integer")),
    }
}

fn field_options(obj: &Json) -> Result<[String; 4], String> {
    let Some(Json::Array(items)) = obj.get("options") else {
        return Err("field \"options\" must be an array".to_string());
    };
    if items.len() != 4 {
        return Err(format!(
            "field \"options\" must have exactly 4 entries, got {}",
            items.len()
        ));
    }
    let mut out: [String; 4] = Default::default();
    for (dst, item) in out.iter_mut().zip(items) {
        match item {
            Json::String(s) => *dst = s.clone(),
            _ => return Err("every option must be a string".to_string()),
        }
    }
    Ok(out)
}

fn field_client(obj: &Json) -> Result<Option<String>, String> {
    match obj.get("client") {
        None => Ok(None),
        Some(Json::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err("field \"client\" must be a string".to_string()),
    }
}

fn parse_object(body: &str) -> Result<Json, String> {
    let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    match v {
        Json::Object(_) => Ok(v),
        _ => Err("request body must be a JSON object".to_string()),
    }
}

impl ScoreRequest {
    /// Parse a request body; errors become 400 responses verbatim.
    pub fn parse(body: &str) -> Result<ScoreRequest, String> {
        let obj = parse_object(body)?;
        Ok(ScoreRequest {
            question: field_str(&obj, "question")?,
            options: field_options(&obj)?,
            group: field_u64_or(&obj, "group", 0)?,
            client: field_client(&obj)?,
        })
    }
}

impl GenerateRequest {
    /// Parse a request body; errors become 400 responses verbatim.
    pub fn parse(body: &str) -> Result<GenerateRequest, String> {
        let obj = parse_object(body)?;
        Ok(GenerateRequest {
            question: field_str(&obj, "question")?,
            options: field_options(&obj)?,
            group: field_u64_or(&obj, "group", 0)?,
            seed: field_u64_or(&obj, "seed", 0)?,
            client: field_client(&obj)?,
        })
    }
}

/// Build the ad-hoc [`Mcq`] the prompt builders consume. Prompt rendering
/// only reads `question`, `options` and (for exemplars, never for the
/// scored question) `answer`, so the placeholder metadata fields cannot
/// leak into the prompt — which keeps socket requests bitwise-parity-safe
/// against the in-process path.
pub fn mcq_from_request(question: &str, options: &[String; 4], group: u64) -> Mcq {
    Mcq {
        id: 0,
        article: group as usize,
        fact: 0,
        question: question.to_string(),
        options: options.clone(),
        answer: 0,
        tier: FactTier::Consensus,
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Render `{"error": ...}` for any non-200 response.
pub fn error_body(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 16);
    out.push_str("{\"error\":");
    write_json_string(&mut out, message);
    out.push('}');
    out
}

/// Render a `/v1/score` success body.
pub fn score_body(scores: &[f32; 4], prediction: usize) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"prediction\":");
    out.push_str(&prediction.to_string());
    out.push_str(",\"scores\":[");
    for (i, s) in scores.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(&mut out, f64::from(*s));
    }
    out.push_str("],\"score_bits\":[");
    for (i, s) in scores.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.to_bits().to_string());
    }
    out.push_str("]}");
    out
}

fn stage_name(stage: ExtractionStage) -> &'static str {
    match stage {
        ExtractionStage::Json => "json",
        ExtractionStage::Pattern => "pattern",
        ExtractionStage::Interpreter => "interpreter",
        ExtractionStage::Failed => "failed",
    }
}

/// Render a `/v1/generate` success body.
pub fn generate_body(prediction: Option<usize>, stage: ExtractionStage, raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 64);
    out.push_str("{\"prediction\":");
    match prediction {
        Some(p) => out.push_str(&p.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"stage\":\"");
    out.push_str(stage_name(stage));
    out.push_str("\",\"raw\":");
    write_json_string(&mut out, raw);
    out.push('}');
    out
}

/// Render the `/healthz` body.
pub fn health_body(draining: bool, queue_depth: usize) -> String {
    format!(
        "{{\"status\":\"{}\",\"draining\":{draining},\"queue_depth\":{queue_depth}}}",
        if draining { "draining" } else { "ok" }
    )
}

/// Render the `/metricsz` body: the full telemetry registry snapshot.
pub fn metrics_body(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, name);
        out.push_str(&format!(":{{\"count\":{}", h.count));
        for (key, v) in [
            ("mean", h.mean),
            ("p50", h.p50),
            ("p95", h.p95),
            ("p99", h.p99),
            ("min", h.min),
            ("max", h.max),
        ] {
            out.push_str(&format!(",\"{key}\":"));
            push_f64(&mut out, v);
        }
        if let Some(ex) = &h.exemplar {
            out.push_str(",\"exemplar\":");
            write_json_string(&mut out, ex);
        }
        out.push('}');
    }
    out.push_str("}}");
    out
}

/// A metric name in Prometheus's grammar: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
/// The registry uses dotted names (`gateway.request_us`); everything
/// outside the grammar becomes `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

fn push_prom_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Render the registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms as
/// summaries with `quantile` labels plus `_count`/`_sum` series, and the
/// max-latency trace exemplar as a comment line analyzers can follow back
/// into the trace ring.
pub fn prometheus_body(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    for (name, v) in &snap.counters {
        let pn = prometheus_name(name);
        out.push_str(&format!("# TYPE {pn} counter\n{pn} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let pn = prometheus_name(name);
        out.push_str(&format!("# TYPE {pn} gauge\n{pn} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        if h.count == 0 {
            continue;
        }
        let pn = prometheus_name(name);
        out.push_str(&format!("# TYPE {pn} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            out.push_str(&format!("{pn}{{quantile=\"{q}\"}} "));
            push_prom_f64(&mut out, v);
            out.push('\n');
        }
        out.push_str(&format!("{pn}_sum "));
        push_prom_f64(&mut out, h.mean * h.count as f64);
        out.push('\n');
        out.push_str(&format!("{pn}_count {}\n", h.count));
        if let Some(ex) = &h.exemplar {
            out.push_str(&format!("# EXEMPLAR {pn} trace_id={ex}\n"));
        }
    }
    out
}

/// Render the trace block embedded in success bodies: id, per-phase
/// microsecond attribution in recording order, and span links.
pub fn trace_object(rec: &TraceRecord) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"id\":\"");
    out.push_str(&rec.id.to_hex());
    out.push_str("\",\"phases\":{");
    for (i, p) in rec.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, p.name);
        out.push(':');
        out.push_str(&p.duration_us().to_string());
    }
    out.push_str("}}");
    out
}

/// Splice `,"trace":{...}` into a complete JSON-object body, just before
/// the closing brace. Callers pass the in-flight trace snapshot taken
/// after the last pre-write phase was recorded.
pub fn body_with_trace(body: &str, rec: &TraceRecord) -> String {
    let Some(stripped) = body.strip_suffix('}') else {
        return body.to_string();
    };
    format!("{stripped},\"trace\":{}}}", trace_object(rec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> String {
        "[\"a\",\"b\",\"c\",\"d\"]".to_string()
    }

    #[test]
    fn score_request_round_trip() {
        let body = format!(
            "{{\"question\":\"q?\",\"options\":{},\"group\":3,\"client\":\"c1\"}}",
            options()
        );
        let req = ScoreRequest::parse(&body).unwrap();
        assert_eq!(req.question, "q?");
        assert_eq!(req.options[2], "c");
        assert_eq!(req.group, 3);
        assert_eq!(req.client.as_deref(), Some("c1"));
    }

    #[test]
    fn generate_request_defaults_group_and_seed() {
        let body = format!("{{\"question\":\"q?\",\"options\":{}}}", options());
        let req = GenerateRequest::parse(&body).unwrap();
        assert_eq!(req.group, 0);
        assert_eq!(req.seed, 0);
        assert_eq!(req.client, None);
    }

    #[test]
    fn parse_rejections_are_specific() {
        for (body, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "JSON object"),
            ("{\"options\":[\"a\",\"b\",\"c\",\"d\"]}", "question"),
            ("{\"question\":\"q\",\"options\":[\"a\"]}", "exactly 4"),
            ("{\"question\":\"q\",\"options\":[1,2,3,4]}", "string"),
            (
                "{\"question\":\"q\",\"options\":[\"a\",\"b\",\"c\",\"d\"],\"group\":-1}",
                "group",
            ),
            (
                "{\"question\":\"q\",\"options\":[\"a\",\"b\",\"c\",\"d\"],\"group\":1.5}",
                "group",
            ),
        ] {
            let err = ScoreRequest::parse(body).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn score_body_is_parseable_and_bit_exact() {
        let scores = [-1.5f32, f32::NEG_INFINITY, 0.25, -0.125];
        let body = score_body(&scores, 2);
        let v = Json::parse(&body).unwrap();
        assert!(matches!(v.get("prediction"), Some(Json::Number(n)) if *n == 2.0));
        let Some(Json::Array(bits)) = v.get("score_bits") else {
            panic!("score_bits missing");
        };
        for (bit, s) in bits.iter().zip(scores.iter()) {
            let Json::Number(n) = bit else { panic!("bit not number") };
            assert_eq!(*n as u32, s.to_bits());
        }
        // Non-finite decimal renders as null but the bits stay exact.
        assert!(matches!(
            v.get("scores").and_then(|s| match s {
                Json::Array(a) => a.get(1),
                _ => None,
            }),
            Some(Json::Null)
        ));
    }

    #[test]
    fn generate_body_escapes_raw_output() {
        let body = generate_body(Some(1), ExtractionStage::Pattern, "line\n\"quote\"");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("stage").and_then(Json::as_str), Some("pattern"));
        assert_eq!(v.get("raw").and_then(Json::as_str), Some("line\n\"quote\""));
    }

    #[test]
    fn health_and_error_bodies_parse() {
        assert!(Json::parse(&health_body(true, 7)).is_ok());
        let v = Json::parse(&error_body("bad \"thing\"")).unwrap();
        assert_eq!(v.get("error").and_then(Json::as_str), Some("bad \"thing\""));
    }

    #[test]
    fn metrics_body_parses_with_live_registry() {
        astro_telemetry::metrics::counter("gateway.test.api").add(2);
        astro_telemetry::metrics::histogram("gateway.test.hist").observe(1.0);
        let snap = astro_telemetry::metrics::snapshot();
        let v = Json::parse(&metrics_body(&snap)).unwrap();
        assert!(v.get("counters").is_some());
        assert!(v.get("histograms").is_some());
    }

    #[test]
    fn metrics_body_carries_histogram_exemplars() {
        astro_telemetry::metrics::histogram("gateway.test.exemplar")
            .observe_with_exemplar(7.0, 0xabcd);
        let snap = astro_telemetry::metrics::snapshot();
        let body = metrics_body(&snap);
        let v = Json::parse(&body).unwrap();
        let ex = v
            .get("histograms")
            .and_then(|h| h.get("gateway.test.exemplar"))
            .and_then(|h| h.get("exemplar"))
            .and_then(Json::as_str)
            .expect("exemplar field present");
        assert_eq!(ex, "0000000000000000000000000000abcd");
    }

    #[test]
    fn prometheus_name_sanitizes_to_the_grammar() {
        assert_eq!(prometheus_name("gateway.request_us"), "gateway_request_us");
        assert_eq!(prometheus_name("gateway.endpoint./v1/score.us"), "gateway_endpoint__v1_score_us");
        assert_eq!(prometheus_name("9lives"), "_lives");
    }

    #[test]
    fn prometheus_body_renders_all_metric_kinds() {
        astro_telemetry::metrics::counter("gateway.test.prom_counter").add(3);
        astro_telemetry::metrics::gauge("gateway.test.prom_gauge").set(-2);
        let h = astro_telemetry::metrics::histogram("gateway.test.prom_hist");
        h.observe(10.0);
        h.observe_with_exemplar(30.0, 0xfeed);
        let body = prometheus_body(&astro_telemetry::metrics::snapshot());
        assert!(body.contains("# TYPE gateway_test_prom_counter counter\n"), "{body}");
        assert!(body.contains("gateway_test_prom_counter 3\n"), "{body}");
        assert!(body.contains("# TYPE gateway_test_prom_gauge gauge\n"), "{body}");
        assert!(body.contains("gateway_test_prom_gauge -2\n"), "{body}");
        assert!(body.contains("# TYPE gateway_test_prom_hist summary\n"), "{body}");
        assert!(body.contains("gateway_test_prom_hist{quantile=\"0.5\"}"), "{body}");
        assert!(body.contains("gateway_test_prom_hist{quantile=\"0.99\"}"), "{body}");
        assert!(body.contains("gateway_test_prom_hist_sum 40\n"), "{body}");
        assert!(body.contains("gateway_test_prom_hist_count 2\n"), "{body}");
        assert!(
            body.contains("# EXEMPLAR gateway_test_prom_hist trace_id=000000000000000000000000000"),
            "{body}"
        );
    }

    #[test]
    fn trace_block_splices_into_success_bodies() {
        use astro_telemetry::trace::{self, TraceId};
        let id = TraceId(0x5005_0001);
        assert!(trace::start(id, "gateway./v1/score", None, 100));
        trace::phase(id, "recv", 100, 140);
        trace::phase(id, "queue_wait", 140, 200);
        let rec = trace::inflight_snapshot(id).unwrap();
        let body = body_with_trace(&score_body(&[0.0, 1.0, 2.0, 3.0], 3), &rec);
        let v = Json::parse(&body).unwrap();
        let t = v.get("trace").expect("trace block");
        assert_eq!(
            t.get("id").and_then(Json::as_str),
            Some(id.to_hex().as_str())
        );
        let phases = t.get("phases").expect("phases object");
        assert!(matches!(phases.get("recv"), Some(Json::Number(n)) if *n == 40.0));
        assert!(matches!(phases.get("queue_wait"), Some(Json::Number(n)) if *n == 60.0));
        // Original payload is intact next to the spliced block.
        assert!(matches!(v.get("prediction"), Some(Json::Number(n)) if *n == 3.0));
        trace::finish(id, 200);
    }
}
