//! Bounded MPMC queue between connection handlers and the scheduler.
//!
//! `try_push` never blocks: a full queue is an admission decision (503),
//! not a wait. `pop` blocks (optionally with a timeout) — that is the
//! scheduler's batching clock. The inner mutex is ranked
//! `gateway.queue` in the telemetry lock hierarchy; see
//! `astro_telemetry::lockcheck`.
//!
//! The queue's primitives come from `astro_telemetry::sync` (std in
//! normal builds, the `astro-check` model-checker shim under
//! `--cfg astro_check`), so the push/pop/close protocol is exhaustively
//! explored for deadlocks and lost wakeups by `tests/check_queue.rs`.
//! A poisoned mutex (a producer panicking mid-push via the
//! `gateway.queue_poison` fault site) degrades to poison *recovery*:
//! every critical section leaves the buffer structurally valid, so later
//! callers simply adopt the state as-is.

use astro_resilience::fault;
use astro_telemetry::sync::{self, Condvar, Mutex, PoisonError};
use std::collections::VecDeque;
use std::time::Duration;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A capacity-bounded multi-producer queue with blocking consumption.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    capacity: usize,
}

/// Why a `try_push` was refused. The rejected item is handed back so the
/// caller can answer the client with its reply channel intact.
pub enum PushError<T> {
    /// Queue is at capacity — backpressure, report 503.
    Full(T),
    /// Queue has been closed by shutdown — report 503 (draining).
    Closed(T),
}

/// Result of a blocking `pop`.
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with no item available.
    TimedOut,
    /// The queue is closed *and* empty — the consumer should exit.
    Closed,
}

impl<T> BoundedQueue<T> {
    /// Create a queue refusing pushes beyond `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue without blocking. On success returns the queue depth
    /// *after* the push (for the queue-depth gauge).
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let (_order, mut inner) = sync::lock_ranked("gateway.queue", &self.inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        // Chaos hook: panic while still holding the lock, poisoning the
        // mutex *after* a completed mutation — the recovery contract is
        // that later callers adopt the (valid) buffer as-is.
        if fault::should_fault("gateway.queue_poison") {
            std::panic::panic_any(fault::FaultPanic("gateway.queue_poison"));
        }
        drop(inner);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Dequeue one item. With `timeout: None` blocks until an item
    /// arrives or the queue closes; with a timeout, returns
    /// [`Pop::TimedOut`] once it elapses. A closed queue keeps yielding
    /// buffered items until empty, so a graceful drain loses nothing.
    pub fn pop(&self, timeout: Option<Duration>) -> Pop<T> {
        let (_order, mut inner) = sync::lock_ranked("gateway.queue", &self.inner);
        let deadline = timeout.map(|d| std::time::Instant::now() + d);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            match deadline {
                None => {
                    inner = self
                        .cv
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(dl) => {
                    let now = std::time::Instant::now();
                    if now >= dl {
                        return Pop::TimedOut;
                    }
                    let (guard, _res) = self
                        .cv
                        .wait_timeout(inner, dl - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    inner = guard;
                }
            }
        }
    }

    /// Current queue depth (for `/metricsz` and the depth gauge).
    pub fn depth(&self) -> usize {
        let (_order, inner) = sync::lock_ranked("gateway.queue", &self.inner);
        inner.items.len()
    }

    /// Close the queue: future pushes fail with [`PushError::Closed`],
    /// and consumers see [`Pop::Closed`] once the buffer drains.
    pub fn close(&self) {
        let (_order, mut inner) = sync::lock_ranked("gateway.queue", &self.inner);
        inner.closed = true;
        drop(inner);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_depth() {
        let q = BoundedQueue::new(4);
        assert!(matches!(q.try_push(1), Ok(1)));
        assert!(matches!(q.try_push(2), Ok(2)));
        assert_eq!(q.depth(), 2);
        assert!(matches!(q.pop(None), Pop::Item(1)));
        assert!(matches!(q.pop(None), Pop::Item(2)));
    }

    #[test]
    fn full_queue_rejects_and_returns_item() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push("a").is_ok());
        match q.try_push("b") {
            Err(PushError::Full(item)) => assert_eq!(item, "b"),
            _ => panic!("expected Full"),
        }
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_buffered_items() {
        let q = BoundedQueue::new(4);
        q.try_push(7).ok().unwrap();
        q.close();
        match q.try_push(8) {
            Err(PushError::Closed(item)) => assert_eq!(item, 8),
            _ => panic!("expected Closed"),
        }
        assert!(matches!(q.pop(None), Pop::Item(7)));
        assert!(matches!(q.pop(None), Pop::Closed));
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert!(matches!(
            q.pop(Some(Duration::from_millis(10))),
            Pop::TimedOut
        ));
    }

    #[test]
    fn blocking_pop_wakes_on_push_from_another_thread() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || match q2.pop(None) {
            Pop::Item(v) => v,
            _ => panic!("expected item"),
        });
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42u32).ok().unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || matches!(q2.pop(None), Pop::Closed));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(t.join().unwrap());
    }
}
