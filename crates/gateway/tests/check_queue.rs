//! Model-check the real [`BoundedQueue`] push/pop/close protocol.
//!
//! Build with `RUSTFLAGS="--cfg astro_check"`; in normal builds this file
//! compiles to nothing. The checker explores every interleaving (up to
//! the preemption bound) of producers, a consumer and `close`, asserting:
//!
//! * no deadlock and no lost wakeup (the checker's built-in guarantees);
//! * the queue never holds more than `capacity` items;
//! * a graceful drain delivers every accepted item, in FIFO order.
#![cfg(astro_check)]

use astro_check::{explore, CheckConfig};
use astro_gateway::queue::{BoundedQueue, Pop, PushError};
use astro_telemetry::sync::thread;
use std::sync::Arc;

fn cfg() -> CheckConfig {
    CheckConfig::default()
}

#[test]
fn drain_delivers_every_accepted_item_in_order() {
    let report = explore(&cfg(), || {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            let mut accepted = 0u32;
            for v in 1..=2u32 {
                if q2.try_push(v).is_ok() {
                    accepted += 1;
                }
            }
            q2.close();
            accepted
        });
        let mut drained: Vec<u32> = Vec::new();
        loop {
            match q.pop(None) {
                Pop::Item(v) => drained.push(v),
                Pop::Closed => break,
                Pop::TimedOut => unreachable!("pop(None) cannot time out"),
            }
        }
        let accepted = producer.join().unwrap_or_else(|_| panic!("producer panicked"));
        assert_eq!(drained.len() as u32, accepted, "drain lost accepted items");
        for w in drained.windows(2) {
            assert!(w[0] < w[1], "FIFO order violated: {drained:?}");
        }
    });
    assert!(report.ok(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(report.schedules > 1, "expected interleavings, got {}", report.schedules);
}

#[test]
fn capacity_is_never_exceeded_and_rejects_hand_items_back() {
    let report = explore(&cfg(), || {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            let mut accepted = 0u32;
            for v in [10u32, 20u32] {
                match q2.try_push(v) {
                    Ok(depth) => {
                        assert!(depth <= 1, "depth {depth} exceeds capacity 1");
                        accepted += 1;
                    }
                    Err(PushError::Full(item)) => assert_eq!(item, v, "rejected item lost"),
                    Err(PushError::Closed(_)) => unreachable!("queue is never closed here"),
                }
            }
            q2.close();
            accepted
        });
        let mut drained = 0u32;
        loop {
            assert!(q.depth() <= 1, "queue depth exceeded capacity");
            match q.pop(None) {
                Pop::Item(_) => drained += 1,
                Pop::Closed => break,
                Pop::TimedOut => unreachable!("pop(None) cannot time out"),
            }
        }
        let accepted = producer.join().unwrap_or_else(|_| panic!("producer panicked"));
        assert_eq!(drained, accepted);
    });
    assert!(report.ok(), "{:?}", report.violation);
    assert!(!report.truncated);
}

#[test]
fn two_consumers_close_wakes_everyone() {
    // The lost-wakeup shape: two blocked consumers, one close. `close`
    // uses notify_all — if it used notify_one, one consumer would sleep
    // forever and the checker would report a deadlock.
    let report = explore(&cfg(), || {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(2));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = 0u32;
                    loop {
                        match q.pop(None) {
                            Pop::Item(_) => got += 1,
                            Pop::Closed => return got,
                            Pop::TimedOut => unreachable!("pop(None) cannot time out"),
                        }
                    }
                })
            })
            .collect();
        let _ = q.try_push(7);
        q.close();
        let total: u32 = consumers
            .into_iter()
            .map(|c| c.join().unwrap_or_else(|_| panic!("consumer panicked")))
            .sum();
        assert_eq!(total, 1, "the single accepted item must be delivered exactly once");
    });
    assert!(report.ok(), "{:?}", report.violation);
    assert!(!report.truncated);
}
