//! Property tests for the token-bucket rate limiter.
//!
//! Deterministic randomized trials (seeded `astro_prng::Rng`, no wall
//! clock: every admit uses an explicit `Instant` offset) over random
//! `(rate, burst)` configurations and random request schedules. Three
//! families of properties:
//!
//! * **burst cap** — at any single instant a fresh client is granted
//!   exactly `floor(burst)` requests, and over any schedule the total
//!   grants never exceed the tokens conservation bound
//!   `burst + rate·elapsed + 1`;
//! * **refill monotonicity** — while a client keeps getting rejected,
//!   later `Retry-After` hints never grow (rejections consume nothing
//!   and refill only accumulates), and waiting never revokes an
//!   admission that an earlier instant would have granted;
//! * **Retry-After consistency** — the hint is an upper bound the
//!   limiter honours: retrying exactly `Retry-After` seconds later is
//!   always granted, and the hint is never zero.

use astro_gateway::limiter::{Admission, RateLimiter};
use astro_prng::Rng;
use std::time::{Duration, Instant};

/// Trials per property; each trial draws a fresh configuration.
const TRIALS: usize = 100;

/// Draw a limiter configuration: rate in [0.1, 50) tokens/sec, burst in
/// [1, 20] tokens (integral, so `floor(burst)` grants are unambiguous).
fn draw_config(rng: &mut Rng) -> (f64, f64) {
    let rate = 0.1 + rng.f64() * 49.9;
    let burst = rng.range(1, 21) as f64;
    (rate, burst)
}

#[test]
fn fresh_client_burst_is_exactly_floor_burst_at_one_instant() {
    let mut rng = Rng::seed_from(0x11a1_7e57);
    for trial in 0..TRIALS {
        let (rate, burst) = draw_config(&mut rng);
        let lim = RateLimiter::new(rate, burst);
        let t0 = Instant::now();
        let mut granted = 0usize;
        for _ in 0..(burst as usize + 5) {
            if lim.admit_at("c", t0) == Admission::Granted {
                granted += 1;
            }
        }
        assert_eq!(
            granted, burst as usize,
            "trial {trial}: rate={rate} burst={burst}: {granted} grants at one instant"
        );
    }
}

#[test]
fn grants_never_exceed_token_conservation_bound() {
    let mut rng = Rng::seed_from(0xb0c4_e7b1);
    for trial in 0..TRIALS {
        let (rate, burst) = draw_config(&mut rng);
        let lim = RateLimiter::new(rate, burst);
        let t0 = Instant::now();
        let mut now = t0;
        let mut granted = 0u64;
        for _ in 0..200 {
            // Random gap 0..500ms, occasionally a long idle period that
            // must not bank more than `burst` tokens.
            let gap_ms = if rng.range(0, 20) == 0 { 5_000 } else { rng.range_u64(0, 500) };
            now += Duration::from_millis(gap_ms);
            if lim.admit_at("c", now) == Admission::Granted {
                granted += 1;
            }
        }
        let elapsed = now.duration_since(t0).as_secs_f64();
        let bound = burst + rate * elapsed + 1.0;
        assert!(
            (granted as f64) <= bound,
            "trial {trial}: rate={rate} burst={burst}: {granted} grants > bound {bound:.1} \
             over {elapsed:.1}s"
        );
    }
}

#[test]
fn retry_after_hints_shrink_while_rejected() {
    let mut rng = Rng::seed_from(0x5eed_5eed);
    for trial in 0..TRIALS {
        // Slow rates make multi-second deficits, so hints have room to
        // step downward.
        let rate = 0.05 + rng.f64() * 0.45;
        let burst = rng.range(1, 4) as f64;
        let lim = RateLimiter::new(rate, burst);
        let t0 = Instant::now();
        let mut now = t0;
        // Drain the bucket.
        while lim.admit_at("c", now) == Admission::Granted {}
        let mut last_hint = u64::MAX;
        loop {
            match lim.admit_at("c", now) {
                Admission::Granted => break,
                Admission::RetryAfter(s) => {
                    assert!(s >= 1, "trial {trial}: zero Retry-After");
                    assert!(
                        s <= last_hint,
                        "trial {trial}: rate={rate} burst={burst}: hint grew {last_hint} -> {s} \
                         with no intervening grant"
                    );
                    last_hint = s;
                    now += Duration::from_millis(200 + rng.range_u64(0, 300));
                }
            }
        }
    }
}

#[test]
fn waiting_the_advertised_retry_after_is_always_granted() {
    let mut rng = Rng::seed_from(0xc0ff_ee00);
    for trial in 0..TRIALS {
        let (rate, burst) = draw_config(&mut rng);
        let lim = RateLimiter::new(rate, burst);
        let t0 = Instant::now();
        let mut now = t0;
        // Random prefix of traffic to land the bucket in an arbitrary state.
        for _ in 0..rng.range(1, 40) {
            now += Duration::from_millis(rng.range_u64(1, 200));
            let _ = lim.admit_at("c", now);
        }
        // Force at least one rejection, then honour the hint exactly.
        while lim.admit_at("c", now) == Admission::Granted {}
        let hint = match lim.admit_at("c", now) {
            Admission::RetryAfter(s) => s,
            Admission::Granted => unreachable!("drained above"),
        };
        let retry_at = now + Duration::from_secs(hint);
        assert_eq!(
            lim.admit_at("c", retry_at),
            Admission::Granted,
            "trial {trial}: rate={rate} burst={burst}: rejected after waiting the \
             advertised {hint}s"
        );
    }
}

#[test]
fn refill_is_monotone_in_elapsed_time() {
    // If the limiter would grant a request after waiting `d`, it must
    // also grant after any longer wait `d' > d` (same bucket state:
    // probe via two identically-driven limiters).
    let mut rng = Rng::seed_from(0x0d15_ea5e);
    for trial in 0..TRIALS {
        let (rate, burst) = draw_config(&mut rng);
        let a = RateLimiter::new(rate, burst);
        let b = RateLimiter::new(rate, burst);
        let t0 = Instant::now();
        let mut now = t0;
        // Identical random drive on both limiters.
        for _ in 0..rng.range(1, 60) {
            now += Duration::from_millis(rng.range_u64(1, 150));
            let ra = a.admit_at("c", now);
            let rb = b.admit_at("c", now);
            assert_eq!(ra, rb, "trial {trial}: identical drives diverged");
        }
        let short = Duration::from_millis(500 + rng.range_u64(0, 2_000));
        let extra = Duration::from_millis(1 + rng.range_u64(0, 3_000));
        if a.admit_at("c", now + short) == Admission::Granted {
            assert_eq!(
                b.admit_at("c", now + short + extra),
                Admission::Granted,
                "trial {trial}: rate={rate} burst={burst}: waiting longer lost the grant"
            );
        }
    }
}
