//! Offline analyzer for the telemetry trace stream.
//!
//! The gateway writes finished request traces as single-line `trace`
//! events (see `astro_telemetry::trace::TraceRecord::to_json_line`).
//! This crate reads those lines back — with the repo's own JSON-subset
//! parser, no new dependencies — and turns them into the three artifacts
//! operators actually look at:
//!
//! * **waterfalls** ([`render_waterfall`]) — one ASCII timeline per
//!   trace, each phase a proportional bar, for eyeballing where a slow
//!   request spent its time;
//! * **a phase table** ([`render_phase_table`]) — exact p50/p95/p99/max
//!   per phase across every trace, the aggregate latency-attribution
//!   view the `gateway_load` bench reports;
//! * **Chrome Trace Event JSON** ([`chrome_trace_json`]) — a
//!   `{"traceEvents":[...]}` export loadable in `chrome://tracing` /
//!   Perfetto, one complete (`"ph":"X"`) event per phase plus one per
//!   trace, grouped so each trace gets its own row.
//!
//! Parsing is tolerant by design: non-trace lines (spans, metrics, log
//! events share the same JSONL sink) are skipped, and a count of skipped
//! lines is reported rather than failing the file.

use astro_eval::json::Json;
use astro_telemetry::event::write_json_string;

/// One phase of a parsed trace: name plus `[start_us, end_us]` in the
/// emitting process's monotonic clock.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSlice {
    /// Phase name (`queue_wait`, `prefill`, …).
    pub name: String,
    /// Phase start, µs since the emitting process's epoch.
    pub start_us: u64,
    /// Phase end, µs; always `>= start_us`.
    pub end_us: u64,
}

impl PhaseSlice {
    /// Phase duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One parsed `trace` event.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedTrace {
    /// 32-hex-char trace id.
    pub id: String,
    /// Trace name, e.g. `gateway./v1/score`.
    pub name: String,
    /// Final status (HTTP status for gateway traces; 0 = dropped).
    pub status: u16,
    /// Trace start, µs since the emitting process's epoch.
    pub start_us: u64,
    /// Trace end, µs.
    pub end_us: u64,
    /// Why tail sampling kept this trace (`deadline`/`error`/`fault`/
    /// `slow`/`sampled`).
    pub keep: String,
    /// Flag labels set on the trace (`error`, `deadline`, `fault`, `slow`).
    pub flags: Vec<String>,
    /// Phases in recording order.
    pub phases: Vec<PhaseSlice>,
    /// Linked span names (cross-thread causality edges, e.g.
    /// `gateway.batch`) with their span ids.
    pub links: Vec<(String, u64)>,
}

impl ParsedTrace {
    /// End-to-end duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Sum of phase durations; for gateway traces the phases tile the
    /// request's wall time, so this approximates [`Self::duration_us`].
    pub fn phase_total_us(&self) -> u64 {
        self.phases.iter().map(PhaseSlice::duration_us).sum()
    }
}

/// Result of reading a JSONL file: the traces plus a count of lines that
/// were not trace events (spans, metrics, logs, blanks).
#[derive(Clone, Debug, Default)]
pub struct ParseReport {
    /// Every successfully parsed trace, in file order.
    pub traces: Vec<ParsedTrace>,
    /// Lines skipped because they were not `trace` events.
    pub skipped: usize,
    /// Lines that looked like trace events but failed to parse, with
    /// 1-based line numbers and reasons.
    pub malformed: Vec<(usize, String)>,
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Json::Number(n)) if *n >= 0.0 && n.is_finite() => Ok(*n as u64),
        Some(_) => Err(format!("field {key:?} is not a non-negative number")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Json::String(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field {key:?} is not a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

/// Parse one JSONL line as a trace event. `Ok(None)` means the line is
/// valid JSON but not a trace event (some other telemetry line).
pub fn parse_trace_line(line: &str) -> Result<Option<ParsedTrace>, String> {
    let v = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.get("event").and_then(Json::as_str) != Some("trace") {
        return Ok(None);
    }
    let mut phases = Vec::new();
    if let Some(Json::Array(items)) = v.get("phases") {
        for p in items {
            phases.push(PhaseSlice {
                name: field_str(p, "name")?,
                start_us: field_u64(p, "start_us")?,
                end_us: field_u64(p, "end_us")?,
            });
        }
    }
    let mut flags = Vec::new();
    if let Some(Json::Array(items)) = v.get("flags") {
        for f in items {
            if let Some(s) = f.as_str() {
                flags.push(s.to_string());
            }
        }
    }
    let mut links = Vec::new();
    if let Some(Json::Array(items)) = v.get("links") {
        for l in items {
            links.push((field_str(l, "span")?, field_u64(l, "id")?));
        }
    }
    Ok(Some(ParsedTrace {
        id: field_str(&v, "trace")?,
        name: field_str(&v, "name")?,
        status: field_u64(&v, "status")? as u16,
        start_us: field_u64(&v, "start_us")?,
        end_us: field_u64(&v, "end_us")?,
        keep: field_str(&v, "keep")?,
        flags,
        phases,
        links,
    }))
}

/// Parse a whole JSONL document (one event per line).
pub fn parse_jsonl(text: &str) -> ParseReport {
    let mut report = ParseReport::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_trace_line(line) {
            Ok(Some(t)) => report.traces.push(t),
            Ok(None) => report.skipped += 1,
            Err(e) => report.malformed.push((i + 1, e)),
        }
    }
    report
}

/// Aggregate latency statistics for one phase name across many traces.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    /// Phase name.
    pub name: String,
    /// How many traces recorded this phase at least once.
    pub count: usize,
    /// Median per-trace duration, µs.
    pub p50_us: u64,
    /// 95th-percentile per-trace duration, µs.
    pub p95_us: u64,
    /// 99th-percentile per-trace duration, µs.
    pub p99_us: u64,
    /// Maximum per-trace duration, µs.
    pub max_us: u64,
    /// Sum across all traces, µs — the attribution denominator.
    pub total_us: u64,
}

/// Exact (nearest-rank) percentile over a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Compute per-phase statistics. A trace contributes one sample per
/// phase name (durations summed if the phase repeats within the trace);
/// phases appear in first-seen order across the file.
pub fn phase_stats(traces: &[ParsedTrace]) -> Vec<PhaseStat> {
    let mut order: Vec<String> = Vec::new();
    let mut samples: std::collections::HashMap<String, Vec<u64>> =
        std::collections::HashMap::new();
    for t in traces {
        let mut per_trace: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        for p in &t.phases {
            *per_trace.entry(p.name.as_str()).or_insert(0) += p.duration_us();
        }
        // Preserve first-seen order via the trace's own phase sequence.
        for p in &t.phases {
            if !order.iter().any(|n| n == &p.name) {
                order.push(p.name.clone());
            }
        }
        for (name, dur) in per_trace {
            samples.entry(name.to_string()).or_default().push(dur);
        }
    }
    order
        .into_iter()
        .map(|name| {
            let mut xs = samples.remove(&name).unwrap_or_default();
            xs.sort_unstable();
            PhaseStat {
                count: xs.len(),
                p50_us: percentile(&xs, 50.0),
                p95_us: percentile(&xs, 95.0),
                p99_us: percentile(&xs, 99.0),
                max_us: xs.last().copied().unwrap_or(0),
                total_us: xs.iter().sum(),
                name,
            }
        })
        .collect()
}

/// Render the per-phase attribution table: p50/p95/p99/max per phase plus
/// each phase's share of total attributed time.
pub fn render_phase_table(traces: &[ParsedTrace]) -> String {
    let stats = phase_stats(traces);
    let grand_total: u64 = stats.iter().map(|s| s.total_us).sum();
    let mut out = format!(
        "phase attribution over {} traces (µs):\n{:<12} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}\n",
        traces.len(),
        "phase",
        "count",
        "p50",
        "p95",
        "p99",
        "max",
        "share"
    );
    for s in &stats {
        let share = if grand_total > 0 {
            100.0 * s.total_us as f64 / grand_total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<12} {:>7} {:>9} {:>9} {:>9} {:>9} {:>6.1}%\n",
            s.name, s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us, share
        ));
    }
    out
}

/// Render one trace as an ASCII waterfall: a header line, then one
/// proportional bar per phase on a shared `width`-column timeline.
pub fn render_waterfall(t: &ParsedTrace, width: usize) -> String {
    let width = width.max(10);
    let span = t.duration_us().max(1) as f64;
    let mut out = format!(
        "{} {} status={} {}µs keep={}{}\n",
        t.id,
        t.name,
        t.status,
        t.duration_us(),
        t.keep,
        if t.flags.is_empty() {
            String::new()
        } else {
            format!(" [{}]", t.flags.join(","))
        }
    );
    for p in &t.phases {
        let rel0 = p.start_us.saturating_sub(t.start_us) as f64 / span;
        let rel1 = p.end_us.saturating_sub(t.start_us) as f64 / span;
        let a = ((rel0 * width as f64) as usize).min(width - 1);
        let b = (((rel1 * width as f64).ceil()) as usize).clamp(a + 1, width);
        let mut bar = String::with_capacity(width);
        for i in 0..width {
            bar.push(if i >= a && i < b { '#' } else { '.' });
        }
        out.push_str(&format!(
            "  {:<12} |{bar}| {}µs\n",
            p.name,
            p.duration_us()
        ));
    }
    out
}

/// Render waterfalls for the `limit` slowest traces, slowest first.
pub fn render_waterfalls(traces: &[ParsedTrace], width: usize, limit: usize) -> String {
    let mut by_dur: Vec<&ParsedTrace> = traces.iter().collect();
    by_dur.sort_by_key(|t| std::cmp::Reverse(t.duration_us()));
    let mut out = String::new();
    for t in by_dur.into_iter().take(limit) {
        out.push_str(&render_waterfall(t, width));
        out.push('\n');
    }
    out
}

/// Export traces in the Chrome Trace Event Format (the JSON Object
/// variant): one complete event (`"ph":"X"`) per phase plus one per
/// trace, all on `pid` 1 with each trace on its own `tid` row so
/// `chrome://tracing` and Perfetto render one lane per request.
pub fn chrome_trace_json(traces: &[ParsedTrace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_event =
        |out: &mut String, name: &str, cat: &str, ts: u64, dur: u64, tid: usize, id: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_json_string(out, name);
            out.push_str(",\"cat\":");
            write_json_string(out, cat);
            out.push_str(&format!(
                ",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\"tid\":{tid},\"args\":{{\"trace_id\":"
            ));
            write_json_string(out, id);
            out.push_str("}}");
        };
    for (tid, t) in traces.iter().enumerate() {
        push_event(
            &mut out,
            &t.name,
            "request",
            t.start_us,
            t.duration_us().max(1),
            tid,
            &t.id,
        );
        for p in &t.phases {
            push_event(
                &mut out,
                &p.name,
                "phase",
                p.start_us,
                p.duration_us().max(1),
                tid,
                &t.id,
            );
        }
    }
    out.push_str("]}");
    out
}

/// Validate a Chrome export: parses as JSON and contains exactly the
/// expected number of events (one per trace plus one per phase). Returns
/// the event count.
pub fn validate_chrome_json(chrome: &str, traces: &[ParsedTrace]) -> Result<usize, String> {
    let v = Json::parse(chrome).map_err(|e| format!("chrome export is not valid JSON: {e}"))?;
    let Some(Json::Array(events)) = v.get("traceEvents") else {
        return Err("chrome export lacks a traceEvents array".to_string());
    };
    let expected: usize = traces.iter().map(|t| 1 + t.phases.len()).sum();
    if events.len() != expected {
        return Err(format!(
            "chrome export has {} events, expected {expected}",
            events.len()
        ));
    }
    for e in events {
        for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
            if e.get(key).is_none() {
                return Err(format!("chrome event missing {key:?}"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_telemetry::trace::{TraceFlags, TraceId, TraceRecord};

    fn sample_record(id: u128, status: u16) -> TraceRecord {
        TraceRecord {
            id: TraceId(id),
            name: "gateway./v1/score".to_string(),
            parent_span: None,
            start_us: 1000,
            end_us: 1400,
            status,
            flags: TraceFlags {
                error: status >= 500,
                deadline: false,
                fault: false,
                slow: false,
            },
            keep: if status >= 500 { "error" } else { "sampled" },
            attrs: Vec::new(),
            nums: Vec::new(),
            phases: vec![
                astro_telemetry::trace::Phase {
                    name: "recv",
                    start_us: 1000,
                    end_us: 1100,
                },
                astro_telemetry::trace::Phase {
                    name: "prefill",
                    start_us: 1100,
                    end_us: 1350,
                },
                astro_telemetry::trace::Phase {
                    name: "write",
                    start_us: 1350,
                    end_us: 1400,
                },
            ],
            links: vec![("gateway.batch", 7)],
        }
    }

    #[test]
    fn round_trips_the_telemetry_emitter() {
        let rec = sample_record(0xabc, 200);
        let line = rec.to_json_line();
        let parsed = parse_trace_line(&line).unwrap().expect("is a trace");
        assert_eq!(parsed.id, rec.id.to_hex());
        assert_eq!(parsed.name, "gateway./v1/score");
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.duration_us(), 400);
        assert_eq!(parsed.phases.len(), 3);
        assert_eq!(parsed.phases[1].name, "prefill");
        assert_eq!(parsed.phases[1].duration_us(), 250);
        assert_eq!(parsed.phase_total_us(), 400);
        assert_eq!(parsed.links, vec![("gateway.batch".to_string(), 7)]);
    }

    #[test]
    fn jsonl_mixes_trace_and_other_events() {
        let text = format!(
            "{}\n{{\"event\":\"span_end\",\"name\":\"x\"}}\n\nnot json at all\n{}\n",
            sample_record(1, 200).to_json_line(),
            sample_record(2, 500).to_json_line()
        );
        let report = parse_jsonl(&text);
        assert_eq!(report.traces.len(), 2);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.malformed.len(), 1);
        assert_eq!(report.malformed[0].0, 4);
        assert_eq!(report.traces[1].flags, vec!["error".to_string()]);
    }

    #[test]
    fn phase_table_has_exact_percentiles_and_shares() {
        let traces: Vec<ParsedTrace> = (0..4)
            .map(|i| parse_trace_line(&sample_record(i, 200).to_json_line()).unwrap().unwrap())
            .collect();
        let stats = phase_stats(&traces);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].name, "recv");
        assert_eq!(stats[0].count, 4);
        assert_eq!(stats[0].p50_us, 100);
        assert_eq!(stats[0].p99_us, 100);
        let table = render_phase_table(&traces);
        assert!(table.contains("recv"), "{table}");
        assert!(table.contains("25.0%"), "{table}"); // 100 of 400 µs
        assert!(table.contains("62.5%"), "{table}"); // 250 of 400 µs
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50.0), 50);
        assert_eq!(percentile(&xs, 95.0), 95);
        assert_eq!(percentile(&xs, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn waterfall_bars_are_proportional() {
        let t = parse_trace_line(&sample_record(3, 200).to_json_line()).unwrap().unwrap();
        let out = render_waterfall(&t, 40);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("status=200"), "{out}");
        assert!(lines[0].contains("400µs"), "{out}");
        // recv covers the first quarter: 10 of 40 columns.
        let recv_cols = lines[1].matches('#').count();
        assert!((9..=11).contains(&recv_cols), "{out}");
        // prefill is the biggest phase: more columns than recv.
        let prefill_cols = lines[2].matches('#').count();
        assert!(prefill_cols > recv_cols, "{out}");
    }

    #[test]
    fn chrome_export_round_trips_and_counts() {
        let traces: Vec<ParsedTrace> = (0..3)
            .map(|i| parse_trace_line(&sample_record(i, 200).to_json_line()).unwrap().unwrap())
            .collect();
        let chrome = chrome_trace_json(&traces);
        // 3 traces × (1 request event + 3 phase events) = 12.
        assert_eq!(validate_chrome_json(&chrome, &traces), Ok(12));
        let v = Json::parse(&chrome).unwrap();
        let Some(Json::Array(events)) = v.get("traceEvents") else {
            panic!("no traceEvents");
        };
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(
            events[0].get("args").and_then(|a| a.get("trace_id")).and_then(Json::as_str),
            Some(traces[0].id.as_str())
        );
    }
}
