//! `astro-trace` — analyze a telemetry JSONL file's trace events.
//!
//! ```sh
//! astro-trace phases    telemetry.jsonl            # per-phase p50/p95/p99 table
//! astro-trace waterfall telemetry.jsonl [limit]    # slowest-N ASCII waterfalls
//! astro-trace chrome    telemetry.jsonl [out.json] # Chrome Trace Event export
//! ```
//!
//! The input is any JSONL stream produced by the telemetry sink (trace
//! events mixed with spans/metrics/logs is fine; non-trace lines are
//! skipped). `chrome` writes `trace_chrome.json` by default — load it in
//! `chrome://tracing` or Perfetto.

use astro_trace::{chrome_trace_json, parse_jsonl, render_phase_table, render_waterfalls, validate_chrome_json};

fn usage() -> ! {
    eprintln!(
        "usage: astro-trace <phases|waterfall|chrome> <file.jsonl> [limit|out.json]\n\
         \n\
         phases     per-phase p50/p95/p99/max attribution table\n\
         waterfall  ASCII waterfalls for the slowest traces (default limit 10)\n\
         chrome     Chrome Trace Event JSON export (default out: trace_chrome.json)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (Some(cmd), Some(path)) = (args.get(1), args.get(2)) else {
        usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("astro-trace: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let report = parse_jsonl(&text);
    if !report.malformed.is_empty() {
        for (line, why) in report.malformed.iter().take(5) {
            eprintln!("astro-trace: line {line}: {why}");
        }
        eprintln!(
            "astro-trace: {} malformed line(s); continuing with {} traces",
            report.malformed.len(),
            report.traces.len()
        );
    }
    if report.traces.is_empty() {
        eprintln!(
            "astro-trace: no trace events in {path} ({} other lines)",
            report.skipped
        );
        std::process::exit(1);
    }

    match cmd.as_str() {
        "phases" => {
            print!("{}", render_phase_table(&report.traces));
        }
        "waterfall" => {
            let limit = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(10);
            print!("{}", render_waterfalls(&report.traces, 60, limit));
        }
        "chrome" => {
            let out_path = args
                .get(3)
                .cloned()
                .unwrap_or_else(|| "trace_chrome.json".to_string());
            let chrome = chrome_trace_json(&report.traces);
            match validate_chrome_json(&chrome, &report.traces) {
                Ok(n) => {
                    if let Err(e) = std::fs::write(&out_path, &chrome) {
                        eprintln!("astro-trace: cannot write {out_path}: {e}");
                        std::process::exit(1);
                    }
                    println!(
                        "astro-trace: wrote {n} events for {} traces to {out_path}",
                        report.traces.len()
                    );
                }
                Err(e) => {
                    eprintln!("astro-trace: export failed self-validation: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
