//! Reusable discrete distributions.
//!
//! The synthetic world samples entities and facts with highly skewed
//! frequencies (a few famous objects appear in many papers, most appear in
//! few) — a Zipf distribution — and samples categorical choices repeatedly
//! from fixed weight vectors, for which a precomputed cumulative table
//! beats rescanning the weights.

use crate::Rng;

/// A categorical distribution with a precomputed cumulative table.
///
/// Sampling is `O(log n)` via binary search, which matters when the same
/// distribution is sampled millions of times during corpus generation.
#[derive(Clone, Debug)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Build from unnormalised non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Categorical requires at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "Categorical weights sum to zero");
        // Normalise so the final entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= acc;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Categorical { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there is exactly one category (sampling is trivial).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees at least one category
    }

    /// Draw a category index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        // `total_cmp` keeps the search total even if a weight degenerated
        // to NaN upstream; NaN cumulative entries sort after every real
        // `u`, which clamps to the final category instead of panicking.
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// A Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^(-s)`.
///
/// Used to give the synthetic world a realistic popularity skew: a handful
/// of entities ("the M87 analogue") dominate the literature while a long
/// tail appears rarely — exactly the regime where CPT either reinforces or
/// erodes knowledge.
#[derive(Clone, Debug)]
pub struct Zipf {
    table: Categorical,
}

impl Zipf {
    /// Build a Zipf distribution over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf requires n > 0");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        Zipf {
            table: Categorical::new(&weights),
        }
    }

    /// Number of ranks (always > 0 by construction).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Draw a 0-based rank (0 is the most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_single_category() {
        let c = Categorical::new(&[3.0]);
        let mut r = Rng::seed_from(0);
        for _ in 0..100 {
            assert_eq!(c.sample(&mut r), 0);
        }
    }

    #[test]
    fn categorical_zero_weight_never_sampled() {
        let c = Categorical::new(&[1.0, 0.0, 1.0]);
        let mut r = Rng::seed_from(1);
        for _ in 0..2000 {
            assert_ne!(c.sample(&mut r), 1);
        }
    }

    #[test]
    fn categorical_matches_weights() {
        let c = Categorical::new(&[1.0, 2.0, 1.0]);
        let mut r = Rng::seed_from(2);
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[c.sample(&mut r)] += 1;
        }
        let f1 = counts[1] as f64 / n as f64;
        assert!((f1 - 0.5).abs() < 0.02, "middle fraction {f1}");
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_empty() {
        Categorical::new(&[]);
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_negative() {
        Categorical::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(50, 1.2);
        let mut r = Rng::seed_from(3);
        let n = 30_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49]);
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut r = Rng::seed_from(4);
        let n = 40_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.25).abs() < 0.02, "uniform fraction {f}");
        }
    }

    #[test]
    fn zipf_covers_all_ranks() {
        let z = Zipf::new(8, 1.0);
        let mut r = Rng::seed_from(5);
        let mut seen = [false; 8];
        for _ in 0..5000 {
            seen[z.sample(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
