//! SplitMix64: a tiny, fast 64-bit generator used for seed expansion.
//!
//! SplitMix64 (Steele, Lea & Flood 2014) has a single 64-bit word of state
//! and an equidistributed output function, which makes it ideal for turning
//! an arbitrary user seed into the four non-zero state words required by
//! `xoshiro256**`, and for hashing substream labels into fresh seeds.

/// A SplitMix64 generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator with the given state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produce the next 64-bit output and advance the state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs from the public-domain C implementation by
    /// Sebastiano Vigna (seed = 1234567).
    #[test]
    fn matches_reference_vector() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
