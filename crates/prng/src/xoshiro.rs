//! `xoshiro256**` — the workhorse generator (Blackman & Vigna 2018).
//!
//! 256 bits of state, period 2^256 − 1, passes BigCrush. The `**` scrambler
//! makes all 64 output bits high quality, so truncation to 32 bits or
//! mantissa extraction is safe.

use crate::splitmix::SplitMix64;

/// A `xoshiro256**` generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// The original user seed, preserved so substream derivation can be
    /// position-independent.
    seed: u64,
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion, as recommended by the authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s, seed }
    }

    /// A stable fingerprint of the seed material (not the evolving state);
    /// used for deriving child streams.
    pub fn seed_fingerprint(&self) -> u64 {
        // Mix the seed once so substream hashing starts from a dispersed
        // value even for tiny seeds like 0, 1, 2.
        SplitMix64::new(self.seed ^ 0xa5a5_5a5a_c3c3_3c3c).next_u64()
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The `jump()` function: equivalent to 2^128 calls to `next_u64`,
    /// producing a non-overlapping stream. Useful for coarse stream
    /// splitting when label-based substreams are not convenient.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180ec6d33cfd0aba,
            0xd5a61266f0c9392c,
            0xa9582618e03fc9aa,
            0x39abdc4529b1661c,
        ];
        let mut s = [0u64; 4];
        for &j in &JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector computed with the public-domain C implementation:
    /// state seeded by SplitMix64(42).
    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from(42);
        let mut b = Xoshiro256::seed_from(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_changes_stream() {
        let mut a = Xoshiro256::seed_from(7);
        let mut b = Xoshiro256::seed_from(7);
        b.jump();
        let collisions = (0..128).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn fingerprint_stable_under_generation() {
        let mut x = Xoshiro256::seed_from(3);
        let f0 = x.seed_fingerprint();
        for _ in 0..100 {
            x.next_u64();
        }
        assert_eq!(f0, x.seed_fingerprint());
    }

    #[test]
    fn output_bits_look_balanced() {
        let mut x = Xoshiro256::seed_from(1);
        let n = 10_000;
        let mut ones = 0u64;
        for _ in 0..n {
            ones += x.next_u64().count_ones() as u64;
        }
        let frac = ones as f64 / (n as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
