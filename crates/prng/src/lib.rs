//! Deterministic, seedable pseudo-random number generation for the
//! AstroMLab 2 reproduction.
//!
//! Every stochastic component of the reproduction — synthetic-world
//! generation, parameter initialisation, data shuffling, sampling during
//! generation — draws from this crate so that a single master seed fully
//! determines an experiment. The implementation is self-contained (no
//! external `rand` dependency) to guarantee bit-for-bit reproducibility
//! across toolchain and dependency upgrades.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit state generator, used for seeding and
//!   for deriving independent substreams from string labels.
//! * [`Xoshiro256`] — `xoshiro256**`, the workhorse generator used for all
//!   bulk sampling. Fast, passes BigCrush, 256-bit state.
//!
//! # Substreams
//!
//! Experiments need many independent random streams (one per document
//! generator, per model init, per data loader, ...). [`Rng::substream`]
//! derives a child generator by hashing a textual label into the parent's
//! seed fingerprint, so adding a new consumer never perturbs existing
//! streams:
//!
//! ```
//! use astro_prng::Rng;
//! let root = Rng::seed_from(42);
//! let mut init = root.substream("model-init");
//! let mut data = root.substream("data-order");
//! assert_ne!(init.next_u64(), data.next_u64());
//! ```

mod distributions;
mod splitmix;
mod xoshiro;

pub use distributions::{Categorical, Zipf};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256;

/// The crate-standard generator: `xoshiro256**` seeded via SplitMix64,
/// with a convenience sampling API layered on top.
///
/// `Rng` is deliberately `Clone`: cloning produces a generator that will
/// emit the identical sequence, which is occasionally useful in tests.
/// For *independent* streams use [`Rng::substream`].
#[derive(Clone, Debug)]
pub struct Rng {
    core: Xoshiro256,
    /// Cached second Gaussian variate from the polar method.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; SplitMix64 expansion guarantees a non-degenerate state.
    pub fn seed_from(seed: u64) -> Self {
        Rng {
            core: Xoshiro256::seed_from(seed),
            gauss_spare: None,
        }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// The child's seed is a hash of the parent's *initial* seed material
    /// and the label, so the derivation is insensitive to how many values
    /// the parent has already produced.
    pub fn substream(&self, label: &str) -> Rng {
        let mut h = self.core.seed_fingerprint();
        for &b in label.as_bytes() {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64).rotate_left(7);
        }
        Rng::seed_from(SplitMix64::new(h).next_u64())
    }

    /// Derive an independent child stream identified by a label plus an
    /// integer index (e.g. one stream per document).
    pub fn substream_idx(&self, label: &str, idx: u64) -> Rng {
        let mut h = self.core.seed_fingerprint() ^ idx.wrapping_mul(0x9e3779b97f4a7c15);
        for &b in label.as_bytes() {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64).rotate_left(7);
        }
        Rng::seed_from(SplitMix64::new(h).next_u64())
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    /// Next raw 32-bit value (upper half of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.core.next_u64() >> 32) as u32
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.core.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f32 in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        (self.core.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below bound must be positive");
        // Lemire 2019: unbiased bounded integers without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range_u64 requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range requires lo < hi");
        lo + self.index(hi - lo)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (values outside
    /// `[0, 1]` saturate).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal variate via the Marsaglia polar method.
    pub fn gauss(&mut self) -> f64 {
        if let Some(g) = self.gauss_spare.take() {
            return g;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * k);
                return u * k;
            }
        }
    }

    /// Normal variate with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.gauss()
    }

    /// Standard normal variate as `f32` (used for weight initialisation).
    #[inline]
    pub fn gauss_f32(&mut self) -> f32 {
        self.gauss() as f32
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Rng::choose on empty slice");
        &xs[self.index(xs.len())]
    }

    /// Sample `k` distinct indices from `[0, n)` without replacement
    /// (Floyd's algorithm; order is randomised afterwards).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n} without replacement");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        self.shuffle(&mut chosen);
        chosen
    }

    /// Sample an index from an unnormalised non-negative weight slice.
    ///
    /// # Panics
    /// Panics if the weights are empty or sum to zero / a non-finite value.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "Rng::weighted requires positive finite total weight"
        );
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent_of_parent_position() {
        let parent = Rng::seed_from(99);
        let mut s1 = parent.substream("alpha");
        let mut advanced = Rng::seed_from(99);
        for _ in 0..1000 {
            advanced.next_u64();
        }
        let mut s2 = advanced.substream("alpha");
        for _ in 0..16 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn substream_labels_distinguish() {
        let parent = Rng::seed_from(5);
        let mut a = parent.substream("a");
        let mut b = parent.substream("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substream_idx_distinguish() {
        let parent = Rng::seed_from(5);
        let mut a = parent.substream_idx("doc", 0);
        let mut b = parent.substream_idx("doc", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centred() {
        let mut r = Rng::seed_from(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_bounds_and_covers() {
        let mut r = Rng::seed_from(13);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10) as usize;
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }

    #[test]
    fn gauss_moments() {
        let mut r = Rng::seed_from(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gauss()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(23);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left identity (astronomically unlikely)");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::seed_from(29);
        for _ in 0..50 {
            let s = r.sample_indices(20, 8);
            assert_eq!(s.len(), 8);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 8);
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full() {
        let mut r = Rng::seed_from(31);
        let mut s = r.sample_indices(5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::seed_from(37);
        for _ in 0..500 {
            let i = r.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_distribution_roughly_matches() {
        let mut r = Rng::seed_from(41);
        let w = [1.0, 3.0];
        let n = 40_000;
        let ones = (0..n).filter(|_| r.weighted(&w) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(43);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
