//! Blocked matrix-multiplication kernels in the three orientations a
//! manual-backward transformer needs.
//!
//! All matrices are row-major slices. Kernels *accumulate* into `out`
//! (`out += a·b`), which lets backward passes add gradient contributions
//! without temporaries; callers that need assignment zero the buffer first
//! (see [`matmul`] which does this for convenience via `matmul_acc` +
//! `fill`).
//!
//! The loop order is `i-k-j`: the innermost loop walks contiguous rows of
//! `b` and `out`, an AXPY the compiler auto-vectorises. A cache block over
//! `k` keeps the working set of `b` rows resident in L1/L2 for large
//! matrices.

/// Cache block size over the shared dimension. 64 f32 rows of a typical
/// `n ≤ 512` matrix fit comfortably in L2.
const KB: usize = 64;

/// `out = a · b` where `a` is `m×k`, `b` is `k×n`, `out` is `m×n`.
pub fn matmul(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    matmul_acc(out, a, b, m, k, n);
}

/// `out += a · b` where `a` is `m×k`, `b` is `k×n`, `out` is `m×n`.
pub fn matmul_acc(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a has wrong size");
    assert_eq!(b.len(), k * n, "b has wrong size");
    assert_eq!(out.len(), m * n, "out has wrong size");
    for k0 in (0..k).step_by(KB) {
        let k1 = (k0 + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * bv;
                }
            }
        }
    }
}

/// `out = a · bᵀ` where `a` is `m×k`, `b` is `n×k`, `out` is `m×n`.
///
/// This is the natural orientation for `x · Wᵀ` with row-major weight
/// matrices `W[out_features, in_features]` — i.e. every linear-layer
/// forward pass.
pub fn matmul_a_bt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    matmul_a_bt_acc(out, a, b, m, k, n);
}

/// `out += a · bᵀ` (see [`matmul_a_bt`]).
pub fn matmul_a_bt_acc(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a has wrong size");
    assert_eq!(b.len(), n * k, "b has wrong size");
    assert_eq!(out.len(), m * n, "out has wrong size");
    // Both a's row and b's row are contiguous: the inner product
    // vectorises as a dot product.
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            *o += dot(arow, brow);
        }
    }
}

/// `out = aᵀ · b` where `a` is `k×m`, `b` is `k×n`, `out` is `m×n`.
///
/// This is the weight-gradient orientation: `dW = dyᵀ · x`.
pub fn matmul_at_b(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    matmul_at_b_acc(out, a, b, m, k, n);
}

/// `out += aᵀ · b` (see [`matmul_at_b`]).
pub fn matmul_at_b_acc(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "a has wrong size");
    assert_eq!(b.len(), k * n, "b has wrong size");
    assert_eq!(out.len(), m * n, "out has wrong size");
    // Loop over the shared dim outermost; inner loop is again an AXPY over
    // contiguous rows of b and out.
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Dot product of two equal-length slices, unrolled 4-wide so the compiler
/// keeps independent accumulator chains (hides FP latency).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in (chunks * 4)..n {
        s += a[i] * b[i];
    }
    s
}

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, &xv) in y.iter_mut().zip(x.iter()) {
        *yv += alpha * xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference multiply used to validate the blocked kernels.
    fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = s;
            }
        }
        out
    }

    fn arange(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i * 37 % 23) as f32 - 11.0) * scale).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_reference_various_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 64, 8), (3, 130, 5), (16, 16, 16)] {
            let a = arange(m * k, 0.1);
            let b = arange(k * n, 0.05);
            let want = reference(&a, &b, m, k, n);
            let mut got = vec![0.0; m * n];
            matmul(&mut got, &a, &b, m, k, n);
            assert_close(&got, &want, 1e-4);
        }
    }

    #[test]
    fn matmul_acc_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut out = vec![10.0; 4];
        matmul_acc(&mut out, &a, &b, 2, 2, 2);
        assert_eq!(out, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn a_bt_matches_reference() {
        for &(m, k, n) in &[(2, 3, 4), (5, 65, 3), (7, 8, 7)] {
            let a = arange(m * k, 0.07);
            let bt = arange(n * k, 0.03); // b is n×k, we want a·bᵀ
            // build b = btᵀ as k×n for the reference
            let mut b = vec![0.0; k * n];
            for j in 0..n {
                for kk in 0..k {
                    b[kk * n + j] = bt[j * k + kk];
                }
            }
            let want = reference(&a, &b, m, k, n);
            let mut got = vec![0.0; m * n];
            matmul_a_bt(&mut got, &a, &bt, m, k, n);
            assert_close(&got, &want, 1e-4);
        }
    }

    #[test]
    fn at_b_matches_reference() {
        for &(m, k, n) in &[(3, 2, 4), (4, 70, 3), (6, 9, 6)] {
            let at = arange(k * m, 0.09); // a is k×m, we want aᵀ·b
            let b = arange(k * n, 0.02);
            // build aT = aᵀ as m×k for the reference
            let mut a = vec![0.0; m * k];
            for kk in 0..k {
                for i in 0..m {
                    a[i * k + kk] = at[kk * m + i];
                }
            }
            let want = reference(&a, &b, m, k, n);
            let mut got = vec![0.0; m * n];
            matmul_at_b(&mut got, &at, &b, m, k, n);
            assert_close(&got, &want, 1e-4);
        }
    }

    #[test]
    fn dot_matches_reference() {
        for len in [0, 1, 3, 4, 5, 8, 13, 100] {
            let a = arange(len, 0.2);
            let b = arange(len, 0.3);
            let want: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - want).abs() < 1e-3, "len {len}");
        }
    }

    #[test]
    fn axpy_known() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_bad_shapes() {
        let mut out = vec![0.0; 4];
        matmul(&mut out, &[1.0; 5], &[1.0; 4], 2, 2, 2);
    }
}
