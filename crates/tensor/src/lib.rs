//! Dense f32 tensor kernels for the from-scratch transformer.
//!
//! The transformer in `astro-model` uses explicit forward/backward passes
//! (llm.c style) over pre-allocated buffers, so this crate exposes *slice
//! kernels* rather than a graph framework: blocked matrix multiplication in
//! the three orientations backward passes need, fused softmax /
//! cross-entropy / RMSNorm kernels, and bf16 emulation matching the paper's
//! bf16 training.
//!
//! Design notes (following the Rust Performance Book guidance):
//!
//! * kernels take `&[f32]`/`&mut [f32]` and never allocate;
//! * inner loops are written in `i-k-j` order so the hot loop is a
//!   contiguous AXPY the compiler can vectorise;
//! * all kernels are deterministic — accumulation order is fixed.
//!
//! A small shape-carrying [`Tensor`] is provided for tests, examples and
//! non-hot-path code.

pub mod bf16;
pub mod gradcheck;
pub mod matmul;
pub mod ops;
pub mod par;

pub use bf16::{bf16_round, bf16_round_slice};
pub use matmul::{matmul, matmul_at_b, matmul_a_bt};
pub use par::{matmul_a_bt_par, matmul_par};

/// A minimal shape-carrying tensor over `f32`.
///
/// This is a convenience wrapper for non-hot-path code; hot kernels work on
/// raw slices. Row-major layout, arbitrary rank.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// Build from explicit data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, data.len(), "shape {shape:?} wants {numel} elements");
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// 2-D element access (row-major).
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Matrix multiplication for 2-D tensors.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimensions must agree: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        matmul::matmul(&mut out.data, &self.data, &rhs.data, m, k, n);
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_size() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_len() {
        Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn tensor_matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let id = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn tensor_matmul_known() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn norm_known() {
        let t = Tensor::from_vec(&[2], vec![3.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }
}
