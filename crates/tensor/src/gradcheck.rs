//! Finite-difference gradient checking.
//!
//! Used by `astro-model`'s tests to validate every manual backward pass
//! against central differences. Kept in the library (not `#[cfg(test)]`) so
//! downstream crates can reuse it in their own test suites.

/// Result of a gradient check: worst absolute and relative deviation.
#[derive(Clone, Copy, Debug)]
pub struct GradCheckReport {
    /// Maximum |analytic − numeric|.
    pub max_abs_err: f32,
    /// Maximum |analytic − numeric| / (|numeric| + 1).
    pub max_rel_err: f32,
    /// Index of the worst parameter.
    pub worst_index: usize,
}

impl GradCheckReport {
    /// True when both error measures are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Compare `analytic` gradients against central finite differences of
/// `loss` with step `h`, perturbing `params` one element at a time.
///
/// `loss` must be a pure function of `params`.
pub fn check_gradient<F>(
    params: &mut [f32],
    analytic: &[f32],
    h: f32,
    mut loss: F,
) -> GradCheckReport
where
    F: FnMut(&[f32]) -> f32,
{
    assert_eq!(params.len(), analytic.len());
    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        worst_index: 0,
    };
    for i in 0..params.len() {
        let orig = params[i];
        params[i] = orig + h;
        let fp = loss(params);
        params[i] = orig - h;
        let fm = loss(params);
        params[i] = orig;
        let numeric = (fp - fm) / (2.0 * h);
        let abs = (analytic[i] - numeric).abs();
        let rel = abs / (numeric.abs() + 1.0);
        if abs > report.max_abs_err {
            report.max_abs_err = abs;
            report.worst_index = i;
        }
        report.max_rel_err = report.max_rel_err.max(rel);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_checks() {
        // loss = Σ (x_i − i)², gradient = 2(x_i − i)
        let mut params: Vec<f32> = vec![0.5, -1.0, 2.0];
        let analytic: Vec<f32> = params
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * (x - i as f32))
            .collect();
        let report = check_gradient(&mut params, &analytic, 1e-3, |p| {
            p.iter()
                .enumerate()
                .map(|(i, &x)| (x - i as f32) * (x - i as f32))
                .sum()
        });
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn wrong_gradient_fails() {
        let mut params = vec![1.0f32, 2.0];
        let wrong = vec![0.0f32, 0.0];
        let report = check_gradient(&mut params, &wrong, 1e-3, |p| {
            p.iter().map(|&x| x * x).sum()
        });
        assert!(!report.passes(1e-2));
        assert!(report.max_abs_err > 1.0);
    }

    #[test]
    fn params_restored_after_check() {
        let mut params = vec![0.3f32, 0.7];
        let analytic = vec![0.0f32; 2];
        let _ = check_gradient(&mut params, &analytic, 1e-3, |_| 0.0);
        assert_eq!(params, vec![0.3, 0.7]);
    }
}
