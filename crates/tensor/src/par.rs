//! Thread-parallel matmul wrappers.
//!
//! The blocked kernels in [`crate::matmul`] are single-threaded; these
//! wrappers split the *output rows* across threads via
//! `astro_parallel::parallel_for`-style scoped chunking, which needs no
//! synchronisation (disjoint output regions) and preserves the exact
//! per-row accumulation order, so results are bit-identical to the serial
//! kernels. On a single-core host they fall back to the serial path.

use crate::matmul::{matmul_a_bt_acc, matmul_acc};

/// Minimum rows per thread before parallelism pays for itself.
const MIN_ROWS_PER_THREAD: usize = 8;

/// `out = a · b` with rows of `out` split across `threads`.
pub fn matmul_par(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    out.fill(0.0);
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), m * n);
    let threads = effective_threads(m, threads);
    if threads <= 1 {
        matmul_acc(out, a, b, m, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    scoped_row_chunks(out, a, m, n, rows_per, |chunk, a_rows, rows| {
        matmul_acc(chunk, a_rows, b, rows, k, n);
    });
}

/// `out = a · bᵀ` with rows of `out` split across `threads`.
pub fn matmul_a_bt_par(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    out.fill(0.0);
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(out.len(), m * n);
    let threads = effective_threads(m, threads);
    if threads <= 1 {
        matmul_a_bt_acc(out, a, b, m, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    scoped_row_chunks(out, a, m, n, rows_per, |chunk, a_rows, rows| {
        matmul_a_bt_acc(chunk, a_rows, b, rows, k, n);
    });
}

fn effective_threads(m: usize, requested: usize) -> usize {
    requested.max(1).min(m.div_ceil(MIN_ROWS_PER_THREAD).max(1))
}

/// Split `out` and `a` into matching row chunks and run `body` on scoped
/// threads. `a` rows are inferred from chunk sizes (`a` row length =
/// `a.len() / m`).
fn scoped_row_chunks<F>(
    out: &mut [f32],
    a: &[f32],
    m: usize,
    n: usize,
    rows_per: usize,
    body: F,
) where
    F: Fn(&mut [f32], &[f32], usize) + Sync,
{
    let k = a.len() / m;
    std::thread::scope(|s| {
        let mut out_rest = out;
        let mut a_rest = a;
        let mut remaining = m;
        while remaining > 0 {
            let rows = rows_per.min(remaining);
            let (out_chunk, out_tail) = out_rest.split_at_mut(rows * n);
            let (a_chunk, a_tail) = a_rest.split_at(rows * k);
            out_rest = out_tail;
            a_rest = a_tail;
            remaining -= rows;
            let body = &body;
            s.spawn(move || body(out_chunk, a_chunk, rows));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{matmul, matmul_a_bt};

    fn data(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as u64).wrapping_mul(seed + 13) % 97) as f32 - 48.0) * 0.03)
            .collect()
    }

    #[test]
    fn par_matches_serial_bitwise() {
        for &(m, k, n) in &[(1usize, 5usize, 3usize), (17, 33, 9), (64, 48, 48)] {
            let a = data(m * k, 3);
            let b = data(k * n, 7);
            let mut serial = vec![0.0f32; m * n];
            matmul(&mut serial, &a, &b, m, k, n);
            for threads in [1, 2, 4] {
                let mut par = vec![0.0f32; m * n];
                matmul_par(&mut par, &a, &b, m, k, n, threads);
                assert_eq!(serial, par, "m{m} k{k} n{n} threads{threads}");
            }
        }
    }

    #[test]
    fn par_a_bt_matches_serial_bitwise() {
        let (m, k, n) = (40usize, 24usize, 16usize);
        let a = data(m * k, 11);
        let bt = data(n * k, 17);
        let mut serial = vec![0.0f32; m * n];
        matmul_a_bt(&mut serial, &a, &bt, m, k, n);
        let mut par = vec![0.0f32; m * n];
        matmul_a_bt_par(&mut par, &a, &bt, m, k, n, 3);
        assert_eq!(serial, par);
    }

    #[test]
    fn tiny_matrices_run_serial() {
        // m below the per-thread minimum must not spawn threads (observable
        // only through correctness here).
        let a = data(2 * 4, 5);
        let b = data(4 * 2, 9);
        let mut out = vec![0.0f32; 4];
        matmul_par(&mut out, &a, &b, 2, 4, 2, 8);
        let mut want = vec![0.0f32; 4];
        matmul(&mut want, &a, &b, 2, 4, 2);
        assert_eq!(out, want);
    }
}
