//! bf16 (bfloat16) emulation.
//!
//! The paper trains in bf16. We have no bf16 hardware, so mixed-precision
//! training is emulated by rounding f32 values to the nearest bf16
//! representable value (round-to-nearest-even on the truncated mantissa
//! bits) after each weight update. This reproduces bf16's ~8-bit mantissa
//! quantisation noise while keeping f32 arithmetic.

/// Round an `f32` to the nearest bf16-representable value and return it as
/// `f32`. Uses round-to-nearest-even, matching hardware bf16 conversion.
/// NaN payloads are normalised to a quiet NaN; infinities pass through.
#[inline]
pub fn bf16_round(x: f32) -> f32 {
    let bits = x.to_bits();
    if x.is_nan() {
        return f32::from_bits(0x7fc0_0000);
    }
    // Add rounding bias: 0x7fff plus the LSB of the retained part
    // (round-half-to-even).
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x7fff + lsb) & 0xffff_0000;
    f32::from_bits(rounded)
}

/// Round every element of a slice to bf16 precision in place.
pub fn bf16_round_slice(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = bf16_round(*x);
    }
}

/// Pack an `f32` into the 16-bit bf16 representation (for checkpoints).
#[inline]
pub fn bf16_bits(x: f32) -> u16 {
    (bf16_round(x).to_bits() >> 16) as u16
}

/// Unpack 16-bit bf16 bits into an `f32`.
#[inline]
pub fn bf16_from_bits(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_unchanged() {
        // Powers of two and small integers are exactly representable.
        for v in [0.0f32, 1.0, -1.0, 2.0, 0.5, -0.25, 256.0] {
            assert_eq!(bf16_round(v), v);
        }
    }

    #[test]
    fn rounding_error_bounded() {
        // bf16 has 8 mantissa bits → relative error ≤ 2^-8 = 1/256.
        let mut v = 0.1f32;
        for _ in 0..1000 {
            let r = bf16_round(v);
            let rel = ((r - v) / v).abs();
            assert!(rel <= 1.0 / 256.0 + 1e-7, "v={v} r={r} rel={rel}");
            v *= 1.01;
        }
    }

    #[test]
    fn idempotent() {
        for i in 0..1000 {
            let v = (i as f32 - 500.0) * 0.37;
            let once = bf16_round(v);
            assert_eq!(bf16_round(once), once);
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // A value exactly halfway between two bf16 values must round to the
        // one with an even retained mantissa LSB.
        let lo = f32::from_bits(0x3f80_0000); // 1.0
        let hi = f32::from_bits(0x3f81_0000); // next bf16 after 1.0
        let mid = f32::from_bits(0x3f80_8000); // exactly halfway
        let r = bf16_round(mid);
        assert!(r == lo || r == hi);
        assert_eq!(r, lo, "half-to-even keeps the even mantissa (…00)");
    }

    #[test]
    fn specials() {
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn bits_round_trip() {
        for v in [0.0f32, 1.5, -3.25, 100.0, -0.007812] {
            let b = bf16_bits(v);
            let back = bf16_from_bits(b);
            assert_eq!(back, bf16_round(v));
        }
    }

    #[test]
    fn slice_rounding() {
        let mut xs = vec![0.1f32, 0.2, 0.3];
        let want: Vec<f32> = xs.iter().map(|&x| bf16_round(x)).collect();
        bf16_round_slice(&mut xs);
        assert_eq!(xs, want);
    }
}
