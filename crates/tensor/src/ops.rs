//! Fused element-wise and normalisation kernels with explicit backward
//! passes.
//!
//! Each forward kernel has a matching `*_backward` that consumes the saved
//! forward activations; gradients *accumulate* into `dx` buffers so a value
//! used by several consumers collects all contributions.

/// Numerically stable softmax over each row of an `m×n` matrix, in place.
pub fn softmax_rows(x: &mut [f32], m: usize, n: usize) {
    assert_eq!(x.len(), m * n);
    for row in x.chunks_exact_mut(n) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Backward of row-softmax: given the forward output `y` and upstream
/// gradient `dy`, accumulate `dx += y ⊙ (dy − (dy·y))` row-wise.
pub fn softmax_rows_backward(dx: &mut [f32], y: &[f32], dy: &[f32], m: usize, n: usize) {
    assert_eq!(dx.len(), m * n);
    assert_eq!(y.len(), m * n);
    assert_eq!(dy.len(), m * n);
    for i in 0..m {
        let yr = &y[i * n..(i + 1) * n];
        let dyr = &dy[i * n..(i + 1) * n];
        let dot: f32 = yr.iter().zip(dyr.iter()).map(|(a, b)| a * b).sum();
        let dxr = &mut dx[i * n..(i + 1) * n];
        for ((d, &yv), &dyv) in dxr.iter_mut().zip(yr.iter()).zip(dyr.iter()) {
            *d += yv * (dyv - dot);
        }
    }
}

/// Log-sum-exp of a slice (stable).
pub fn log_sum_exp(x: &[f32]) -> f32 {
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max.is_infinite() {
        return max;
    }
    let s: f32 = x.iter().map(|&v| (v - max).exp()).sum();
    max + s.ln()
}

/// Mean cross-entropy over rows of `logits` (`m×n`) against integer
/// `targets`, skipping positions where `mask` is false.
///
/// Also writes the *gradient of the mean loss w.r.t. the logits* into
/// `dlogits` (overwritten, not accumulated): `softmax(logits) − onehot`,
/// scaled by `1/active`, zero at masked positions. Returns
/// `(mean_loss, active_count)`; when no position is active the loss is 0.
pub fn cross_entropy_rows(
    dlogits: &mut [f32],
    logits: &[f32],
    targets: &[usize],
    mask: &[bool],
    m: usize,
    n: usize,
) -> (f32, usize) {
    assert_eq!(logits.len(), m * n);
    assert_eq!(dlogits.len(), m * n);
    assert_eq!(targets.len(), m);
    assert_eq!(mask.len(), m);
    let active = mask.iter().filter(|&&b| b).count();
    dlogits.fill(0.0);
    if active == 0 {
        return (0.0, 0);
    }
    let inv = 1.0 / active as f32;
    let mut loss = 0.0f64;
    for i in 0..m {
        if !mask[i] {
            continue;
        }
        let row = &logits[i * n..(i + 1) * n];
        let t = targets[i];
        debug_assert!(t < n, "target {t} out of vocab {n}");
        let lse = log_sum_exp(row);
        loss += (lse - row[t]) as f64;
        let drow = &mut dlogits[i * n..(i + 1) * n];
        for (j, (d, &l)) in drow.iter_mut().zip(row.iter()).enumerate() {
            let p = (l - lse).exp();
            *d = (p - if j == t { 1.0 } else { 0.0 }) * inv;
        }
    }
    ((loss / active as f64) as f32, active)
}

/// RMSNorm forward: `y = x / rms(x) * g` per row, where
/// `rms(x) = sqrt(mean(x²) + eps)`. Returns nothing; per-row inverse RMS
/// values are written to `inv_rms` (length `m`) for the backward pass.
pub fn rmsnorm_rows(
    y: &mut [f32],
    inv_rms: &mut [f32],
    x: &[f32],
    g: &[f32],
    m: usize,
    n: usize,
    eps: f32,
) {
    assert_eq!(x.len(), m * n);
    assert_eq!(y.len(), m * n);
    assert_eq!(g.len(), n);
    assert_eq!(inv_rms.len(), m);
    for i in 0..m {
        let xr = &x[i * n..(i + 1) * n];
        let ms: f32 = xr.iter().map(|v| v * v).sum::<f32>() / n as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        inv_rms[i] = inv;
        let yr = &mut y[i * n..(i + 1) * n];
        for ((yv, &xv), &gv) in yr.iter_mut().zip(xr.iter()).zip(g.iter()) {
            *yv = xv * inv * gv;
        }
    }
}

/// RMSNorm backward. Accumulates into `dx` and `dg`.
///
/// With `x̂ = x·inv`, `y = x̂ ⊙ g`:
/// `dg += Σ_rows dy ⊙ x̂`,
/// `dx += inv · (dy⊙g − x̂ · mean(dy⊙g⊙x̂))`.
#[allow(clippy::too_many_arguments)]
pub fn rmsnorm_rows_backward(
    dx: &mut [f32],
    dg: &mut [f32],
    dy: &[f32],
    x: &[f32],
    g: &[f32],
    inv_rms: &[f32],
    m: usize,
    n: usize,
) {
    assert_eq!(dx.len(), m * n);
    assert_eq!(dy.len(), m * n);
    assert_eq!(x.len(), m * n);
    assert_eq!(dg.len(), n);
    assert_eq!(g.len(), n);
    assert_eq!(inv_rms.len(), m);
    for i in 0..m {
        let inv = inv_rms[i];
        let xr = &x[i * n..(i + 1) * n];
        let dyr = &dy[i * n..(i + 1) * n];
        // mean over the row of dy*g*x̂
        let mut mdot = 0.0f32;
        for j in 0..n {
            mdot += dyr[j] * g[j] * xr[j] * inv;
        }
        mdot /= n as f32;
        let dxr = &mut dx[i * n..(i + 1) * n];
        for j in 0..n {
            let xhat = xr[j] * inv;
            dg[j] += dyr[j] * xhat;
            dxr[j] += inv * (dyr[j] * g[j] - xhat * mdot);
        }
    }
}

/// SiLU (a.k.a. swish) activation: `y = x · σ(x)`, element-wise.
pub fn silu(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len());
    for (yv, &xv) in y.iter_mut().zip(x.iter()) {
        *yv = xv * sigmoid(xv);
    }
}

/// Backward of SiLU: `dx += dy · (σ(x) + x·σ(x)·(1−σ(x)))`.
pub fn silu_backward(dx: &mut [f32], dy: &[f32], x: &[f32]) {
    assert_eq!(dx.len(), x.len());
    assert_eq!(dy.len(), x.len());
    for ((d, &dyv), &xv) in dx.iter_mut().zip(dy.iter()).zip(x.iter()) {
        let s = sigmoid(xv);
        *d += dyv * (s + xv * s * (1.0 - s));
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Element-wise product accumulate: `out += a ⊙ b`.
pub fn mul_acc(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o += x * y;
    }
}

/// Element-wise product: `out = a ⊙ b`.
pub fn mul(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x * y;
    }
}

/// In-place addition: `y += x`.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len());
    for (yv, &xv) in y.iter_mut().zip(x.iter()) {
        *yv += xv;
    }
}

/// In-place scale: `x *= alpha`.
pub fn scale(x: &mut [f32], alpha: f32) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// L2 norm of a slice, accumulated in f64 for stability.
pub fn l2_norm(x: &[f32]) -> f32 {
    (x.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>()).sqrt() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3);
        for row in x.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&p| p > 0.0));
        }
        // larger logit → larger probability
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut x = vec![1000.0, 1001.0];
        softmax_rows(&mut x, 1, 2);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_known() {
        let x = [0.0f32, 0.0];
        assert!((log_sum_exp(&x) - (2.0f32).ln()).abs() < 1e-6);
        let y = [500.0f32, 500.0];
        assert!((log_sum_exp(&y) - (500.0 + (2.0f32).ln())).abs() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        // zero logits over 4 classes → loss = ln(4) regardless of target
        let logits = vec![0.0; 8];
        let mut d = vec![0.0; 8];
        let (loss, active) =
            cross_entropy_rows(&mut d, &logits, &[1, 3], &[true, true], 2, 4);
        assert_eq!(active, 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
        // gradient rows sum to zero
        for row in d.chunks(4) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_mask_skips_rows() {
        let logits = vec![5.0, 0.0, 0.0, 5.0];
        let mut d = vec![0.0; 4];
        let (loss1, active) =
            cross_entropy_rows(&mut d, &logits, &[0, 0], &[true, false], 2, 2);
        assert_eq!(active, 1);
        // masked row contributes no gradient
        assert!(d[2] == 0.0 && d[3] == 0.0);
        // loss equals the single-row loss
        let lse = log_sum_exp(&logits[0..2]);
        assert!((loss1 - (lse - 5.0)).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_all_masked_is_zero() {
        let logits = vec![1.0, 2.0];
        let mut d = vec![9.0; 2];
        let (loss, active) = cross_entropy_rows(&mut d, &logits, &[0], &[false], 1, 2);
        assert_eq!(active, 0);
        assert_eq!(loss, 0.0);
        assert!(d.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = vec![0.3f32, -0.7, 1.2, 0.05, 0.9, -0.2];
        let targets = [2usize, 0];
        let mask = [true, true];
        let mut d = vec![0.0; 6];
        let (_, _) = cross_entropy_rows(&mut d, &logits, &targets, &mask, 2, 3);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp[idx] += eps;
            let mut lm = logits.clone();
            lm[idx] -= eps;
            let mut scratch = vec![0.0; 6];
            let (fp, _) = cross_entropy_rows(&mut scratch, &lp, &targets, &mask, 2, 3);
            let (fm, _) = cross_entropy_rows(&mut scratch, &lm, &targets, &mask, 2, 3);
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - d[idx]).abs() < 1e-2, "idx {idx}: fd {fd} vs analytic {}", d[idx]);
        }
    }

    #[test]
    fn rmsnorm_unit_gain_preserves_direction() {
        let x = vec![3.0f32, 4.0];
        let g = vec![1.0f32, 1.0];
        let mut y = vec![0.0; 2];
        let mut inv = vec![0.0; 1];
        rmsnorm_rows(&mut y, &mut inv, &x, &g, 1, 2, 0.0);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((y[0] - 3.0 / rms).abs() < 1e-6);
        assert!((y[1] - 4.0 / rms).abs() < 1e-6);
    }

    #[test]
    fn rmsnorm_backward_matches_finite_difference() {
        let m = 2;
        let n = 4;
        let x: Vec<f32> = (0..m * n).map(|i| (i as f32 * 0.37).sin()).collect();
        let g: Vec<f32> = (0..n).map(|i| 1.0 + 0.1 * i as f32).collect();
        let eps = 1e-5f32;
        // loss = sum(y * w) for fixed random-ish weights w
        let w: Vec<f32> = (0..m * n).map(|i| ((i * 7 % 5) as f32 - 2.0) * 0.3).collect();
        let loss = |x: &[f32], g: &[f32]| -> f32 {
            let mut y = vec![0.0; m * n];
            let mut inv = vec![0.0; m];
            rmsnorm_rows(&mut y, &mut inv, x, g, m, n, eps);
            y.iter().zip(w.iter()).map(|(a, b)| a * b).sum()
        };
        let mut y = vec![0.0; m * n];
        let mut inv = vec![0.0; m];
        rmsnorm_rows(&mut y, &mut inv, &x, &g, m, n, eps);
        let mut dx = vec![0.0; m * n];
        let mut dg = vec![0.0; n];
        rmsnorm_rows_backward(&mut dx, &mut dg, &w, &x, &g, &inv, m, n);
        let h = 1e-3f32;
        for idx in 0..m * n {
            let mut xp = x.clone();
            xp[idx] += h;
            let mut xm = x.clone();
            xm[idx] -= h;
            let fd = (loss(&xp, &g) - loss(&xm, &g)) / (2.0 * h);
            assert!((fd - dx[idx]).abs() < 2e-2, "dx[{idx}]: fd {fd} vs {}", dx[idx]);
        }
        for idx in 0..n {
            let mut gp = g.clone();
            gp[idx] += h;
            let mut gm = g.clone();
            gm[idx] -= h;
            let fd = (loss(&x, &gp) - loss(&x, &gm)) / (2.0 * h);
            assert!((fd - dg[idx]).abs() < 2e-2, "dg[{idx}]: fd {fd} vs {}", dg[idx]);
        }
    }

    #[test]
    fn silu_zero_is_zero_and_monotone_positive() {
        let x = vec![-2.0f32, 0.0, 2.0];
        let mut y = vec![0.0; 3];
        silu(&mut y, &x);
        assert_eq!(y[1], 0.0);
        assert!(y[2] > 0.0);
        assert!(y[0] < 0.0 && y[0] > -0.5); // silu(-2) ≈ -0.238
    }

    #[test]
    fn silu_backward_matches_finite_difference() {
        let x: Vec<f32> = vec![-1.5, -0.3, 0.0, 0.7, 2.2];
        let dy = vec![1.0f32; 5];
        let mut dx = vec![0.0f32; 5];
        silu_backward(&mut dx, &dy, &x);
        let h = 1e-3f32;
        for i in 0..5 {
            let f = |v: f32| v * sigmoid(v);
            let fd = (f(x[i] + h) - f(x[i] - h)) / (2.0 * h);
            assert!((fd - dx[i]).abs() < 1e-3, "i {i}");
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let n = 5;
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.9).cos()).collect();
        let w: Vec<f32> = (0..n).map(|i| (i as f32 + 1.0) * 0.2).collect();
        let loss = |x: &[f32]| -> f32 {
            let mut y = x.to_vec();
            softmax_rows(&mut y, 1, n);
            y.iter().zip(w.iter()).map(|(a, b)| a * b).sum()
        };
        let mut y = x.clone();
        softmax_rows(&mut y, 1, n);
        let mut dx = vec![0.0; n];
        softmax_rows_backward(&mut dx, &y, &w, 1, n);
        let h = 1e-3f32;
        for i in 0..n {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * h);
            assert!((fd - dx[i]).abs() < 1e-3, "i {i}: {fd} vs {}", dx[i]);
        }
    }

    #[test]
    fn elementwise_helpers() {
        let mut out = vec![1.0f32, 1.0];
        mul_acc(&mut out, &[2.0, 3.0], &[4.0, 5.0]);
        assert_eq!(out, vec![9.0, 16.0]);
        mul(&mut out, &[2.0, 3.0], &[4.0, 5.0]);
        assert_eq!(out, vec![8.0, 15.0]);
        add_assign(&mut out, &[1.0, 1.0]);
        assert_eq!(out, vec![9.0, 16.0]);
        scale(&mut out, 0.5);
        assert_eq!(out, vec![4.5, 8.0]);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }
}
