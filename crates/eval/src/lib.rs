//! The three AstroMLab benchmarking methods (paper §V) plus scoring,
//! reporting and the cost-efficiency value analysis.
//!
//! * **Full instruct** ([`instruct_method`]) — conversational prompting of
//!   the instruct model with chain-of-thought + JSON output instructions;
//!   answers recovered by a JSON parse, then a pattern extractor, then a
//!   fallback interpreter standing in for the paper's GPT-4o rescue pass.
//! * **Base-model token prediction** ([`token_method`]) — the two-shot
//!   `Answer:` prompt; the argmax over the four answer-letter tokens is
//!   the prediction, with dynamic detection of leading-space token
//!   variants (`"A"` vs `" A"`).
//! * **Instruct-model token prediction** — the same logit readout applied
//!   to the post-SFT model.
//!
//! [`report`] renders Table I (with the paper's ↑/↓/⇒ arrows) and the
//! Figure 1 series; [`value`] implements the score-to-cost-efficiency
//! extrapolation the paper cites from Ting et al. 2024.

pub mod extract;
pub mod instruct_method;
pub mod json;
pub mod oracle;
pub mod report;
pub mod score;
pub mod token_method;
pub mod value;

pub use extract::{extract_answer, ExtractionStage};
pub use instruct_method::{
    generate_job, instruct_method, instruct_method_answer, InstructAnswer, InstructEvalConfig,
};
pub use oracle::FlagshipOracle;
pub use score::{bootstrap_ci, evaluate, evaluate_checked, EvalFailure, EvalOutcome, Method, Score, TierBreakdown};
pub use token_method::{
    score_job, token_method, token_method_outcomes, token_method_predict, AnswerReadout,
    TokenEvalConfig, TokenOutcome,
};

/// A model under evaluation: parameters plus the tokenizer it was trained
/// with.
pub struct EvalModel<'a> {
    /// Model weights.
    pub params: &'a astro_model::Params,
    /// The tokenizer (shared across the whole study).
    pub tokenizer: &'a astro_tokenizer::Tokenizer,
}

impl EvalModel<'_> {
    /// Check that the tokenizer and the embedding table agree: every
    /// token id the tokenizer can emit must index a row of the embedding.
    /// [`evaluate`] asserts this before scoring; `astro-audit preflight`
    /// enforces the same rule statically (`shape.embed.rows`).
    pub fn validate(&self) -> Result<(), String> {
        let rows = self.params.cfg.vocab_size;
        let vocab = self.tokenizer.vocab_size();
        if vocab > rows {
            return Err(format!(
                "tokenizer emits {vocab} token ids but the embedding has only {rows} rows; \
                 ids {rows}..{vocab} would index out of bounds"
            ));
        }
        Ok(())
    }
}
