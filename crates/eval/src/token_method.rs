//! The next-token benchmarking method (paper §V-B, Appendix C).
//!
//! The model sees a two-shot prompt ending in `Answer:` and the answer is
//! read from the logits of the next token. Two readouts are implemented:
//!
//! * [`AnswerReadout::OptionValue`] (default) — compare the logits of the
//!   four options' leading value tokens. This is this world's exam
//!   convention (see `astro_world::exam_primer_doc`): tiny models cannot
//!   form the letter-indirection circuit that web-scale pretraining
//!   installs in real LLMs, so the value token *is* the answer
//!   representation. Token variants (with/without leading space) are
//!   detected dynamically, exactly as the paper does for letters.
//! * [`AnswerReadout::Letter`] — the paper's literal A–D letter readout,
//!   kept as an ablation (`ablation_eval_method`) demonstrating why the
//!   substitution was needed.

use crate::EvalModel;
use astro_mcq::prompts::token_method_prompt;
use astro_mcq::Mcq;
use astro_model::InferenceSession;
use astro_serve::{EngineConfig, EvalEngine, ScoreJob, ScoreReadout, ServeError};
use astro_tokenizer::TokenId;

/// Which token representation encodes "the answer" in the readout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerReadout {
    /// Compare the four options' leading value tokens (default).
    OptionValue,
    /// Compare the four letter tokens A–D (paper-literal; ablation).
    Letter,
}

/// Configuration for the token method.
#[derive(Clone, Copy, Debug)]
pub struct TokenEvalConfig {
    /// Few-shot examples in the prompt (paper: 2).
    pub shots: usize,
    /// Detect leading-space token variants dynamically (paper: on). When
    /// off, only the no-space representation is considered.
    pub detect_variants: bool,
    /// Answer representation to read.
    pub readout: AnswerReadout,
    /// How batches execute: worker count and prefix caching. The default
    /// ([`EngineConfig::serial`]) preserves the original single-threaded
    /// fresh-session behaviour exactly.
    pub engine: EngineConfig,
}

impl Default for TokenEvalConfig {
    fn default() -> Self {
        TokenEvalConfig {
            shots: 2,
            detect_variants: true,
            readout: AnswerReadout::OptionValue,
            engine: EngineConfig::serial(),
        }
    }
}

impl TokenEvalConfig {
    /// Structural validation: bound the shot count (prompts must leave
    /// room for the question under every model's context window) and
    /// delegate to [`EngineConfig::validate`]. Checked at gateway startup
    /// and usable by any embedding before work is scheduled.
    pub fn validate(&self) -> Result<(), String> {
        if self.shots > MAX_SHOTS {
            return Err(format!(
                "token-method shots {} exceeds the {MAX_SHOTS}-shot bound",
                self.shots
            ));
        }
        self.engine.validate().map_err(|e| format!("engine: {e}"))
    }
}

/// Upper bound on few-shot exemplars in the token-method prompt.
pub const MAX_SHOTS: usize = 16;

/// Candidate token ids for a piece of answer text: its leading token with
/// and (when `detect` is on) without a leading space. Falls back to the
/// first token of the encoded piece when no single-token representation
/// exists.
fn answer_candidates(model: &EvalModel<'_>, text: &str, detect: bool) -> Vec<TokenId> {
    let mut out = Vec::with_capacity(2);
    let head = text.split(' ').next().unwrap_or(text);
    if let Some(id) = model.tokenizer.token_for_str(head) {
        out.push(id);
    }
    if detect {
        if let Some(id) = model.tokenizer.token_for_str(&format!(" {head}")) {
            out.push(id);
        }
    }
    if out.is_empty() {
        // Multi-token representation: use the leading token of the
        // spaced encoding (the form that follows "Answer:").
        let ids = model.tokenizer.encode(&format!(" {head}"));
        if let Some(&first) = ids.first() {
            out.push(first);
        }
    }
    out
}

/// Length-normalised log-likelihood of `continuation` tokens, starting
/// from a forked copy of `sess` whose `last_logits` are the distribution
/// for the first continuation token.
fn continuation_loglik(
    model: &EvalModel<'_>,
    sess: &InferenceSession,
    continuation: &[TokenId],
) -> f32 {
    if continuation.is_empty() {
        return f32::NEG_INFINITY;
    }
    let mut fork = sess.clone();
    let mut ll = 0.0f64;
    let mut counted = 0usize;
    for &tok in continuation {
        if fork.remaining() == 0 {
            break;
        }
        let logits = fork.last_logits();
        let lse = astro_tensor::ops::log_sum_exp(logits);
        ll += (logits[tok as usize] - lse) as f64;
        counted += 1;
        fork.feed(model.params, tok);
    }
    if counted == 0 {
        return f32::NEG_INFINITY;
    }
    (ll / counted as f64) as f32
}

/// Predict the answer index for one question. Returns `(prediction,
/// per-option scores)`.
///
/// With [`AnswerReadout::OptionValue`], each option is scored by the
/// length-normalised log-likelihood of its full `" {option}"` continuation
/// after the `Answer:` prompt (robust to shared prefixes and multi-token
/// values); when `detect_variants` is on, the unspaced variant is also
/// scored and the maximum taken — the multi-token generalisation of the
/// paper's `"A"` vs `" A"` detection. With [`AnswerReadout::Letter`], the
/// paper's literal single-token letter logits are compared.
pub fn token_method_predict(
    model: &EvalModel<'_>,
    question: &Mcq,
    exemplars: &[Mcq],
    config: &TokenEvalConfig,
) -> (usize, [f32; 4]) {
    let tokens = prompt_tokens(model, question, exemplars, config);
    let mut sess = InferenceSession::new(model.params.cfg);
    sess.feed_prompt(model.params, &tokens);

    let mut scores = [f32::NEG_INFINITY; 4];
    match config.readout {
        AnswerReadout::OptionValue => {
            for (i, opt) in question.options.iter().enumerate() {
                let spaced = model.tokenizer.encode(&format!(" {opt}"));
                let mut s = continuation_loglik(model, &sess, &spaced);
                if config.detect_variants {
                    let bare = model.tokenizer.encode(opt);
                    s = s.max(continuation_loglik(model, &sess, &bare));
                }
                scores[i] = s;
            }
        }
        AnswerReadout::Letter => {
            let logits = sess.last_logits();
            for (i, letter) in ['A', 'B', 'C', 'D'].iter().enumerate() {
                for id in answer_candidates(model, &letter.to_string(), config.detect_variants) {
                    scores[i] = scores[i].max(logits[id as usize]);
                }
            }
        }
    }
    let mut best = 0;
    for i in 1..4 {
        if scores[i] > scores[best] {
            best = i;
        }
    }
    (best, scores)
}

/// The encoded, truncated prompt for one question — shared by the serial
/// path and the engine job builder so both score the identical context.
fn prompt_tokens(
    model: &EvalModel<'_>,
    question: &Mcq,
    exemplars: &[Mcq],
    config: &TokenEvalConfig,
) -> Vec<u32> {
    let prompt = token_method_prompt(question, exemplars, config.shots);
    let mut tokens = model.tokenizer.encode_with_bounds(&prompt, false);
    // Fit the KV cache, leaving room to score continuations: keep the
    // *tail* of the prompt (the test question must survive truncation;
    // exemplars are expendable).
    let cap = model.params.cfg.max_seq.saturating_sub(12).max(1);
    if tokens.len() > cap {
        tokens.drain(0..tokens.len() - cap);
    }
    tokens
}

/// One question's token-method outcome with full diagnostics.
#[derive(Clone, Debug)]
pub struct TokenOutcome {
    /// The predicted option index (0 when the question errored).
    pub prediction: usize,
    /// Per-option scores (all `-inf` when the question errored).
    pub scores: [f32; 4],
    /// A per-question engine failure (e.g. the prompt overflowed the KV
    /// cache even after the uncached retry, or the job panicked); the rest
    /// of the sweep is unaffected.
    pub error: Option<ServeError>,
}

/// The engine job for one question, mirroring [`token_method_predict`]'s
/// readout structure exactly (variant order included, so max-folding is
/// bitwise identical). Public so out-of-process front-ends (the network
/// gateway) can build jobs that are bitwise identical to the in-process
/// path.
pub fn score_job(
    model: &EvalModel<'_>,
    question: &Mcq,
    exemplars: &[Mcq],
    config: &TokenEvalConfig,
) -> ScoreJob {
    let readout = match config.readout {
        AnswerReadout::OptionValue => ScoreReadout::ContinuationGroups(
            question
                .options
                .iter()
                .map(|opt| {
                    let mut variants = vec![model.tokenizer.encode(&format!(" {opt}"))];
                    if config.detect_variants {
                        variants.push(model.tokenizer.encode(opt));
                    }
                    variants
                })
                .collect(),
        ),
        AnswerReadout::Letter => ScoreReadout::LogitGroups(
            ['A', 'B', 'C', 'D']
                .iter()
                .map(|letter| {
                    answer_candidates(model, &letter.to_string(), config.detect_variants)
                })
                .collect(),
        ),
    };
    ScoreJob {
        prompt: prompt_tokens(model, question, exemplars, config),
        group: Some(question.article as u64),
        readout,
        trace: None,
    }
}

/// Evaluate the token method over a question set with full per-question
/// outcomes. `config.engine` selects the execution strategy; every
/// setting produces bit-identical scores (`tests/eval_parity.rs`).
pub fn token_method_outcomes(
    model: &EvalModel<'_>,
    questions: &[&Mcq],
    exemplars: &[Mcq],
    config: &TokenEvalConfig,
) -> Vec<TokenOutcome> {
    if config.engine.is_serial_uncached() {
        // The pre-engine reference path: fresh session per question.
        return questions
            .iter()
            .map(|q| {
                let (prediction, scores) = token_method_predict(model, q, exemplars, config);
                TokenOutcome {
                    prediction,
                    scores,
                    error: None,
                }
            })
            .collect();
    }
    let engine = EvalEngine::new(config.engine, model.params);
    let jobs: Vec<ScoreJob> = questions
        .iter()
        .map(|q| score_job(model, q, exemplars, config))
        .collect();
    engine
        .score_batch(jobs)
        .into_iter()
        .map(|r| match r {
            Ok(s) => {
                let mut scores = [f32::NEG_INFINITY; 4];
                for (dst, src) in scores.iter_mut().zip(s.iter()) {
                    *dst = *src;
                }
                let mut best = 0;
                for i in 1..4 {
                    if scores[i] > scores[best] {
                        best = i;
                    }
                }
                TokenOutcome {
                    prediction: best,
                    scores,
                    error: None,
                }
            }
            Err(e) => TokenOutcome {
                prediction: 0,
                scores: [f32::NEG_INFINITY; 4],
                error: Some(e),
            },
        })
        .collect()
}

/// Evaluate the token method over a question set; returns per-question
/// predictions.
pub fn token_method(
    model: &EvalModel<'_>,
    questions: &[&Mcq],
    exemplars: &[Mcq],
    config: &TokenEvalConfig,
) -> Vec<usize> {
    token_method_outcomes(model, questions, exemplars, config)
        .into_iter()
        .map(|o| o.prediction)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_mcq::{McqConfig, McqDataset};
    use astro_model::{ModelConfig, Params};
    use astro_prng::Rng;
    use astro_tokenizer::{train_bpe, BpeTrainerConfig, Tokenizer};
    use astro_world::{World, WorldConfig};

    fn setup() -> (Tokenizer, McqDataset) {
        let world = World::generate(3, WorldConfig::small());
        let mut rng = Rng::seed_from(3);
        let ds = McqDataset::generate(&world, &McqConfig::default(), &mut rng);
        // Train the tokenizer on MCQ-style text so answer variants exist.
        let corpus = ds
            .questions
            .iter()
            .take(30)
            .map(|q| astro_mcq::prompts::render_block(q, true))
            .collect::<Vec<_>>()
            .join("\n\n");
        let tok = train_bpe(
            &[corpus],
            &BpeTrainerConfig {
                vocab_size: 420,
                ..Default::default()
            },
        );
        (tok, ds)
    }

    #[test]
    fn predictions_are_valid_indices_for_both_readouts() {
        let (tok, ds) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = Params::init(cfg, &mut Rng::seed_from(1));
        let model = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        let qs: Vec<&Mcq> = ds.questions.iter().take(5).collect();
        for readout in [AnswerReadout::OptionValue, AnswerReadout::Letter] {
            let cfg_eval = TokenEvalConfig {
                readout,
                ..Default::default()
            };
            let preds = token_method(&model, &qs, &ds.exemplars, &cfg_eval);
            assert_eq!(preds.len(), 5);
            assert!(preds.iter().all(|&p| p < 4));
        }
    }

    #[test]
    fn prompt_longer_than_context_is_truncated_not_panicking() {
        let (tok, ds) = setup();
        let mut cfg = ModelConfig::tiny(tok.vocab_size());
        cfg.max_seq = 24;
        let params = Params::init(cfg, &mut Rng::seed_from(2));
        let model = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        let (pred, _) = token_method_predict(
            &model,
            &ds.questions[0],
            &ds.exemplars,
            &TokenEvalConfig::default(),
        );
        assert!(pred < 4);
    }

    #[test]
    fn option_candidates_never_empty() {
        let (tok, ds) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = Params::init(cfg, &mut Rng::seed_from(4));
        let model = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        for q in ds.questions.iter().take(20) {
            for opt in &q.options {
                assert!(
                    !answer_candidates(&model, opt, true).is_empty(),
                    "option {opt:?} has no candidate tokens"
                );
                assert!(!answer_candidates(&model, opt, false).is_empty());
            }
        }
    }

    #[test]
    fn variant_detection_adds_candidates() {
        // Train on text with value-after-space patterns so spaced variants
        // exist.
        let (tok, ds) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = Params::init(cfg, &mut Rng::seed_from(5));
        let model = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        let mut with_more = 0;
        for q in ds.questions.iter().take(30) {
            for opt in &q.options {
                let with = answer_candidates(&model, opt, true).len();
                let without = answer_candidates(&model, opt, false).len();
                assert!(with >= without);
                if with > without {
                    with_more += 1;
                }
            }
        }
        assert!(with_more > 0, "detection never added a variant");
    }

    #[test]
    fn deterministic_predictions() {
        let (tok, ds) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = Params::init(cfg, &mut Rng::seed_from(5));
        let model = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        let a = token_method_predict(&model, &ds.questions[0], &ds.exemplars, &TokenEvalConfig::default());
        let b = token_method_predict(&model, &ds.questions[0], &ds.exemplars, &TokenEvalConfig::default());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    /// A rigged model whose embedding makes one option's token the argmax
    /// must be scored as choosing that option.
    #[test]
    fn readout_selects_highest_logit_option() {
        let (tok, ds) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = Params::init(cfg, &mut Rng::seed_from(6));
        let q = &ds.questions[0];
        // Boost the target option's first token massively via the tied
        // embedding (logits = xf · Embᵀ: scale the row so its logit grows
        // with any positive overlap; to be safe, test both signs by trying
        // until the prediction matches expectation).
        let model_ref = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        let target = 2usize;
        let continuation = tok.encode(&format!(" {}", q.options[target]));
        // Compute current xf direction by running once, then set the
        // embedding row to a large multiple of... simpler: set the row to
        // large values aligned with the final norm output sign. Instead,
        // empirically scale the row until the option wins.
        let d = cfg.d_model;
        let _ = model_ref;
        for scale in [10.0f32, -10.0, 100.0, -100.0] {
            let mut p2 = params.clone();
            for &tok_id in &continuation {
                let id = tok_id as usize;
                for v in &mut p2.data[id * d..(id + 1) * d] {
                    *v = scale;
                }
            }
            let model = EvalModel {
                params: &p2,
                tokenizer: &tok,
            };
            let (pred, scores) = token_method_predict(&model, q, &ds.exemplars, &TokenEvalConfig::default());
            if pred == target {
                assert!(scores[target] >= scores[(target + 1) % 4]);
                return;
            }
        }
        // Keep `params` alive for clarity.
        let _ = params.len();
        panic!("could not rig the model to select the target option");
    }
}
