//! Scoring: run one benchmarking method over a question set and count
//! correct answers (the paper's metric is the fraction of accurate
//! answers), plus analysis utilities — per-tier breakdowns (where does a
//! CPT gain come from?) and bootstrap confidence intervals.

use crate::extract::ExtractionStage;
use crate::instruct_method::{instruct_method, InstructEvalConfig};
use crate::token_method::{token_method_outcomes, TokenEvalConfig};
use crate::EvalModel;
use astro_mcq::Mcq;
use astro_prng::Rng;
use astro_world::FactTier;

/// The three benchmarking methods of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Conversational Q&A with JSON output (§V-A), on the instruct model.
    FullInstruct,
    /// Next-token logits on the instruct model (§V-C).
    TokenInstruct,
    /// Next-token logits on the base model (§V-B).
    TokenBase,
}

impl Method {
    /// Column label used in Table I.
    pub fn label(self) -> &'static str {
        match self {
            Method::FullInstruct => "Full Instruct",
            Method::TokenInstruct => "Token Prediction (Instruct Model)",
            Method::TokenBase => "Token Prediction (Base Model)",
        }
    }

    /// All methods in Table I column order.
    pub fn all() -> [Method; 3] {
        [Method::FullInstruct, Method::TokenInstruct, Method::TokenBase]
    }

    /// Machine-readable identifier (telemetry attributes, JSON keys).
    pub fn key(self) -> &'static str {
        match self {
            Method::FullInstruct => "full_instruct",
            Method::TokenInstruct => "token_instruct",
            Method::TokenBase => "token_base",
        }
    }
}

/// Result of scoring one model under one method.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Score {
    /// Correct answers.
    pub correct: usize,
    /// Questions evaluated.
    pub total: usize,
    /// Extraction-stage counts (full-instruct only):
    /// `[json, pattern, interpreter, failed]`.
    pub stages: [usize; 4],
}

impl Score {
    /// Accuracy as a percentage (the paper's score).
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.correct as f64 / self.total as f64
    }

    /// Fraction of answers that needed the fallback interpreter or failed
    /// outright — the instruction-following health indicator.
    pub fn parse_trouble_rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.stages[2] + self.stages[3]) as f64 / self.total as f64
    }
}

/// Accuracy split by fact tier — the decomposition that explains CPT
/// effects: consensus questions measure retention of pretraining
/// knowledge (forgetting shows up here), frontier/detail questions
/// measure what CPT added.
#[derive(Clone, Copy, Debug, Default)]
pub struct TierBreakdown {
    /// (correct, total) on consensus-tier questions.
    pub consensus: (usize, usize),
    /// (correct, total) on frontier-tier questions.
    pub frontier: (usize, usize),
    /// (correct, total) on detail-tier questions.
    pub detail: (usize, usize),
}

impl TierBreakdown {
    /// Build from per-question predictions.
    pub fn from_predictions(questions: &[&Mcq], predictions: &[usize]) -> Self {
        assert_eq!(questions.len(), predictions.len());
        let mut out = TierBreakdown::default();
        for (q, &p) in questions.iter().zip(predictions.iter()) {
            let slot = match q.tier {
                FactTier::Consensus => &mut out.consensus,
                FactTier::Frontier => &mut out.frontier,
                FactTier::Detail => &mut out.detail,
            };
            slot.1 += 1;
            if p == q.answer {
                slot.0 += 1;
            }
        }
        out
    }

    /// Accuracy (%) on one tier; `None` when no questions of that tier
    /// were evaluated.
    pub fn percent(&self, tier: FactTier) -> Option<f64> {
        let (c, t) = match tier {
            FactTier::Consensus => self.consensus,
            FactTier::Frontier => self.frontier,
            FactTier::Detail => self.detail,
        };
        (t > 0).then(|| 100.0 * c as f64 / t as f64)
    }
}

/// Percentile bootstrap confidence interval for an accuracy score.
///
/// Resamples the per-question correctness vector `resamples` times and
/// returns the `(lo, hi)` percentile bounds in percent. Deterministic in
/// the provided RNG.
pub fn bootstrap_ci(
    correctness: &[bool],
    resamples: usize,
    confidence: f64,
    rng: &mut Rng,
) -> (f64, f64) {
    assert!(!correctness.is_empty(), "bootstrap over empty sample");
    assert!((0.0..1.0).contains(&(1.0 - confidence)), "bad confidence");
    let n = correctness.len();
    let mut stats: Vec<f64> = (0..resamples.max(1))
        .map(|_| {
            let hits = (0..n).filter(|_| correctness[rng.index(n)]).count();
            100.0 * hits as f64 / n as f64
        })
        .collect();
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((stats.len() as f64) * alpha).floor() as usize;
    let hi_idx = (((stats.len() as f64) * (1.0 - alpha)).ceil() as usize)
        .saturating_sub(1)
        .min(stats.len() - 1);
    (stats[lo_idx], stats[hi_idx])
}

/// Evaluation settings shared across methods.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalOutcome {
    /// Token-method settings.
    pub token: TokenEvalConfig,
    /// Full-instruct settings.
    pub instruct: InstructEvalConfig,
}

/// Per-question engine failures rolled up from an [`evaluate_checked`]
/// run. Carries the degraded score (every failed question counted as
/// wrong) so callers can decide whether to accept it anyway.
#[derive(Clone, Debug)]
pub struct EvalFailure {
    /// The score with failed questions counted as wrong — what
    /// [`evaluate`] would have returned.
    pub degraded: Score,
    /// Questions whose engine job failed.
    pub failed: usize,
    /// The first failure, rendered for diagnostics.
    pub first_error: String,
}

impl std::fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} questions failed in the eval engine (first: {})",
            self.failed, self.degraded.total, self.first_error
        )
    }
}

impl std::error::Error for EvalFailure {}

/// Run `method` for `model` over `questions`, returning the score.
/// Per-question engine failures are absorbed: a failed question scores as
/// wrong. Use [`evaluate_checked`] to surface them as a typed error.
pub fn evaluate(
    model: &EvalModel<'_>,
    questions: &[&Mcq],
    exemplars: &[Mcq],
    method: Method,
    token_cfg: &TokenEvalConfig,
    instruct_cfg: &InstructEvalConfig,
    rng: &mut Rng,
) -> Score {
    let span = astro_telemetry::span!("eval", method = method.key());
    let (score, _failed, _first) =
        run_eval(model, questions, exemplars, method, token_cfg, instruct_cfg, rng);
    span.record_f64("questions", score.total as f64);
    score
}

/// Like [`evaluate`], but per-question engine failures surface as a typed
/// [`EvalFailure`] instead of being silently scored as wrong. On success
/// the returned [`Score`] is bitwise identical to [`evaluate`]'s for the
/// same inputs — the two share one implementation.
pub fn evaluate_checked(
    model: &EvalModel<'_>,
    questions: &[&Mcq],
    exemplars: &[Mcq],
    method: Method,
    token_cfg: &TokenEvalConfig,
    instruct_cfg: &InstructEvalConfig,
    rng: &mut Rng,
) -> Result<Score, EvalFailure> {
    let span = astro_telemetry::span!("eval_checked", method = method.key());
    let (score, failed, first_error) =
        run_eval(model, questions, exemplars, method, token_cfg, instruct_cfg, rng);
    span.record_f64("questions", score.total as f64);
    if failed == 0 {
        return Ok(score);
    }
    Err(EvalFailure {
        degraded: score,
        failed,
        first_error: first_error.unwrap_or_default(),
    })
}

/// Shared implementation of [`evaluate`] / [`evaluate_checked`]: score the
/// question set and report `(score, failed_questions, first_error)`.
fn run_eval(
    model: &EvalModel<'_>,
    questions: &[&Mcq],
    exemplars: &[Mcq],
    method: Method,
    token_cfg: &TokenEvalConfig,
    instruct_cfg: &InstructEvalConfig,
    rng: &mut Rng,
) -> (Score, usize, Option<String>) {
    let consistent = model.validate();
    assert!(consistent.is_ok(), "inconsistent EvalModel: {}", consistent.unwrap_err());
    let mut failed = 0usize;
    let mut first_error: Option<String> = None;
    let score = match method {
        Method::TokenBase | Method::TokenInstruct => {
            let outcomes = token_method_outcomes(model, questions, exemplars, token_cfg);
            let mut correct = 0;
            for (o, q) in outcomes.iter().zip(questions.iter()) {
                if let Some(e) = &o.error {
                    failed += 1;
                    first_error.get_or_insert_with(|| e.to_string());
                } else if o.prediction == q.answer {
                    correct += 1;
                }
            }
            Score {
                correct,
                total: questions.len(),
                stages: [0; 4],
            }
        }
        Method::FullInstruct => {
            let answers = instruct_method(model, questions, instruct_cfg, rng);
            let mut stages = [0usize; 4];
            let mut correct = 0;
            for (a, q) in answers.iter().zip(questions.iter()) {
                let si = match a.stage {
                    ExtractionStage::Json => 0,
                    ExtractionStage::Pattern => 1,
                    ExtractionStage::Interpreter => 2,
                    ExtractionStage::Failed => 3,
                };
                stages[si] += 1;
                if let Some(e) = &a.error {
                    failed += 1;
                    first_error.get_or_insert_with(|| e.to_string());
                } else if a.prediction == Some(q.answer) {
                    correct += 1;
                }
            }
            astro_telemetry::counter("eval.extract.json").add(stages[0] as u64);
            astro_telemetry::counter("eval.extract.pattern").add(stages[1] as u64);
            astro_telemetry::counter("eval.extract.interpreter").add(stages[2] as u64);
            astro_telemetry::counter("eval.extract.failed").add(stages[3] as u64);
            Score {
                correct,
                total: questions.len(),
                stages,
            }
        }
    };
    astro_telemetry::counter("eval.questions").add(score.total as u64);
    astro_telemetry::counter("eval.correct").add(score.correct as u64);
    astro_telemetry::counter("eval.failed_questions").add(failed as u64);
    astro_telemetry::Event::new("eval.method")
        .str_field("method", method.key())
        .u64_field("correct", score.correct as u64)
        .u64_field("total", score.total as u64)
        .u64_field("failed", failed as u64)
        .f64_field("accuracy_pct", score.percent())
        .f64_field("fallback_rate", score.parse_trouble_rate())
        .emit();
    (score, failed, first_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_mcq::{McqConfig, McqDataset};
    use astro_model::{ModelConfig, Params};
    use astro_tokenizer::{train_bpe, BpeTrainerConfig};
    use astro_world::{World, WorldConfig};

    #[test]
    fn tier_breakdown_counts_by_tier() {
        let world = World::generate(61, WorldConfig::small());
        let mut rng = Rng::seed_from(61);
        let ds = McqDataset::generate(&world, &McqConfig::default(), &mut rng);
        let qs: Vec<&Mcq> = ds.questions.iter().take(40).collect();
        // Predict everything correctly.
        let preds: Vec<usize> = qs.iter().map(|q| q.answer).collect();
        let b = TierBreakdown::from_predictions(&qs, &preds);
        let total = b.consensus.1 + b.frontier.1 + b.detail.1;
        assert_eq!(total, 40);
        for tier in [FactTier::Consensus, FactTier::Frontier] {
            if let Some(p) = b.percent(tier) {
                assert_eq!(p, 100.0);
            }
        }
        // Predict everything wrong.
        let wrong: Vec<usize> = qs.iter().map(|q| (q.answer + 1) % 4).collect();
        let b2 = TierBreakdown::from_predictions(&qs, &wrong);
        assert_eq!(b2.percent(FactTier::Consensus).unwrap_or(0.0), 0.0);
    }

    #[test]
    fn tier_breakdown_empty_tier_is_none() {
        let b = TierBreakdown::default();
        assert!(b.percent(FactTier::Detail).is_none());
    }

    #[test]
    fn bootstrap_ci_brackets_point_estimate() {
        let mut rng = Rng::seed_from(3);
        let correctness: Vec<bool> = (0..200).map(|i| i % 4 != 0).collect(); // 75%
        let (lo, hi) = bootstrap_ci(&correctness, 500, 0.95, &mut rng);
        assert!(lo <= 75.0 && 75.0 <= hi, "({lo}, {hi})");
        assert!(hi - lo < 20.0, "interval implausibly wide: ({lo}, {hi})");
        assert!(hi - lo > 1.0, "interval implausibly tight: ({lo}, {hi})");
    }

    #[test]
    fn bootstrap_ci_degenerate_all_correct() {
        let mut rng = Rng::seed_from(4);
        let (lo, hi) = bootstrap_ci(&[true; 50], 200, 0.9, &mut rng);
        assert_eq!((lo, hi), (100.0, 100.0));
    }

    #[test]
    #[should_panic]
    fn bootstrap_ci_rejects_empty() {
        bootstrap_ci(&[], 10, 0.95, &mut Rng::seed_from(0));
    }

    #[test]
    fn percent_and_trouble_rate() {
        let s = Score {
            correct: 3,
            total: 4,
            stages: [1, 1, 1, 1],
        };
        assert!((s.percent() - 75.0).abs() < 1e-9);
        assert!((s.parse_trouble_rate() - 0.5).abs() < 1e-9);
        let empty = Score {
            correct: 0,
            total: 0,
            stages: [0; 4],
        };
        assert_eq!(empty.percent(), 0.0);
        assert_eq!(empty.parse_trouble_rate(), 0.0);
    }

    #[test]
    fn method_labels_match_table1_columns() {
        assert_eq!(Method::all().len(), 3);
        assert!(Method::FullInstruct.label().contains("Full"));
        assert!(Method::TokenBase.label().contains("Base"));
    }

    #[test]
    fn evaluate_runs_all_methods_on_untrained_model() {
        let world = World::generate(17, WorldConfig::small());
        let mut rng = Rng::seed_from(17);
        let ds = McqDataset::generate(&world, &McqConfig::default(), &mut rng);
        let tok = train_bpe(
            &[ds.questions[0].question.clone()],
            &BpeTrainerConfig {
                vocab_size: 300,
                ..Default::default()
            },
        );
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = Params::init(cfg, &mut Rng::seed_from(1));
        let model = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        let qs: Vec<&Mcq> = ds.questions.iter().take(4).collect();
        for method in Method::all() {
            let s = evaluate(
                &model,
                &qs,
                &ds.exemplars,
                method,
                &TokenEvalConfig::default(),
                &InstructEvalConfig::default(),
                &mut rng,
            );
            assert_eq!(s.total, 4);
            assert!(s.correct <= 4);
            if method == Method::FullInstruct {
                assert_eq!(s.stages.iter().sum::<usize>(), 4);
            }
        }
    }
}
