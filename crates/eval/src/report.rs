//! Report emitters: Table I and Figure 1.
//!
//! The `table1` and `figure1` bench binaries feed measured scores through
//! these renderers to regenerate the paper's artefacts: the table with its
//! ↑ / ↓ / ⇒ arrows against each series' native baseline, and the figure
//! as both an ASCII chart (three symbols per model, horizontal baseline
//! markers) and a CSV series for external plotting.

use crate::score::Method;

/// Arrow comparing an AstroLLaMA score to its native baseline
/// (paper Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrow {
    /// Better than baseline.
    Up,
    /// Worse than baseline.
    Down,
    /// Similar to baseline.
    Same,
}

impl Arrow {
    /// Classify a score against its baseline with a `tol`-point band.
    pub fn classify(score: f64, baseline: f64, tol: f64) -> Arrow {
        if score > baseline + tol {
            Arrow::Up
        } else if score < baseline - tol {
            Arrow::Down
        } else {
            Arrow::Same
        }
    }

    /// The glyph used in the table.
    pub fn glyph(self) -> &'static str {
        match self {
            Arrow::Up => "↑",
            Arrow::Down => "↓",
            Arrow::Same => "⇒",
        }
    }
}

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct ModelRow {
    /// Model name, e.g. `AstroLLaMA-2-70B-AIC (sim)`.
    pub name: String,
    /// Series header this row belongs under, e.g. `LLaMA-2 Series (70B)`.
    pub series: String,
    /// Scores in percent: `[full instruct, token instruct, token base]`.
    /// `None` renders as `-` (the paper has no instruct scores for
    /// AstroLLaMA-2-7B-Abstract).
    pub scores: [Option<f64>; 3],
    /// Index of this row's native baseline within the row list, if this is
    /// a CPT model to be arrowed.
    pub baseline: Option<usize>,
    /// Source column (Meta / AstroMLab / uTBD).
    pub source: String,
}

/// Points within which a score counts as "similar" (⇒).
pub const ARROW_TOLERANCE: f64 = 1.0;

/// Render Table I as fixed-width text.
pub fn render_table1(rows: &[ModelRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>16} {:>26} {:>22} {:>10}\n",
        "Model", "Full Instruct(%)", "Token (Instruct Model)(%)", "Token (Base Model)(%)", "Source"
    ));
    out.push_str(&"-".repeat(114));
    out.push('\n');
    let mut current_series = String::new();
    for row in rows {
        if row.series != current_series {
            current_series = row.series.clone();
            out.push_str(&format!("{current_series}\n"));
        }
        let cell = |i: usize| -> String {
            match row.scores[i] {
                None => "-".to_string(),
                Some(s) => {
                    let arrow = row
                        .baseline
                        .and_then(|b| rows[b].scores[i].map(|base| (s, base)))
                        .map(|(s, base)| Arrow::classify(s, base, ARROW_TOLERANCE).glyph())
                        .unwrap_or("");
                    format!("{s:.1} {arrow}").trim_end().to_string()
                }
            }
        };
        out.push_str(&format!(
            "  {:<32} {:>16} {:>26} {:>22} {:>10}\n",
            row.name,
            cell(0),
            cell(1),
            cell(2),
            row.source
        ));
    }
    out
}

/// Symbols used for the three methods in the ASCII figure.
fn method_symbol(m: Method) -> char {
    match m {
        Method::FullInstruct => 'o',
        Method::TokenInstruct => '+',
        Method::TokenBase => '*',
    }
}

/// Render Figure 1: per-model score columns with the three method symbols
/// on a shared percentage axis, plus horizontal baseline lines.
pub fn render_figure1(rows: &[ModelRow], lo: f64, hi: f64) -> String {
    assert!(hi > lo, "figure range must be non-empty");
    let height = 24usize;
    let col_w = 8usize;
    let mut grid = vec![vec![' '; rows.len() * col_w + 8]; height + 1];
    let y_of = |score: f64| -> usize {
        let t = ((score - lo) / (hi - lo)).clamp(0.0, 1.0);
        height - (t * height as f64).round() as usize
    };
    // Baseline horizontal dashes across the figure (full-instruct score of
    // each baseline row, as in the paper).
    for row in rows {
        if row.baseline.is_none() {
            if let Some(s) = row.scores[0] {
                let y = y_of(s);
                for x in 8..grid[0].len() {
                    if grid[y][x] == ' ' {
                        grid[y][x] = '-';
                    }
                }
            }
        }
    }
    // Score symbols.
    for (i, row) in rows.iter().enumerate() {
        let x0 = 8 + i * col_w + col_w / 2;
        for (mi, m) in Method::all().iter().enumerate() {
            if let Some(s) = row.scores[mi] {
                let y = y_of(s);
                let x = x0 + mi; // jitter methods side by side
                if x < grid[y].len() {
                    grid[y][x] = method_symbol(*m);
                }
            }
        }
    }
    // Axis labels.
    let mut out = String::new();
    for (y, line) in grid.iter().enumerate() {
        let val = hi - (hi - lo) * y as f64 / height as f64;
        let label = if y % 4 == 0 {
            format!("{val:>6.1}|")
        } else {
            format!("{:>6}|", "")
        };
        out.push_str(&label);
        out.push_str(&line.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>7}", ""));
    for row in rows {
        let short: String = row.name.chars().take(col_w - 1).collect();
        out.push_str(&format!("{short:<col_w$}"));
    }
    out.push('\n');
    out.push_str("legend: o full-instruct   + token(instruct)   * token(base)   -- native full-instruct baseline\n");
    out
}

/// Emit the figure's data as CSV (`model,method,score`).
pub fn figure1_csv(rows: &[ModelRow]) -> String {
    let mut out = String::from("model,method,score_percent\n");
    for row in rows {
        for (mi, m) in Method::all().iter().enumerate() {
            if let Some(s) = row.scores[mi] {
                out.push_str(&format!("{},{},{s:.2}\n", row.name, m.label()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ModelRow> {
        vec![
            ModelRow {
                name: "LLaMA-2-70B (sim)".to_string(),
                series: "LLaMA-2 Series (70B)".to_string(),
                scores: [Some(70.7), Some(71.4), Some(73.9)],
                baseline: None,
                source: "Meta".to_string(),
            },
            ModelRow {
                name: "AstroLLaMA-2-70B-AIC (sim)".to_string(),
                series: "AstroLLaMA-2 Series (70B)".to_string(),
                scores: [Some(64.7), Some(75.4), Some(76.0)],
                baseline: Some(0),
                source: "AstroMLab".to_string(),
            },
            ModelRow {
                name: "AstroLLaMA-2-7B-Abstract (sim)".to_string(),
                series: "AstroLLaMA-2 Series (7B)".to_string(),
                scores: [None, None, Some(43.5)],
                baseline: Some(0),
                source: "uTBD".to_string(),
            },
        ]
    }

    #[test]
    fn arrows_classify_with_tolerance() {
        assert_eq!(Arrow::classify(76.0, 73.9, 1.0), Arrow::Up);
        assert_eq!(Arrow::classify(64.7, 70.7, 1.0), Arrow::Down);
        assert_eq!(Arrow::classify(72.0, 71.9, 1.0), Arrow::Same);
    }

    #[test]
    fn table_contains_arrows_and_dashes() {
        let t = render_table1(&rows());
        assert!(t.contains("76.0 ↑"), "{t}");
        assert!(t.contains("64.7 ↓"), "{t}");
        assert!(t.contains(" -"), "missing dash for absent score:\n{t}");
        assert!(t.contains("LLaMA-2 Series (70B)"));
    }

    #[test]
    fn baseline_rows_have_no_arrows() {
        let t = render_table1(&rows());
        let baseline_line = t
            .lines()
            .find(|l| l.contains("LLaMA-2-70B (sim)"))
            .unwrap();
        assert!(!baseline_line.contains('↑') && !baseline_line.contains('↓'));
    }

    #[test]
    fn figure_renders_symbols_and_baseline() {
        let f = render_figure1(&rows(), 40.0, 80.0);
        assert!(f.contains('o') && f.contains('+') && f.contains('*'), "{f}");
        assert!(f.contains('-'), "baseline line missing");
        assert!(f.contains("legend"));
    }

    #[test]
    fn csv_lists_all_present_scores() {
        let csv = figure1_csv(&rows());
        // 3 + 3 + 1 score cells
        assert_eq!(csv.lines().count(), 1 + 7);
        assert!(csv.starts_with("model,method,score_percent"));
        assert!(csv.contains("AstroLLaMA-2-70B-AIC (sim),Token Prediction (Base Model),76.00"));
    }

    #[test]
    #[should_panic]
    fn empty_figure_range_panics() {
        render_figure1(&rows(), 50.0, 50.0);
    }
}
