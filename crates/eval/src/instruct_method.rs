//! The full-instruct benchmarking method (paper §V-A, Appendix B).
//!
//! The instruct model is prompted conversationally — expert role-play
//! system prompt, the question with options, chain-of-thought + JSON
//! output instructions — and generates freely; the answer is recovered by
//! the extraction cascade. This is the method that exposes
//! instruction-following weaknesses: a model whose knowledge is intact
//! but whose output formatting degraded after SFT loses points here while
//! holding its token-method score (the paper's central SFT finding).

use crate::extract::{extract_answer, ExtractionStage};
use crate::EvalModel;
use astro_mcq::prompts::instruct_method_messages;
use astro_mcq::Mcq;
use astro_model::{sample_logits, InferenceSession, SamplerConfig};
use astro_prng::Rng;
use astro_serve::{EngineConfig, EvalEngine, GenerateJob, ServeError};
use astro_tokenizer::{ChatMessage, ChatTemplate, Role};

/// Configuration for the full-instruct method.
#[derive(Clone, Copy, Debug)]
pub struct InstructEvalConfig {
    /// Maximum generated tokens per answer (paper: up to 512; scaled to
    /// our context windows).
    pub max_new_tokens: usize,
    /// Sampling settings ("default instructions" per the paper; greedy
    /// keeps our runs deterministic).
    pub sampler: SamplerConfig,
    /// Use the verbose Appendix-B boilerplate prompt.
    pub verbose_prompt: bool,
    /// How batches execute: worker count and prefix caching. The default
    /// ([`EngineConfig::serial`]) preserves the original single-threaded
    /// fresh-session behaviour exactly.
    pub engine: EngineConfig,
}

impl Default for InstructEvalConfig {
    fn default() -> Self {
        InstructEvalConfig {
            max_new_tokens: 48,
            sampler: SamplerConfig::greedy(),
            verbose_prompt: false,
            engine: EngineConfig::serial(),
        }
    }
}

impl InstructEvalConfig {
    /// Structural validation: require a usable generation budget and
    /// delegate to [`EngineConfig::validate`]. Checked at gateway startup
    /// and usable by any embedding before work is scheduled.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_new_tokens == 0 {
            return Err("full-instruct max_new_tokens must be at least 1".to_string());
        }
        if self.max_new_tokens > MAX_NEW_TOKENS {
            return Err(format!(
                "full-instruct max_new_tokens {} exceeds the {MAX_NEW_TOKENS}-token bound",
                self.max_new_tokens
            ));
        }
        self.engine.validate().map_err(|e| format!("engine: {e}"))
    }
}

/// Upper bound on the full-instruct generation budget (the paper's
/// deployments cap at 512; our context windows are far smaller).
pub const MAX_NEW_TOKENS: usize = 4096;

/// One question's full-instruct outcome.
#[derive(Clone, Debug)]
pub struct InstructAnswer {
    /// The extracted option index, if any.
    pub prediction: Option<usize>,
    /// Which cascade stage recovered it.
    pub stage: ExtractionStage,
    /// The raw generated text (diagnostics).
    pub raw: String,
    /// A per-question engine failure; the rest of the sweep is
    /// unaffected. A failed question counts as unanswered.
    pub error: Option<ServeError>,
}

/// The encoded, truncated chat prompt and generation budget for one
/// question — shared by the serial path and the engine job builder so
/// both generate from the identical context.
fn prompt_and_budget(
    model: &EvalModel<'_>,
    question: &Mcq,
    config: &InstructEvalConfig,
) -> (Vec<u32>, usize) {
    let (system, user) = instruct_method_messages(question, config.verbose_prompt);
    let msgs = [
        ChatMessage::new(Role::System, system),
        ChatMessage::new(Role::User, user),
    ];
    let mut prompt = ChatTemplate.render_prompt(model.tokenizer, &msgs);
    // Keep the tail if the prompt exceeds the context, reserving room to
    // generate.
    let cap = model.params.cfg.max_seq;
    let budget = config.max_new_tokens.min(cap.saturating_sub(8));
    if prompt.len() > cap - budget {
        prompt.drain(0..prompt.len() - (cap - budget));
    }
    (prompt, budget)
}

/// The engine job for one question, mirroring [`instruct_method_answer`]
/// exactly (prompt, budget, sampler and stop set). `rng` must be the same
/// substream the serial path would use for this question so sampling is
/// bitwise identical. Public so out-of-process front-ends (the network
/// gateway) can build jobs that match the in-process path.
pub fn generate_job(
    model: &EvalModel<'_>,
    question: &Mcq,
    config: &InstructEvalConfig,
    rng: Rng,
) -> GenerateJob {
    let (prompt, budget) = prompt_and_budget(model, question, config);
    GenerateJob {
        prompt,
        group: Some(question.article as u64),
        max_new: budget,
        sampler: config.sampler,
        rng,
        stop: vec![model.tokenizer.special("<|end|>"), model.tokenizer.eos()],
        trace: None,
    }
}

/// Generate an answer for one question.
pub fn instruct_method_answer(
    model: &EvalModel<'_>,
    question: &Mcq,
    config: &InstructEvalConfig,
    rng: &mut Rng,
) -> InstructAnswer {
    let (prompt, budget) = prompt_and_budget(model, question, config);
    let mut sess = InferenceSession::new(model.params.cfg);
    let mut logits = sess.feed_prompt(model.params, &prompt);
    let end = model.tokenizer.special("<|end|>");
    let eos = model.tokenizer.eos();
    let mut generated: Vec<u32> = Vec::with_capacity(budget);
    for _ in 0..budget {
        if sess.remaining() == 0 {
            break;
        }
        let next = sample_logits(&logits, &config.sampler, rng) as u32;
        if next == end || next == eos {
            break;
        }
        generated.push(next);
        logits = sess.feed(model.params, next).to_vec();
    }
    let raw = model.tokenizer.decode(&generated);
    let (prediction, stage) = extract_answer(&raw, &question.options);
    InstructAnswer {
        prediction,
        stage,
        raw,
        error: None,
    }
}

/// Evaluate the full-instruct method over a question set. Each question
/// draws from its own random substream (`"instruct-q"` by index), so the
/// results are identical for every `config.engine` setting — scheduling
/// order cannot leak into sampling.
pub fn instruct_method(
    model: &EvalModel<'_>,
    questions: &[&Mcq],
    config: &InstructEvalConfig,
    rng: &mut Rng,
) -> Vec<InstructAnswer> {
    if config.engine.is_serial_uncached() {
        // The pre-engine reference path: fresh session per question.
        return questions
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut qrng = rng.substream_idx("instruct-q", i as u64);
                instruct_method_answer(model, q, config, &mut qrng)
            })
            .collect();
    }
    let engine = EvalEngine::new(config.engine, model.params);
    let jobs: Vec<GenerateJob> = questions
        .iter()
        .enumerate()
        .map(|(i, q)| generate_job(model, q, config, rng.substream_idx("instruct-q", i as u64)))
        .collect();
    engine
        .generate_batch(jobs)
        .into_iter()
        .zip(questions.iter())
        .map(|(r, q)| match r {
            Ok(generated) => {
                let raw = model.tokenizer.decode(&generated);
                let (prediction, stage) = extract_answer(&raw, &q.options);
                InstructAnswer {
                    prediction,
                    stage,
                    raw,
                    error: None,
                }
            }
            Err(e) => InstructAnswer {
                prediction: None,
                stage: ExtractionStage::Failed,
                raw: String::new(),
                error: Some(e),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_mcq::{McqConfig, McqDataset};
    use astro_model::{ModelConfig, Params};
    use astro_tokenizer::{train_bpe, BpeTrainerConfig, Tokenizer};
    use astro_world::{World, WorldConfig};

    fn setup() -> (Tokenizer, McqDataset) {
        let world = World::generate(9, WorldConfig::small());
        let mut rng = Rng::seed_from(9);
        let ds = McqDataset::generate(&world, &McqConfig::default(), &mut rng);
        let corpus = ds
            .questions
            .iter()
            .take(20)
            .map(|q| q.question.clone())
            .collect::<Vec<_>>()
            .join(" ");
        let tok = train_bpe(
            &[corpus],
            &BpeTrainerConfig {
                vocab_size: 380,
                ..Default::default()
            },
        );
        (tok, ds)
    }

    #[test]
    fn generates_and_reports_stage() {
        let (tok, ds) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = Params::init(cfg, &mut Rng::seed_from(1));
        let model = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        let mut rng = Rng::seed_from(2);
        let a = instruct_method_answer(
            &model,
            &ds.questions[0],
            &InstructEvalConfig::default(),
            &mut rng,
        );
        // Untrained model: answer likely unparseable, but the pipeline
        // must complete and classify.
        match a.prediction {
            None => assert_eq!(a.stage, ExtractionStage::Failed),
            Some(p) => assert!(p < 4),
        }
    }

    #[test]
    fn respects_generation_budget() {
        let (tok, ds) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = Params::init(cfg, &mut Rng::seed_from(3));
        let model = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        let config = InstructEvalConfig {
            max_new_tokens: 4,
            ..Default::default()
        };
        let mut rng = Rng::seed_from(4);
        let a = instruct_method_answer(&model, &ds.questions[0], &config, &mut rng);
        assert!(tok.encode(&a.raw).len() <= 8, "raw too long: {:?}", a.raw);
    }

    #[test]
    fn batch_evaluation_is_deterministic_with_greedy() {
        let (tok, ds) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = Params::init(cfg, &mut Rng::seed_from(5));
        let model = EvalModel {
            params: &params,
            tokenizer: &tok,
        };
        let qs: Vec<&Mcq> = ds.questions.iter().take(3).collect();
        let mut r1 = Rng::seed_from(6);
        let mut r2 = Rng::seed_from(6);
        let a = instruct_method(&model, &qs, &InstructEvalConfig::default(), &mut r1);
        let b = instruct_method(&model, &qs, &InstructEvalConfig::default(), &mut r2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.raw, y.raw);
            assert_eq!(x.prediction, y.prediction);
        }
    }
}
