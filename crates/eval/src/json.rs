//! A minimal JSON parser sufficient for the full-instruct output format.
//!
//! The paper's evaluation asks models for
//! `{"ANSWER": "X", "EXPLANATION": "..."}` and parses it; weaker models
//! emit malformed JSON, which is exactly the failure mode the extraction
//! cascade handles. We implement a small recursive-descent parser for
//! objects / strings / numbers / booleans — no external dependency, and
//! the parser itself is part of the reproduced system.

use std::collections::BTreeMap;

/// A typed parse failure: what went wrong and the byte offset where the
/// parser gave up. Replaces the old stringly-typed `Result<_, String>` so
/// the extraction cascade (and tests) can match on structure instead of
/// substrings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What the parser expected or found, e.g. `expected ':'`.
    pub message: String,
}

impl JsonError {
    fn new(at: usize, message: impl Into<String>) -> JsonError {
        JsonError { at, message: message.into() }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value (subset: no unicode escapes beyond `\u` passthrough).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// An object with string keys.
    Object(BTreeMap<String, Json>),
    /// An array.
    Array(Vec<Json>),
    /// A string.
    String(String),
    /// A number (stored as f64).
    Number(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parse a complete JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new(pos, "trailing characters"));
        }
        Ok(v)
    }

    /// Parse the *first* JSON object embedded in arbitrary text (models
    /// often wrap their JSON in prose). Scans for `{` and attempts a parse
    /// at each candidate.
    pub fn parse_embedded(input: &str) -> Option<Json> {
        let bytes = input.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'{' {
                let mut pos = i;
                if let Ok(v) = parse_value(bytes, &mut pos) {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Get a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Get a field case-insensitively.
    pub fn get_ci(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(key))
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    if *pos >= b.len() {
        return Err(JsonError::new(*pos, "unexpected end of input"));
    }
    match b[*pos] {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => Ok(Json::String(parse_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        c => Err(JsonError::new(*pos, format!("unexpected byte {:?}", c as char))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(JsonError::new(*pos, format!("invalid literal, expected {lit:?}")))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume {
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b'}' {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if *pos >= b.len() || b[*pos] != b'"' {
            return Err(JsonError::new(*pos, "expected string key"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if *pos >= b.len() || b[*pos] != b':' {
            return Err(JsonError::new(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(JsonError::new(*pos, "expected ',' or '}'")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b']' {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(JsonError::new(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // consume opening quote
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(&c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                    Some(_) | None => return Err(JsonError::new(*pos, "bad escape")),
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 scalar.
                let s = &b[*pos..];
                let len = utf8_len(s[0]);
                if s.len() < len {
                    return Err(JsonError::new(*pos, "truncated UTF-8"));
                }
                let scalar = std::str::from_utf8(&s[..len])
                    .map_err(|e| JsonError::new(*pos, format!("bad UTF-8: {e}")))?;
                out.push_str(scalar);
                *pos += len;
            }
        }
    }
    Err(JsonError::new(*pos, "unterminated string"))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b[*pos] == b'-' {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    // The scanned range is ASCII digits/sign/exponent bytes by
    // construction, but keep the conversion fallible anyway.
    let s = std::str::from_utf8(&b[start..*pos])
        .map_err(|e| JsonError::new(start, format!("non-ASCII number: {e}")))?;
    s.parse::<f64>()
        .map(Json::Number)
        .map_err(|e| JsonError::new(start, format!("bad number {s:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_answer_format() {
        let j = Json::parse(r#"{"ANSWER": "B", "EXPLANATION": "because"}"#).unwrap();
        assert_eq!(j.get("ANSWER").and_then(Json::as_str), Some("B"));
        assert_eq!(j.get("EXPLANATION").and_then(Json::as_str), Some("because"));
    }

    #[test]
    fn case_insensitive_get() {
        let j = Json::parse(r#"{"answer": "C"}"#).unwrap();
        assert_eq!(j.get_ci("ANSWER").and_then(Json::as_str), Some("C"));
    }

    #[test]
    fn parses_nested_and_arrays() {
        let j = Json::parse(r#"{"a": [1, 2.5, true, null], "b": {"c": "d"}}"#).unwrap();
        match j.get("a") {
            Some(Json::Array(items)) => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[0], Json::Number(1.0));
                assert_eq!(items[2], Json::Bool(true));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            j.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("d")
        );
    }

    #[test]
    fn escapes_in_strings() {
        let j = Json::parse(r#"{"s": "line\nbreak \"quoted\""}"#).unwrap();
        assert_eq!(j.get("s").and_then(Json::as_str), Some("line\nbreak \"quoted\""));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{",
            "{\"a\" 1}",
            "{\"a\": }",
            "[1, 2",
            "{\"a\": \"unterminated}",
            "{'single': 'quotes'}",
            "",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn embedded_object_in_prose() {
        let text = "Sure! Here is my answer: {\"ANSWER\": \"D\"} hope that helps";
        let j = Json::parse_embedded(text).unwrap();
        assert_eq!(j.get("ANSWER").and_then(Json::as_str), Some("D"));
    }

    #[test]
    fn embedded_skips_broken_then_finds_valid() {
        let text = "{oops {\"ANSWER\": \"A\"}";
        let j = Json::parse_embedded(text).unwrap();
        assert_eq!(j.get("ANSWER").and_then(Json::as_str), Some("A"));
    }

    #[test]
    fn embedded_none_when_absent() {
        assert!(Json::parse_embedded("no json here").is_none());
    }

    #[test]
    fn unicode_strings() {
        let j = Json::parse(r#"{"s": "σ Ori ☉"}"#).unwrap();
        assert_eq!(j.get("s").and_then(Json::as_str), Some("σ Ori ☉"));
    }
}
