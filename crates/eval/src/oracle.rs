//! Flagship-model oracles.
//!
//! The paper contextualises AstroLLaMA-2-70B against proprietary
//! flagships (Gemini-1.5-Pro 77.6%, Claude-3.0-Sonnet 76.7%, GLM-4-0520
//! 75.1%). We cannot call those APIs; for Figure 1 context lines and for
//! testing the scoring machinery we model a flagship as a *noisy fact
//! oracle*: it answers correctly with probability `p` (its calibrated
//! benchmark accuracy) and picks a uniformly random wrong option
//! otherwise. Over the 4,425-question set this reproduces the quoted
//! accuracy to within sampling error — which is all the paper uses the
//! flagships for.

use astro_mcq::Mcq;
use astro_prng::Rng;

/// A calibrated-accuracy oracle model.
#[derive(Clone, Debug)]
pub struct FlagshipOracle {
    /// Display name.
    pub name: String,
    /// Probability of answering a question correctly.
    pub accuracy: f64,
}

impl FlagshipOracle {
    /// Construct an oracle with a calibrated accuracy in `[0, 1]`.
    pub fn new(name: impl Into<String>, accuracy: f64) -> Self {
        assert!((0.0..=1.0).contains(&accuracy), "accuracy must be in [0,1]");
        FlagshipOracle {
            name: name.into(),
            accuracy,
        }
    }

    /// The three §VI flagships at their quoted scores.
    pub fn paper_flagships() -> Vec<FlagshipOracle> {
        crate::value::FLAGSHIP_SCORES
            .iter()
            .map(|&(name, score)| FlagshipOracle::new(name, score / 100.0))
            .collect()
    }

    /// Answer one question (option index 0–3).
    pub fn answer(&self, q: &Mcq, rng: &mut Rng) -> usize {
        if rng.chance(self.accuracy) {
            q.answer
        } else {
            // Uniform over the three wrong options.
            let mut wrong = rng.index(3);
            if wrong >= q.answer {
                wrong += 1;
            }
            wrong
        }
    }

    /// Score the oracle over a question set; returns percent correct.
    pub fn score(&self, questions: &[&Mcq], rng: &mut Rng) -> f64 {
        if questions.is_empty() {
            return 0.0;
        }
        let correct = questions
            .iter()
            .filter(|q| self.answer(q, rng) == q.answer)
            .count();
        100.0 * correct as f64 / questions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_mcq::{McqConfig, McqDataset};
    use astro_world::{World, WorldConfig};

    fn questions() -> McqDataset {
        let world = World::generate(55, WorldConfig::default());
        let mut rng = Rng::seed_from(55);
        McqDataset::generate(&world, &McqConfig::default(), &mut rng)
    }

    #[test]
    fn calibrated_accuracy_is_reproduced_at_benchmark_scale() {
        let ds = questions();
        let qs: Vec<&Mcq> = ds.questions.iter().collect();
        let mut rng = Rng::seed_from(1);
        for oracle in FlagshipOracle::paper_flagships() {
            let score = oracle.score(&qs, &mut rng);
            let want = oracle.accuracy * 100.0;
            assert!(
                (score - want).abs() < 2.5,
                "{}: measured {score:.1} vs calibrated {want:.1}",
                oracle.name
            );
        }
    }

    #[test]
    fn perfect_and_zero_oracles() {
        let ds = questions();
        let qs: Vec<&Mcq> = ds.questions.iter().take(50).collect();
        let mut rng = Rng::seed_from(2);
        assert_eq!(FlagshipOracle::new("perfect", 1.0).score(&qs, &mut rng), 100.0);
        assert_eq!(FlagshipOracle::new("broken", 0.0).score(&qs, &mut rng), 0.0);
    }

    #[test]
    fn wrong_answers_are_never_the_correct_option() {
        let ds = questions();
        let oracle = FlagshipOracle::new("always-wrong", 0.0);
        let mut rng = Rng::seed_from(3);
        for q in ds.questions.iter().take(100) {
            let a = oracle.answer(q, &mut rng);
            assert_ne!(a, q.answer);
            assert!(a < 4);
        }
    }

    #[test]
    fn empty_question_set_scores_zero() {
        let mut rng = Rng::seed_from(4);
        assert_eq!(FlagshipOracle::new("x", 0.5).score(&[], &mut rng), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_accuracy_panics() {
        FlagshipOracle::new("bad", 1.5);
    }
}
