//! The cost-efficiency value analysis (paper §VI).
//!
//! The paper, citing Ting et al. 2024: *"an improvement of about 3.5
//! points is equivalent to approximately a 10-fold increase in value when
//! extrapolating from the current score and price trade-off of some
//! proprietary models"*, and frames the 70B model's +2.1-point gain as
//! two-thirds of a Haiku→Sonnet or 4o-mini→4o step. This module encodes
//! that extrapolation and the flagship reference scores quoted in §VI.

/// Points of benchmark gain equivalent to a 10× value increase.
pub const POINTS_PER_DECADE: f64 = 3.5;

/// Flagship scores quoted in the paper (§VI) for context lines.
pub const FLAGSHIP_SCORES: [(&str, f64); 3] = [
    ("Gemini-1.5-Pro-001", 77.6),
    ("Claude-3.0-Sonnet", 76.7),
    ("GLM-4-0520", 75.1),
];

/// The paper's own headline numbers, used to cross-check the analysis.
pub const PAPER_70B_BASE_GAIN: f64 = 76.0 - 73.9;

/// Value multiplier implied by a score gain of `delta_points`
/// (`10^(Δ/3.5)`).
pub fn value_ratio(delta_points: f64) -> f64 {
    10f64.powf(delta_points / POINTS_PER_DECADE)
}

/// Express one gain as a fraction of another (e.g. the paper's "two-thirds
/// of the Haiku→Sonnet gain").
pub fn gain_fraction(delta_points: f64, reference_delta: f64) -> f64 {
    assert!(reference_delta != 0.0, "reference gain must be non-zero");
    delta_points / reference_delta
}

/// Summarise a measured gain in the paper's terms.
#[derive(Clone, Debug)]
pub struct ValueSummary {
    /// The score delta in points.
    pub delta_points: f64,
    /// The implied value multiplier.
    pub value_multiplier: f64,
    /// The paper's quoted 70B gain, for comparison.
    pub paper_gain: f64,
}

/// Build a [`ValueSummary`] from measured scores.
pub fn summarize_gain(cpt_score: f64, base_score: f64) -> ValueSummary {
    let delta = cpt_score - base_score;
    ValueSummary {
        delta_points: delta,
        value_multiplier: value_ratio(delta),
        paper_gain: PAPER_70B_BASE_GAIN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_and_a_half_points_is_10x() {
        assert!((value_ratio(3.5) - 10.0).abs() < 1e-9);
        assert!((value_ratio(7.0) - 100.0).abs() < 1e-6);
        assert!((value_ratio(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_gain_divides_value() {
        assert!(value_ratio(-3.5) - 0.1 < 1e-9);
        assert!(value_ratio(-3.5) > 0.0);
    }

    #[test]
    fn paper_gain_is_about_4x_value() {
        // +2.1 points → 10^(2.1/3.5) = 10^0.6 ≈ 3.98×
        let v = value_ratio(PAPER_70B_BASE_GAIN);
        assert!((v - 3.98).abs() < 0.05, "{v}");
    }

    #[test]
    fn gain_fraction_reproduces_two_thirds_claim() {
        // The paper calls +2.1 "two-thirds of the performance gain between
        // Claude-Haiku and Claude-Sonnet", implying that reference step is
        // ≈ 3.15 points.
        let reference = PAPER_70B_BASE_GAIN / (2.0 / 3.0);
        let frac = gain_fraction(PAPER_70B_BASE_GAIN, reference);
        assert!((frac - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn flagship_scores_bracket_the_70b_model() {
        // 76.0 sits between GLM-4 (75.1) and Gemini-1.5-Pro (77.6).
        let best = FLAGSHIP_SCORES
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::NEG_INFINITY, f64::max);
        let worst = FLAGSHIP_SCORES
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        assert!(worst < 76.0 && 76.0 < best);
    }

    #[test]
    fn summarize_gain_reports_delta() {
        let s = summarize_gain(76.0, 73.9);
        assert!((s.delta_points - 2.1).abs() < 1e-9);
        assert!(s.value_multiplier > 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_reference_panics() {
        gain_fraction(1.0, 0.0);
    }
}
