//! Answer extraction cascade for the full-instruct method.
//!
//! The paper (§V-A): *"we implemented a preliminary regex to extract
//! answers in most cases. In the rare instances where this failed, we
//! employed a GPT-4o model to interpret the intended answer from the
//! model's explanation."* Our cascade mirrors that:
//!
//! 1. [`ExtractionStage::Json`] — parse the requested JSON and read
//!    `ANSWER`;
//! 2. [`ExtractionStage::Pattern`] — pattern scan for `ANSWER: X`,
//!    `answer is X`, a leading bare letter, etc. (the "preliminary
//!    regex");
//! 3. [`ExtractionStage::Interpreter`] — the GPT-4o stand-in: match the
//!    free-form explanation against the option texts and letter mentions
//!    and pick the best-supported option;
//! 4. [`ExtractionStage::Failed`] — nothing extractable (scored wrong).

use crate::json::Json;

/// Which stage of the cascade produced the answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtractionStage {
    /// Clean JSON with an ANSWER field.
    Json,
    /// Pattern scan over the raw text.
    Pattern,
    /// Fallback interpreter over the explanation.
    Interpreter,
    /// No answer recoverable.
    Failed,
}

/// Extract an answer index (0–3) from a model's raw output.
///
/// Returns the chosen option and the stage that found it; `None` with
/// [`ExtractionStage::Failed`] when nothing is recoverable.
pub fn extract_answer(output: &str, options: &[String; 4]) -> (Option<usize>, ExtractionStage) {
    // Stage 1: JSON.
    if let Some(j) = Json::parse_embedded(output) {
        if let Some(ans) = j.get_ci("ANSWER").and_then(Json::as_str) {
            if let Some(idx) = letter_index(ans.trim()) {
                return (Some(idx), ExtractionStage::Json);
            }
            // ANSWER contained option text instead of a letter.
            if let Some(idx) = match_option_text(ans, options) {
                return (Some(idx), ExtractionStage::Json);
            }
        }
    }
    // Stage 2: pattern scan.
    if let Some(idx) = pattern_scan(output) {
        return (Some(idx), ExtractionStage::Pattern);
    }
    // Stage 3: interpreter.
    if let Some(idx) = interpret(output, options) {
        return (Some(idx), ExtractionStage::Interpreter);
    }
    (None, ExtractionStage::Failed)
}

/// Map a string beginning with an answer letter to its index.
fn letter_index(s: &str) -> Option<usize> {
    let first = s.chars().next()?;
    let idx = match first.to_ascii_uppercase() {
        'A' => 0,
        'B' => 1,
        'C' => 2,
        'D' => 3,
        _ => return None,
    };
    // Only accept if the letter stands alone ("B", "B.", "B:") — not the
    // start of a word like "Because".
    let rest = &s[first.len_utf8()..];
    if rest.is_empty() || rest.starts_with([' ', '.', ':', ')', ',']) {
        Some(idx)
    } else {
        None
    }
}

/// The "preliminary regex": scan for answer-announcement patterns.
fn pattern_scan(text: &str) -> Option<usize> {
    // Highest-priority: explicit ANSWER markers.
    for marker in ["ANSWER:", "Answer:", "answer:", "ANSWER is", "answer is", "Answer is"] {
        if let Some(pos) = text.find(marker) {
            let after = text[pos + marker.len()..].trim_start_matches([' ', '"', '*', '(']);
            if let Some(idx) = letter_index(after) {
                return Some(idx);
            }
        }
    }
    // A response that *begins* with a standalone letter ("B." / "B) ...").
    let trimmed = text.trim_start();
    if let Some(idx) = letter_index(trimmed) {
        return Some(idx);
    }
    None
}

/// The GPT-4o stand-in: score each option by how strongly the text
/// supports it (option-text occurrences weigh more than bare letter
/// mentions) and return the argmax if it is unique.
fn interpret(text: &str, options: &[String; 4]) -> Option<usize> {
    let mut scores = [0usize; 4];
    for (i, opt) in options.iter().enumerate() {
        if opt.is_empty() {
            continue;
        }
        scores[i] += 3 * text.matches(opt.as_str()).count();
    }
    // Letter mentions like "option B" or "(B)".
    for (i, letter) in ['A', 'B', 'C', 'D'].iter().enumerate() {
        for pat in [
            format!("option {letter}"),
            format!("Option {letter}"),
            format!("({letter})"),
            format!("choice {letter}"),
        ] {
            scores[i] += text.matches(&pat).count();
        }
    }
    let best = scores.iter().copied().max().unwrap_or(0);
    if best == 0 {
        return None;
    }
    let winners: Vec<usize> = (0..4).filter(|&i| scores[i] == best).collect();
    if winners.len() == 1 {
        Some(winners[0])
    } else {
        None // ambiguous — treat as unparseable
    }
}

/// Exact/substring match of ANSWER content against the option texts.
fn match_option_text(ans: &str, options: &[String; 4]) -> Option<usize> {
    let ans = ans.trim();
    options
        .iter()
        .position(|o| o == ans)
        .or_else(|| options.iter().position(|o| ans.contains(o.as_str())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> [String; 4] {
        ["0.05", "0.45", "1.2", "3.1"].map(|s| s.to_string())
    }

    #[test]
    fn clean_json_extracts_via_json_stage() {
        let out = r#"{"ANSWER": "B", "EXPLANATION": "The redshift is 0.45."}"#;
        let (idx, stage) = extract_answer(out, &opts());
        assert_eq!(idx, Some(1));
        assert_eq!(stage, ExtractionStage::Json);
    }

    #[test]
    fn json_with_option_text_in_answer() {
        let out = r#"{"ANSWER": "0.45", "EXPLANATION": "see text"}"#;
        let (idx, stage) = extract_answer(out, &opts());
        assert_eq!(idx, Some(1));
        assert_eq!(stage, ExtractionStage::Json);
    }

    #[test]
    fn json_wrapped_in_prose_still_json_stage() {
        let out = "Here you go: {\"ANSWER\": \"D\", \"EXPLANATION\": \"x\"} done";
        let (idx, stage) = extract_answer(out, &opts());
        assert_eq!(idx, Some(3));
        assert_eq!(stage, ExtractionStage::Json);
    }

    #[test]
    fn pattern_stage_catches_answer_colon() {
        let out = "I think about it... Answer: C because of the spectrum";
        let (idx, stage) = extract_answer(out, &opts());
        assert_eq!(idx, Some(2));
        assert_eq!(stage, ExtractionStage::Pattern);
    }

    #[test]
    fn pattern_stage_catches_leading_letter() {
        let (idx, stage) = extract_answer("B. The value follows from the data.", &opts());
        assert_eq!(idx, Some(1));
        assert_eq!(stage, ExtractionStage::Pattern);
    }

    #[test]
    fn leading_letter_not_confused_with_word() {
        // "Because" must not be read as answer B via the letter rule; the
        // interpreter may still find option text.
        let (idx, _) = extract_answer("Because of reasons the value is 3.1", &opts());
        assert_eq!(idx, Some(3));
    }

    #[test]
    fn interpreter_counts_option_text() {
        let out = "The measured redshift of this source is 1.2, as several surveys agree; 1.2 is consistent.";
        let (idx, stage) = extract_answer(out, &opts());
        assert_eq!(idx, Some(2));
        assert_eq!(stage, ExtractionStage::Interpreter);
    }

    #[test]
    fn interpreter_ambiguity_fails() {
        let out = "It could be 0.05 or maybe 0.45, hard to say.";
        let (idx, stage) = extract_answer(out, &opts());
        assert_eq!(idx, None);
        assert_eq!(stage, ExtractionStage::Failed);
    }

    #[test]
    fn garbage_fails() {
        let (idx, stage) = extract_answer("lorem ipsum dolor", &opts());
        assert_eq!(idx, None);
        assert_eq!(stage, ExtractionStage::Failed);
    }

    #[test]
    fn empty_output_fails() {
        let (idx, stage) = extract_answer("", &opts());
        assert_eq!(idx, None);
        assert_eq!(stage, ExtractionStage::Failed);
    }

    #[test]
    fn lowercase_json_key_accepted() {
        let out = r#"{"answer": "a"}"#;
        let (idx, stage) = extract_answer(out, &opts());
        assert_eq!(idx, Some(0));
        assert_eq!(stage, ExtractionStage::Json);
    }
}
