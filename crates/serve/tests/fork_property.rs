//! Property tests for session forking and the prefix cache, PRNG-driven
//! in the style of `crates/audit/tests/preflight_property.rs`: random
//! token streams, random split points, and the invariant that a fork is
//! **bitwise** indistinguishable from a fresh session fed the full
//! stream. This is the foundation the engine's determinism contract
//! (docs/SERVING.md) rests on.

use astro_model::{InferenceSession, ModelConfig, Params};
use astro_prng::Rng;
use astro_serve::PrefixCache;

fn setup(seed: u64, vocab: usize) -> (ModelConfig, Params) {
    let cfg = ModelConfig::tiny(vocab);
    let params = Params::init(cfg, &mut Rng::seed_from(seed));
    (cfg, params)
}

fn random_stream(rng: &mut Rng, vocab: usize, len: usize) -> Vec<u32> {
    (0..len).map(|_| (rng.next_u64() % vocab as u64) as u32).collect()
}

/// Feed a fresh session the whole stream; return the final logits.
fn fresh_logits(cfg: ModelConfig, p: &Params, stream: &[u32]) -> Vec<f32> {
    let mut sess = InferenceSession::new(cfg);
    let mut out = Vec::new();
    for &t in stream {
        out = sess.feed(p, t).to_vec();
    }
    out
}

#[test]
fn fork_at_random_split_matches_fresh_full_stream() {
    let (cfg, params) = setup(71, 40);
    let mut rng = Rng::seed_from(72);
    for trial in 0..24 {
        let len = 2 + (rng.next_u64() % (cfg.max_seq as u64 - 2)) as usize;
        let stream = random_stream(&mut rng, cfg.vocab_size, len);
        let split = 1 + (rng.next_u64() % (len as u64 - 1)) as usize;

        // Encode the prefix once, then fork (clone) and continue.
        let mut prefix_sess = InferenceSession::new(cfg);
        for &t in &stream[..split] {
            prefix_sess.feed(&params, t);
        }
        let mut fork = prefix_sess.clone();
        let mut forked = fork.last_logits().to_vec();
        for &t in &stream[split..] {
            forked = fork.feed(&params, t).to_vec();
        }

        // assign_from must behave identically to clone, even into a
        // dirty target.
        let mut assigned = InferenceSession::new(cfg);
        assigned.feed(&params, stream[0]);
        assigned.assign_from(&prefix_sess);
        let mut via_assign = assigned.last_logits().to_vec();
        for &t in &stream[split..] {
            via_assign = assigned.feed(&params, t).to_vec();
        }

        let fresh = fresh_logits(cfg, &params, &stream);
        assert_eq!(forked, fresh, "trial {trial}: clone-fork diverged at split {split}/{len}");
        assert_eq!(via_assign, fresh, "trial {trial}: assign_from-fork diverged at split {split}/{len}");
    }
}

#[test]
fn fork_of_fork_matches_fresh_at_trie_depth_three() {
    let (cfg, params) = setup(73, 40);
    let mut rng = Rng::seed_from(74);
    for trial in 0..12 {
        let len = 6 + (rng.next_u64() % (cfg.max_seq as u64 - 6)) as usize;
        let stream = random_stream(&mut rng, cfg.vocab_size, len);
        // Three nested split points: preamble | article | question — the
        // trie depth the engine builds for a grouped batch.
        let s1 = 1 + (rng.next_u64() % (len as u64 / 3)) as usize;
        let s2 = s1 + 1 + (rng.next_u64() % ((len - s1) as u64 / 2).max(1)) as usize;

        let mut level1 = InferenceSession::new(cfg);
        for &t in &stream[..s1] {
            level1.feed(&params, t);
        }
        let mut level2 = level1.clone();
        for &t in &stream[s1..s2] {
            level2.feed(&params, t);
        }
        let mut level3 = level2.clone();
        let mut logits = level3.last_logits().to_vec();
        for &t in &stream[s2..] {
            logits = level3.feed(&params, t).to_vec();
        }
        assert_eq!(
            logits,
            fresh_logits(cfg, &params, &stream),
            "trial {trial}: fork-of-fork diverged at splits {s1},{s2}/{len}"
        );
        // The shallower forks must be untouched by the deeper ones.
        assert_eq!(level1.position(), s1);
        assert_eq!(level2.position(), s2);
    }
}

#[test]
fn cached_fork_matches_fresh_through_the_trie() {
    let (cfg, params) = setup(75, 40);
    let mut rng = Rng::seed_from(76);
    let mut cache = PrefixCache::new(&cfg, 0);
    // Shared preamble, then per-"article" middles, then random tails.
    let preamble = random_stream(&mut rng, cfg.vocab_size, 5);
    let mut pre_sess = InferenceSession::new(cfg);
    for &t in &preamble {
        pre_sess.feed(&params, t);
    }
    assert!(cache.insert(&preamble, &pre_sess, true));

    for trial in 0..16 {
        let tail = random_stream(&mut rng, cfg.vocab_size, 4 + (trial % 5));
        let full: Vec<u32> = preamble.iter().chain(tail.iter()).copied().collect();
        let mut sess = InferenceSession::new(cfg);
        let depth = cache.fork_into(&mut sess, &full);
        assert!(depth >= preamble.len(), "trial {trial}: expected a hit");
        let mut logits = sess.last_logits().to_vec();
        for &t in &full[depth..] {
            logits = sess.feed(&params, t).to_vec();
        }
        assert_eq!(logits, fresh_logits(cfg, &params, &full), "trial {trial}");
        // Grow the trie: snapshot this full prompt too (depth >= 2 under
        // the pinned preamble, exercising edge splits across trials).
        cache.insert(&full, &sess, false);
    }
    assert!(cache.stats().hits >= 16);
}

#[test]
fn eviction_then_refill_returns_identical_logits() {
    let (cfg, params) = setup(77, 40);
    let mut rng = Rng::seed_from(78);
    // Budget for exactly two resident snapshots: inserting a third evicts
    // the least-recently-used one.
    let mut cache = PrefixCache::new(&cfg, cfg.session_bytes() * 2);
    let prefixes: Vec<Vec<u32>> = (0..3)
        .map(|_| random_stream(&mut rng, cfg.vocab_size, 6))
        .collect();
    let encode = |prefix: &[u32]| {
        let mut s = InferenceSession::new(cfg);
        for &t in prefix {
            s.feed(&params, t);
        }
        s
    };
    let tail = random_stream(&mut rng, cfg.vocab_size, 5);
    let continue_from = |mut sess: InferenceSession, from: usize, full: &[u32]| -> Vec<f32> {
        let mut logits = sess.last_logits().to_vec();
        for &t in &full[from..] {
            logits = sess.feed(&params, t).to_vec();
        }
        logits
    };

    // First pass: every prefix scored from the cache right after insert.
    let mut first = Vec::new();
    for prefix in &prefixes {
        cache.insert(prefix, &encode(prefix), false);
        let full: Vec<u32> = prefix.iter().chain(tail.iter()).copied().collect();
        let mut sess = InferenceSession::new(cfg);
        let depth = cache.fork_into(&mut sess, &full);
        assert_eq!(depth, prefix.len());
        first.push(continue_from(sess, depth, &full));
    }
    assert!(cache.stats().evictions > 0, "cap of 2 with 3 inserts must evict");

    // Second pass: some prefixes were evicted (miss → re-encode →
    // re-insert), some survived (hit). Either path must reproduce the
    // first pass bit for bit.
    for (i, prefix) in prefixes.iter().enumerate() {
        let full: Vec<u32> = prefix.iter().chain(tail.iter()).copied().collect();
        let mut sess = InferenceSession::new(cfg);
        let mut depth = cache.fork_into(&mut sess, &full);
        if depth == 0 {
            // Evicted: refill the cache exactly as the engine would.
            let re = encode(prefix);
            cache.insert(prefix, &re, false);
            sess.assign_from(&re);
            depth = prefix.len();
        }
        let again = continue_from(sess, depth, &full);
        assert_eq!(again, first[i], "prefix {i}: eviction/refill changed logits");
        assert_eq!(again, fresh_logits(cfg, &params, &full), "prefix {i}: drifted from fresh");
    }
}

#[test]
fn cache_full_is_a_per_stream_error_not_a_crash() {
    let (cfg, params) = setup(79, 40);
    let mut sess = InferenceSession::new(cfg);
    for _ in 0..cfg.max_seq {
        sess.try_feed(&params, 1).expect("within capacity");
    }
    let err = sess.try_feed(&params, 1).expect_err("beyond capacity");
    assert!(format!("{err}").contains("KV cache full"));
    // The session remains usable as a fork source at its final position.
    let mut fork = InferenceSession::new(cfg);
    fork.assign_from(&sess);
    assert_eq!(fork.position(), cfg.max_seq);
    assert_eq!(fork.last_logits(), sess.last_logits());
}
