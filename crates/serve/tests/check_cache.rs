//! Model-check the prefix-cache eviction-vs-fork protocol.
//!
//! Build with `RUSTFLAGS="--cfg astro_check"`; in normal builds this file
//! compiles to nothing. Concurrent workers fork from a pinned anchor
//! while another worker inserts unpinned snapshots past the byte budget
//! (forcing LRU eviction). Under every interleaving:
//!
//! * the pinned anchor is never evicted — forks from it always hit;
//! * eviction keeps the residency accounting consistent;
//! * no deadlock on the cache mutex.
#![cfg(astro_check)]

use astro_check::{explore, CheckConfig};
use astro_model::{InferenceSession, ModelConfig, Params};
use astro_serve::PrefixCache;
use astro_telemetry::sync::{self, thread, Mutex};
use std::sync::Arc;

fn cfg() -> CheckConfig {
    CheckConfig::default()
}

/// A session fed to exactly `tokens` (zero params: the math is irrelevant
/// to the locking protocol, only `position()` must match).
fn session_at(params: &Params, tokens: &[u32]) -> InferenceSession {
    let mut s = InferenceSession::new(params.cfg);
    for &t in tokens {
        s.feed(params, t);
    }
    s
}

#[test]
fn pinned_anchor_survives_concurrent_eviction_pressure() {
    let params = Arc::new(Params::zeros(ModelConfig::tiny(8)));
    let report = explore(&cfg(), move || {
        let anchor: &[u32] = &[1];
        let mut cache = PrefixCache::new(&params.cfg, 1);
        // Budget: exactly two snapshots — the pinned anchor plus one
        // unpinned slot, so every further insert must evict.
        let cap = 2 * cache.session_bytes();
        cache = PrefixCache::new(&params.cfg, cap);
        assert!(cache.insert(anchor, &session_at(&params, anchor), true));
        let cache = Arc::new(Mutex::new(cache));

        // Inserter: two unpinned snapshots; the second must evict the
        // first (LRU), never the pinned anchor.
        let c2 = Arc::clone(&cache);
        let p2 = Arc::clone(&params);
        let inserter = thread::spawn(move || {
            for probe in [[1u32, 2], [1u32, 3]] {
                let sess = session_at(&p2, &probe);
                let (_t, mut g) = sync::lock_ranked("serve.prefix_cache", &c2);
                g.insert(&probe, &sess, false);
            }
        });

        // Forker: forks from the anchor concurrently — must always hit.
        let c3 = Arc::clone(&cache);
        let p3 = Arc::clone(&params);
        let forker = thread::spawn(move || {
            let mut dst = InferenceSession::new(p3.cfg);
            let (_t, mut g) = sync::lock_ranked("serve.prefix_cache", &c3);
            let depth = g.fork_into(&mut dst, &[1u32, 9]);
            assert_eq!(depth, 1, "pinned anchor must stay forkable");
        });

        inserter.join().unwrap_or_else(|_| panic!("inserter panicked"));
        forker.join().unwrap_or_else(|_| panic!("forker panicked"));

        let (_t, g) = sync::lock_ranked("serve.prefix_cache", &cache);
        assert!(g.has_snapshot(&[1]), "pinned anchor was evicted");
        let stats = g.stats();
        assert!(
            stats.resident_sessions <= 2,
            "resident sessions {} exceed the two-snapshot budget",
            stats.resident_sessions
        );
        assert_eq!(
            stats.resident_bytes,
            stats.resident_sessions * g.session_bytes() as u64,
            "residency accounting drifted"
        );
    });
    assert!(report.ok(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(report.schedules > 1, "expected interleavings, got {}", report.schedules);
}
