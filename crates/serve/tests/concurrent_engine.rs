//! Concurrency property: a single shared [`EvalEngine`] hammered by
//! interleaved `score_batch` and `generate_batch` calls from many
//! threads must return **bitwise identical** results to a serial,
//! uncached, fresh-engine-per-job reference — including while a
//! `serve.cache_full` fault plan is armed. This is the exact contract
//! the gateway's micro-batching scheduler relies on: whatever batch
//! composition the wall clock produces across concurrent clients, the
//! answers cannot change.
//!
//! The fault registry is process-global, so the injected test takes
//! `GATE` before arming a plan (same pattern as `tests/resilience_chaos.rs`).

use astro_model::{ModelConfig, Params, SamplerConfig};
use astro_prng::Rng;
use astro_resilience::fault::{self, FaultPlan};
use astro_serve::{EngineConfig, EvalEngine, GenerateJob, ScoreJob, ScoreReadout};
use std::sync::{Arc, Mutex, PoisonError};

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn setup(seed: u64) -> (ModelConfig, Params) {
    let cfg = ModelConfig::tiny(24);
    let params = Params::init(cfg, &mut Rng::seed_from(seed));
    (cfg, params)
}

/// Synthetic score jobs with a shared preamble so the prefix cache is
/// actually exercised (and contended) across threads.
fn score_jobs(rng: &mut Rng, n: usize, vocab: usize) -> Vec<ScoreJob> {
    let groups: Vec<Vec<Vec<u32>>> = vec![
        vec![vec![1, 2], vec![3]],
        vec![vec![4]],
        vec![vec![5, 6]],
        vec![vec![7]],
    ];
    (0..n)
        .map(|i| {
            let mut prompt = vec![9u32, 8, 7, (i % 3) as u32];
            for _ in 0..(2 + rng.next_u64() % 4) {
                prompt.push((rng.next_u64() % vocab as u64) as u32);
            }
            ScoreJob {
                prompt,
                group: Some((i % 3) as u64),
                readout: ScoreReadout::ContinuationGroups(groups.clone()),
                trace: None,
            }
        })
        .collect()
}

/// Synthetic generate jobs; per-job deterministic RNG seeds.
fn generate_jobs(rng: &mut Rng, n: usize, vocab: usize) -> Vec<GenerateJob> {
    (0..n)
        .map(|i| {
            let mut prompt = vec![9u32, 8, 7, (i % 3) as u32];
            for _ in 0..(1 + rng.next_u64() % 4) {
                prompt.push((rng.next_u64() % vocab as u64) as u32);
            }
            GenerateJob {
                prompt,
                group: Some((i % 3) as u64),
                max_new: 5,
                sampler: SamplerConfig::greedy(),
                rng: Rng::seed_from(1000 + i as u64),
                stop: vec![0],
                trace: None,
            }
        })
        .collect()
}

/// Reference results: a fresh serial uncached engine per single-job
/// batch — the strongest possible isolation between jobs.
fn reference_scores(params: &Params, jobs: &[ScoreJob]) -> Vec<Vec<f32>> {
    jobs.iter()
        .map(|j| {
            let engine = EvalEngine::new(EngineConfig::serial(), params);
            let mut out = engine.score_batch(vec![j.clone()]);
            out.remove(0).expect("reference score job failed")
        })
        .collect()
}

fn reference_generations(params: &Params, jobs: &[GenerateJob]) -> Vec<Vec<u32>> {
    jobs.iter()
        .map(|j| {
            let engine = EvalEngine::new(EngineConfig::serial(), params);
            let mut out = engine.generate_batch(vec![j.clone()]);
            out.remove(0).expect("reference generate job failed")
        })
        .collect()
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

/// Run `threads` workers against one shared engine. Each worker
/// interleaves score and generate calls over its own job slice, in
/// small batches, and asserts bitwise parity against the references.
#[allow(clippy::too_many_arguments)]
fn hammer(
    params: &Params,
    engine_cfg: EngineConfig,
    threads: usize,
    score: &[ScoreJob],
    score_ref: &[Vec<f32>],
    generate: &[GenerateJob],
    gen_ref: &[Vec<u32>],
    label: &str,
) {
    let engine = Arc::new(EvalEngine::new(engine_cfg, params));
    let per_s = score.len() / threads;
    let per_g = generate.len() / threads;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = Arc::clone(&engine);
            let s_jobs = &score[t * per_s..(t + 1) * per_s];
            let s_refs = &score_ref[t * per_s..(t + 1) * per_s];
            let g_jobs = &generate[t * per_g..(t + 1) * per_g];
            let g_refs = &gen_ref[t * per_g..(t + 1) * per_g];
            scope.spawn(move || {
                // Interleave: score pair, generate pair, repeat — so both
                // kinds of work contend for the same prefix cache at once.
                let mut si = 0;
                let mut gi = 0;
                while si < s_jobs.len() || gi < g_jobs.len() {
                    if si < s_jobs.len() {
                        let hi = (si + 2).min(s_jobs.len());
                        let got = engine.score_batch(s_jobs[si..hi].to_vec());
                        for (k, r) in got.into_iter().enumerate() {
                            let scores = r.expect("score job errored");
                            assert_eq!(
                                bits(&scores),
                                bits(&s_refs[si + k]),
                                "{label}: thread {t} score job {} diverged",
                                si + k
                            );
                        }
                        si = hi;
                    }
                    if gi < g_jobs.len() {
                        let hi = (gi + 2).min(g_jobs.len());
                        let got = engine.generate_batch(g_jobs[gi..hi].to_vec());
                        for (k, r) in got.into_iter().enumerate() {
                            let tokens = r.expect("generate job errored");
                            assert_eq!(
                                tokens,
                                g_refs[gi + k],
                                "{label}: thread {t} generate job {} diverged",
                                gi + k
                            );
                        }
                        gi = hi;
                    }
                }
            });
        }
    });
}

#[test]
fn four_threads_interleaved_match_serial_bitwise() {
    let _gate = gate();
    fault::clear();
    let (cfg, params) = setup(31);
    let mut rng = Rng::seed_from(32);
    let score = score_jobs(&mut rng, 16, cfg.vocab_size);
    let generate = generate_jobs(&mut rng, 16, cfg.vocab_size);
    let score_ref = reference_scores(&params, &score);
    let gen_ref = reference_generations(&params, &generate);
    for engine_cfg in [
        EngineConfig {
            parallelism: 1,
            prefix_cache: true,
            max_cache_bytes: 0,
        },
        EngineConfig::pooled_with(2),
        EngineConfig::pooled_with(4),
    ] {
        hammer(
            &params,
            engine_cfg,
            4,
            &score,
            &score_ref,
            &generate,
            &gen_ref,
            &format!("{engine_cfg:?}"),
        );
    }
}

#[test]
fn concurrency_parity_survives_cache_full_injection() {
    let _gate = gate();
    let (cfg, params) = setup(33);
    let mut rng = Rng::seed_from(34);
    let score = score_jobs(&mut rng, 12, cfg.vocab_size);
    let generate = generate_jobs(&mut rng, 12, cfg.vocab_size);
    let score_ref = reference_scores(&params, &score);
    let gen_ref = reference_generations(&params, &generate);
    // Arm the fault at several hit counts so the retry path fires at
    // different points in the interleaving; results must never change.
    for hit in [1u64, 3, 9] {
        fault::install(FaultPlan::single("serve.cache_full", hit));
        hammer(
            &params,
            EngineConfig::pooled_with(4),
            4,
            &score,
            &score_ref,
            &generate,
            &gen_ref,
            &format!("cache_full hit {hit}"),
        );
        assert!(
            fault::fired("serve.cache_full"),
            "hit {hit}: plan never fired — injection not exercised"
        );
        fault::clear();
    }
}
