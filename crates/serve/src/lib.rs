//! Batched shared-prefix evaluation serving engine.
//!
//! Benchmark evaluation is embarrassingly parallel across questions, and
//! its prompts are massively redundant: every question in a run shares the
//! two-shot preamble, and questions about the same article share the
//! article context too. This crate exploits both:
//!
//! * [`trie::PrefixCache`] — a radix trie of [`astro_model::InferenceSession`]
//!   snapshots keyed by token prefix. Shared prefixes are encoded **once**;
//!   later prompts fork the snapshot (`assign_from`, no allocation) and
//!   only encode their unshared tail. Resident bytes are bounded by an LRU
//!   eviction policy budgeted from [`astro_model::ModelConfig::session_bytes`].
//! * [`engine::EvalEngine`] — fans a batch of scoring or generation jobs
//!   across `astro_parallel::ThreadPool` workers, each with reusable
//!   per-worker sessions, surfacing KV-cache overflow (after one uncached
//!   retry) and job panics as a *per-job* [`engine::ServeError`] instead
//!   of aborting the pool.
//!
//! # Determinism contract
//!
//! The engine is **bit-identical** to the serial reference path for every
//! `(parallelism, prefix_cache)` setting: a session step reads only the
//! model parameters, the KV rows for consumed positions and the fed token,
//! and every scratch buffer is fully overwritten per step — so a forked
//! snapshot continues exactly like a fresh session fed the same tokens.
//! `tests/eval_parity.rs` (repo root) enforces this differentially and
//! `docs/SERVING.md` walks through the argument.

pub mod engine;
pub mod trie;

pub use engine::{EvalEngine, GenerateJob, ScoreJob, ScoreReadout, ServeError};
pub use trie::{CacheStats, PrefixCache};

/// How a batch is executed. `Copy` so it can ride on the eval-config
/// structs without breaking their `Copy` derives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads: `0` = auto (available parallelism, capped at 8),
    /// `1` = in the calling thread, `n > 1` = a pool of `n` workers.
    pub parallelism: usize,
    /// Reuse shared-prefix session snapshots via the prefix-cache trie.
    pub prefix_cache: bool,
    /// Resident-byte budget for cached snapshots; `0` derives a default
    /// from the model configuration (see [`trie::PrefixCache::new`]).
    pub max_cache_bytes: usize,
}

impl EngineConfig {
    /// The degenerate configuration: one worker, no caching. Semantically
    /// (and bitwise) the serial reference path.
    pub fn serial() -> Self {
        EngineConfig {
            parallelism: 1,
            prefix_cache: false,
            max_cache_bytes: 0,
        }
    }

    /// The production configuration: auto-sized pool, prefix cache on.
    pub fn pooled() -> Self {
        EngineConfig {
            parallelism: 0,
            prefix_cache: true,
            max_cache_bytes: 0,
        }
    }

    /// A pool of exactly `n` workers with the prefix cache on.
    pub fn pooled_with(n: usize) -> Self {
        EngineConfig {
            parallelism: n,
            prefix_cache: true,
            max_cache_bytes: 0,
        }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn resolved_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            n => n,
        }
    }

    /// True when this configuration adds nothing over the plain serial
    /// loop (callers may keep their pre-engine code path for it).
    pub fn is_serial_uncached(&self) -> bool {
        self.parallelism == 1 && !self.prefix_cache
    }

    /// Structural validation, mirroring `StudyConfig`/`TrainerConfig`:
    /// reject configurations that would oversubscribe the pool or pin an
    /// absurd cache budget before any session memory is allocated. Called
    /// at gateway startup and from both eval-config `validate()`s.
    pub fn validate(&self) -> Result<(), String> {
        if self.parallelism > MAX_PARALLELISM {
            return Err(format!(
                "engine parallelism {} exceeds the {MAX_PARALLELISM}-worker bound \
                 (use 0 for auto-sizing)",
                self.parallelism
            ));
        }
        if self.max_cache_bytes > MAX_CACHE_BYTES {
            return Err(format!(
                "engine max_cache_bytes {} exceeds the {MAX_CACHE_BYTES}-byte (1 TiB) bound",
                self.max_cache_bytes
            ));
        }
        if !self.prefix_cache && self.max_cache_bytes != 0 {
            return Err(format!(
                "engine max_cache_bytes {} is set but prefix_cache is disabled; \
                 the budget would silently do nothing",
                self.max_cache_bytes
            ));
        }
        Ok(())
    }
}

/// Upper bound on explicit worker counts: far beyond any machine this
/// workspace targets, so a value above it is a config typo, not a tune.
pub const MAX_PARALLELISM: usize = 256;

/// Upper bound on an explicit prefix-cache budget (1 TiB).
pub const MAX_CACHE_BYTES: usize = 1 << 40;

impl Default for EngineConfig {
    /// Defaults to [`EngineConfig::serial`] so existing call sites keep
    /// their exact pre-engine behaviour until they opt in.
    fn default() -> Self {
        EngineConfig::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_uncached() {
        let c = EngineConfig::default();
        assert!(c.is_serial_uncached());
        assert_eq!(c.resolved_parallelism(), 1);
        assert_eq!(c, EngineConfig::serial());
    }

    #[test]
    fn pooled_resolves_to_at_least_one_worker() {
        let c = EngineConfig::pooled();
        assert!(c.resolved_parallelism() >= 1);
        assert!(c.resolved_parallelism() <= 8);
        assert!(!c.is_serial_uncached());
        assert_eq!(EngineConfig::pooled_with(3).resolved_parallelism(), 3);
    }

    #[test]
    fn serial_with_cache_is_not_degenerate() {
        let c = EngineConfig {
            parallelism: 1,
            prefix_cache: true,
            max_cache_bytes: 0,
        };
        assert!(!c.is_serial_uncached());
    }

    #[test]
    fn validate_accepts_the_stock_configurations() {
        for c in [
            EngineConfig::serial(),
            EngineConfig::pooled(),
            EngineConfig::pooled_with(8),
            EngineConfig {
                parallelism: 2,
                prefix_cache: true,
                max_cache_bytes: 64 << 20,
            },
        ] {
            assert_eq!(c.validate(), Ok(()), "{c:?}");
        }
    }

    #[test]
    fn validate_rejects_oversubscribed_pool() {
        let c = EngineConfig {
            parallelism: MAX_PARALLELISM + 1,
            ..EngineConfig::pooled()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("parallelism"), "{err}");
    }

    #[test]
    fn validate_rejects_absurd_cache_budget() {
        let c = EngineConfig {
            max_cache_bytes: MAX_CACHE_BYTES + 1,
            ..EngineConfig::pooled()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("max_cache_bytes"), "{err}");
    }

    #[test]
    fn validate_rejects_budget_without_cache() {
        let c = EngineConfig {
            parallelism: 1,
            prefix_cache: false,
            max_cache_bytes: 4096,
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("prefix_cache"), "{err}");
    }
}
