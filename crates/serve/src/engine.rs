//! The batched evaluation engine.
//!
//! [`EvalEngine`] executes a batch of independent jobs — continuation /
//! logit **scoring** ([`ScoreJob`]) or free **generation** ([`GenerateJob`])
//! — across a worker pool with per-worker session reuse and shared-prefix
//! caching:
//!
//! 1. Before dispatch, the longest common token prefix of the whole batch
//!    (in practice: the two-shot preamble) is encoded once and **pinned**
//!    in the prefix cache. Per-group common prefixes (questions about the
//!    same article) are recorded as anchor targets.
//! 2. Each worker pulls jobs off a shared atomic cursor. For each job it
//!    forks the deepest cached snapshot into its reusable session
//!    (`assign_from`), encodes only the unshared tail, and snapshots the
//!    group anchor on the way past so later same-group jobs skip it too.
//! 3. A prompt that exceeds the KV cache is retried once without the
//!    prefix cache, then surfaces as that job's
//!    `Err(ServeError::Session(SessionError::CacheFull))`; a panicking job
//!    surfaces as `Err(ServeError::WorkerPanic)`. The rest of the batch is
//!    unaffected either way.
//!
//! Results are returned in job order regardless of completion order, and
//! are bit-identical to running each job in a fresh session (see the
//! crate-level determinism contract).

use crate::trie::{CacheStats, PrefixCache};
use crate::EngineConfig;
use astro_model::{sample_logits, InferenceSession, ModelConfig, Params, SamplerConfig, SessionError};
use astro_parallel::ThreadPool;
use astro_prng::Rng;
use astro_resilience::fault;
use astro_telemetry::sync::{self, mpsc, Mutex, MutexGuard};
use astro_telemetry::{lockcheck, trace, TraceContext};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A per-job engine failure. The batch is unaffected: every other job
/// still completes and returns its own result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The job's inference session failed (KV-cache overflow). Already
    /// retried once without the prefix cache before being surfaced — see
    /// [`EvalEngine::score_batch`].
    Session(SessionError),
    /// The job's closure panicked; the panic was isolated to this job.
    WorkerPanic,
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Session(e) => e.fmt(f),
            ServeError::WorkerPanic => write!(f, "job panicked inside the eval engine"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How a [`ScoreJob`]'s per-option scores are read out of the model.
#[derive(Clone, Debug)]
pub enum ScoreReadout {
    /// Per option: a set of tokenised continuation variants. The option's
    /// score is the **max** over variants of the length-normalised
    /// continuation log-likelihood (the token method's `OptionValue`
    /// readout). An option with no variants, or only empty ones, scores
    /// `-inf`.
    ContinuationGroups(Vec<Vec<Vec<u32>>>),
    /// Per option: a set of candidate token ids. The option's score is the
    /// **max raw logit** over its candidates after the prompt (the token
    /// method's `Letter` readout). An empty group scores `-inf`.
    LogitGroups(Vec<Vec<u32>>),
}

/// One prompt to score. `prompt` must be non-empty and already truncated
/// to fit the model's context by the caller (the engine reports overflow,
/// it does not silently truncate).
#[derive(Clone, Debug)]
pub struct ScoreJob {
    /// Prompt tokens (encoded, truncated).
    pub prompt: Vec<u32>,
    /// Prefix-sharing hint: jobs with the same group id (e.g. the same
    /// source article) get a shared mid-trie anchor. `None` opts out.
    pub group: Option<u64>,
    /// The readout to apply after the prompt.
    pub readout: ScoreReadout,
    /// Request trace to attribute engine phases to, if any (set by the
    /// gateway via [`ScoreJob::with_trace`]; `None` costs nothing).
    pub trace: Option<TraceContext>,
}

impl ScoreJob {
    /// Attach a request trace context; the engine records `cache_lookup`,
    /// `prefill` and `decode` phases against it and opens its worker span
    /// as an explicit child of `ctx.parent_span`.
    #[must_use]
    pub fn with_trace(mut self, ctx: TraceContext) -> Self {
        self.trace = Some(ctx);
        self
    }
}

/// One prompt to generate from. Like [`ScoreJob`], the prompt must be
/// non-empty and pre-truncated with generation headroom.
#[derive(Clone, Debug)]
pub struct GenerateJob {
    /// Prompt tokens (encoded, truncated).
    pub prompt: Vec<u32>,
    /// Prefix-sharing hint (see [`ScoreJob::group`]).
    pub group: Option<u64>,
    /// Maximum tokens to generate.
    pub max_new: usize,
    /// Sampling settings.
    pub sampler: SamplerConfig,
    /// Per-job random stream (pre-split by the caller so results do not
    /// depend on scheduling order).
    pub rng: Rng,
    /// Token ids that end generation without being emitted.
    pub stop: Vec<u32>,
    /// Request trace to attribute engine phases to, if any (see
    /// [`ScoreJob::trace`]).
    pub trace: Option<TraceContext>,
}

impl GenerateJob {
    /// Attach a request trace context (see [`ScoreJob::with_trace`]).
    #[must_use]
    pub fn with_trace(mut self, ctx: TraceContext) -> Self {
        self.trace = Some(ctx);
        self
    }
}

/// Internal job representation so scoring and generation share one
/// dispatch path.
enum Job {
    Score(ScoreJob),
    Generate(GenerateJob),
}

impl Job {
    fn prompt(&self) -> &[u32] {
        match self {
            Job::Score(j) => &j.prompt,
            Job::Generate(j) => &j.prompt,
        }
    }

    fn group(&self) -> Option<u64> {
        match self {
            Job::Score(j) => j.group,
            Job::Generate(j) => j.group,
        }
    }

    fn trace(&self) -> Option<TraceContext> {
        match self {
            Job::Score(j) => j.trace,
            Job::Generate(j) => j.trace,
        }
    }
}

enum Outcome {
    Scores(Vec<f32>),
    Tokens(Vec<u32>),
}

/// Per-worker reusable state: the main session a job's prompt is encoded
/// into, plus a second session used as the fork scratch when scoring
/// continuations. Allocated once per worker, reused across jobs.
struct WorkerState {
    sess: InferenceSession,
    fork: InferenceSession,
}

impl WorkerState {
    fn new(cfg: ModelConfig) -> Self {
        WorkerState {
            sess: InferenceSession::new(cfg),
            fork: InferenceSession::new(cfg),
        }
    }
}

/// The batched evaluation engine. Construction clones the parameters once
/// (worker closures must be `'static`); per-batch cost is dominated by the
/// model math, not the engine.
pub struct EvalEngine {
    cfg: EngineConfig,
    model_cfg: ModelConfig,
    params: Arc<Params>,
    cache: Arc<Mutex<PrefixCache>>,
}

/// Lock the prefix cache under its declared lock rank, recovering from
/// poisoning (the cache holds no invariants a panicked worker could have
/// half-applied: every mutation completes or the trie is unchanged).
/// Routed through `astro_telemetry::sync` so cache acquisition is a
/// scheduling point under `--cfg astro_check` (see `tests/check_cache.rs`).
fn lock_cache(cache: &Mutex<PrefixCache>) -> (lockcheck::LockToken, MutexGuard<'_, PrefixCache>) {
    sync::lock_ranked("serve.prefix_cache", cache)
}

/// Longest common prefix of two token slices.
fn lcp_len(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

impl EvalEngine {
    /// Build an engine for `params` with the given execution settings.
    pub fn new(cfg: EngineConfig, params: &Params) -> Self {
        let model_cfg = params.cfg;
        let cache = PrefixCache::new(&model_cfg, cfg.max_cache_bytes);
        EvalEngine {
            cfg,
            model_cfg,
            params: Arc::new(params.clone()),
            cache: Arc::new(Mutex::new(cache)),
        }
    }

    /// The engine's execution settings.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Snapshot of the prefix cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        let (_token, guard) = lock_cache(&self.cache);
        guard.stats()
    }

    /// Score a batch of prompts; results come back in job order. Each
    /// element is the per-option score vector, or that job's
    /// [`ServeError`] when its prompt overflowed the KV cache (after one
    /// uncached retry) or its closure panicked.
    pub fn score_batch(&self, jobs: Vec<ScoreJob>) -> Vec<Result<Vec<f32>, ServeError>> {
        let span = astro_telemetry::span!("serve.score_batch", jobs = jobs.len());
        let _ = &span;
        let outcomes = self.run_batch(jobs.into_iter().map(Job::Score).collect());
        outcomes
            .into_iter()
            .map(|r| {
                r.map(|o| match o {
                    Outcome::Scores(s) => s,
                    Outcome::Tokens(_) => Vec::new(),
                })
            })
            .collect()
    }

    /// Generate from a batch of prompts; results come back in job order.
    /// Each element is the generated token sequence (stop token excluded),
    /// or that job's [`ServeError`].
    pub fn generate_batch(&self, jobs: Vec<GenerateJob>) -> Vec<Result<Vec<u32>, ServeError>> {
        let span = astro_telemetry::span!("serve.generate_batch", jobs = jobs.len());
        let _ = &span;
        let outcomes = self.run_batch(jobs.into_iter().map(Job::Generate).collect());
        outcomes
            .into_iter()
            .map(|r| {
                r.map(|o| match o {
                    Outcome::Tokens(t) => t,
                    Outcome::Scores(_) => Vec::new(),
                })
            })
            .collect()
    }

    /// Shared dispatch: prime anchors, fan out, collect in order, publish
    /// cache metrics.
    fn run_batch(&self, jobs: Vec<Job>) -> Vec<Result<Outcome, ServeError>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let before = self.cache_stats();
        let anchors = if self.cfg.prefix_cache {
            self.prime_anchors(&jobs)
        } else {
            HashMap::new()
        };

        let n_jobs = jobs.len();
        let workers = self.cfg.resolved_parallelism().min(n_jobs).max(1);
        let cache = self.cfg.prefix_cache.then(|| Arc::clone(&self.cache));
        let mut results: Vec<Option<Result<Outcome, ServeError>>> =
            (0..n_jobs).map(|_| None).collect();

        if workers <= 1 {
            let mut state = WorkerState::new(self.model_cfg);
            for (i, job) in jobs.iter().enumerate() {
                results[i] =
                    Some(run_job_resilient(&self.params, cache.as_deref(), &anchors, &mut state, job));
            }
        } else {
            let jobs = Arc::new(jobs);
            let anchors = Arc::new(anchors);
            let cursor = Arc::new(AtomicUsize::new(0));
            let (tx, rx) = mpsc::channel();
            let pool = ThreadPool::new(workers);
            for _ in 0..workers {
                let jobs = Arc::clone(&jobs);
                let anchors = Arc::clone(&anchors);
                let cursor = Arc::clone(&cursor);
                let params = Arc::clone(&self.params);
                let cache = cache.clone();
                let tx = tx.clone();
                let model_cfg = self.model_cfg;
                pool.execute(move || {
                    let mut state = WorkerState::new(model_cfg);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let r =
                            run_job_resilient(&params, cache.as_deref(), &anchors, &mut state, &jobs[i]);
                        if tx.send((i, r)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (i, r) in rx.iter() {
                results[i] = Some(r);
            }
            pool.join();
        }

        let after = self.cache_stats();
        publish_cache_metrics(&before, &after);
        results
            .into_iter()
            .map(|r| match r {
                Some(r) => r,
                // Unreachable: every index below n_jobs is claimed exactly
                // once and reported exactly once. Degrade to an error
                // rather than panicking the batch.
                None => Err(ServeError::WorkerPanic),
            })
            .collect()
    }

    /// Encode and pin the batch-wide common prefix, and compute per-group
    /// anchor prefixes worth snapshotting mid-feed (strictly deeper than
    /// the batch anchor, shared by at least two jobs).
    fn prime_anchors(&self, jobs: &[Job]) -> HashMap<u64, Vec<u32>> {
        // Batch anchor: LCP over every prompt.
        let mut batch_len = jobs.first().map(|j| j.prompt().len()).unwrap_or(0);
        for j in jobs {
            batch_len = batch_len.min(lcp_len(jobs[0].prompt(), j.prompt()));
        }
        if batch_len > 0 && jobs.len() >= 2 {
            let anchor = &jobs[0].prompt()[..batch_len];
            let need = {
                let (_token, guard) = lock_cache(&self.cache);
                !guard.has_snapshot(anchor)
            };
            if need {
                let mut sess = InferenceSession::new(self.model_cfg);
                let mut ok = true;
                for &t in anchor {
                    if sess.try_feed(&self.params, t).is_err() {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let (_token, mut guard) = lock_cache(&self.cache);
                    guard.insert(anchor, &sess, true);
                }
            }
        }

        // Group anchors: LCP within each group, where deeper than the
        // batch anchor and shared by 2+ jobs.
        let mut groups: HashMap<u64, (usize, usize)> = HashMap::new(); // id -> (first job, lcp)
        for (i, j) in jobs.iter().enumerate() {
            let Some(g) = j.group() else { continue };
            match groups.get_mut(&g) {
                None => {
                    groups.insert(g, (i, j.prompt().len()));
                }
                Some((first, len)) => {
                    *len = (*len).min(lcp_len(jobs[*first].prompt(), j.prompt()));
                }
            }
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for j in jobs {
            if let Some(g) = j.group() {
                *counts.entry(g).or_insert(0) += 1;
            }
        }
        groups
            .into_iter()
            .filter(|(g, (_, len))| *len > batch_len && counts.get(g).copied().unwrap_or(0) >= 2)
            .map(|(g, (first, len))| (g, jobs[first].prompt()[..len].to_vec()))
            .collect()
    }
}

/// Record the batch's cache activity in the global metrics registry.
fn publish_cache_metrics(before: &CacheStats, after: &CacheStats) {
    astro_telemetry::counter("serve.prefix.hits").add(after.hits - before.hits);
    astro_telemetry::counter("serve.prefix.misses").add(after.misses - before.misses);
    astro_telemetry::counter("serve.tokens.saved").add(after.tokens_reused - before.tokens_reused);
    astro_telemetry::counter("serve.cache.evictions").add(after.evictions - before.evictions);
    astro_telemetry::gauge("serve.cache.resident_bytes").set(after.resident_bytes as i64);
}

/// Execute one job with panic isolation and cache-pressure degradation:
///
/// * a panic inside the job is caught and surfaced as
///   [`ServeError::WorkerPanic`] (counted under `serve.job_panics`), so a
///   bad job cannot take the batch down;
/// * [`SessionError::CacheFull`] is retried **once without the prefix
///   cache** before being surfaced. By the crate's determinism contract an
///   uncached run is bit-identical to a cached one, so degradation never
///   changes scores — it only sheds the cache under pressure. Counted
///   under `serve.cache_full.retries`.
fn run_job_resilient(
    params: &Params,
    cache: Option<&Mutex<PrefixCache>>,
    anchors: &HashMap<u64, Vec<u32>>,
    state: &mut WorkerState,
    job: &Job,
) -> Result<Outcome, ServeError> {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job(params, cache, anchors, state, job)
    }));
    match attempt {
        Err(_) => {
            astro_telemetry::counter("serve.job_panics").inc();
            Err(ServeError::WorkerPanic)
        }
        Ok(Err(SessionError::CacheFull { .. })) => {
            astro_telemetry::counter("serve.cache_full.retries").inc();
            let no_anchors = HashMap::new();
            let retry = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(params, None, &no_anchors, state, job)
            }));
            match retry {
                Err(_) => {
                    astro_telemetry::counter("serve.job_panics").inc();
                    Err(ServeError::WorkerPanic)
                }
                Ok(r) => r.map_err(ServeError::from),
            }
        }
        Ok(r) => r.map_err(ServeError::from),
    }
}

/// Execute one job in the worker's reusable sessions.
fn run_job(
    params: &Params,
    cache: Option<&Mutex<PrefixCache>>,
    anchors: &HashMap<u64, Vec<u32>>,
    state: &mut WorkerState,
    job: &Job,
) -> Result<Outcome, SessionError> {
    let prompt = job.prompt();
    assert!(!prompt.is_empty(), "engine jobs require a non-empty prompt");
    let ctx = job.trace();
    // The worker span claims the dispatching span (e.g. `gateway.batch`)
    // as its explicit cross-thread parent, so the summary tree shows
    // engine work under the batch that scheduled it.
    let _worker_span = ctx.map(|c| {
        let g = astro_telemetry::span::span_child_of("serve.job", c.parent_span, Vec::new());
        g.set_trace(c.trace.0);
        g
    });
    // `exec_wait`: dispatch → this worker picking the job up.
    let t0 = match ctx {
        Some(c) => trace::phase_since_last(c.trace, "exec_wait")
            .unwrap_or_else(astro_telemetry::elapsed_us),
        None => 0,
    };
    if fault::should_fault("serve.cache_full") {
        if let Some(c) = ctx {
            trace::mark_fault(c.trace, "serve.cache_full");
        }
        return Err(SessionError::CacheFull {
            pos: prompt.len(),
            max_seq: params.cfg.max_seq,
        });
    }

    // Fork the deepest cached ancestor (or start fresh).
    let depth = match cache {
        Some(c) => {
            let (_token, mut guard) = lock_cache(c);
            guard.fork_into(&mut state.sess, prompt)
        }
        None => {
            state.sess.reset();
            0
        }
    };
    let t1 = astro_telemetry::elapsed_us();
    if let Some(c) = ctx {
        trace::phase(c.trace, "cache_lookup", t0, t1);
        trace::annotate(c.trace, "cache", if depth > 0 { "hit" } else { "miss" });
        trace::record_num(c.trace, "cached_tokens", depth as f64);
    }
    let mut fed = depth;

    // Feed to the group-anchor boundary and snapshot it for the rest of
    // the group. Raced inserts are idempotent (`insert` refuses
    // duplicates), so whichever worker crosses first wins.
    if let (Some(c), Some(anchor)) = (cache, job.group().and_then(|g| anchors.get(&g))) {
        if anchor.len() > fed
            && anchor.len() <= prompt.len()
            && prompt[..anchor.len()] == anchor[..]
        {
            while fed < anchor.len() {
                state.sess.try_feed(params, prompt[fed])?;
                fed += 1;
            }
            let (_token, mut guard) = lock_cache(c);
            if !guard.has_snapshot(anchor) {
                guard.insert(anchor, &state.sess, false);
            }
        }
    }

    // Encode the unshared tail.
    while fed < prompt.len() {
        state.sess.try_feed(params, prompt[fed])?;
        fed += 1;
    }
    astro_telemetry::counter("serve.tokens.encoded").add((prompt.len() - depth) as u64);
    let t2 = astro_telemetry::elapsed_us();
    if let Some(c) = ctx {
        trace::phase(c.trace, "prefill", t1, t2);
        trace::record_num(c.trace, "prompt_tokens", prompt.len() as f64);
    }

    let outcome = match job {
        Job::Score(j) => {
            let scores = match &j.readout {
                ScoreReadout::ContinuationGroups(groups) => groups
                    .iter()
                    .map(|variants| {
                        let mut s = f32::NEG_INFINITY;
                        for cont in variants {
                            s = s.max(continuation_loglik(params, &state.sess, &mut state.fork, cont));
                        }
                        s
                    })
                    .collect(),
                ScoreReadout::LogitGroups(groups) => {
                    let logits = state.sess.last_logits();
                    groups
                        .iter()
                        .map(|ids| {
                            ids.iter().fold(f32::NEG_INFINITY, |acc, &id| {
                                acc.max(logits[id as usize])
                            })
                        })
                        .collect()
                }
            };
            Outcome::Scores(scores)
        }
        Job::Generate(j) => {
            let mut rng = j.rng.clone();
            let mut logits = state.sess.last_logits().to_vec();
            let mut generated: Vec<u32> = Vec::with_capacity(j.max_new);
            for _ in 0..j.max_new {
                if state.sess.remaining() == 0 {
                    break;
                }
                let next = sample_logits(&logits, &j.sampler, &mut rng) as u32;
                if j.stop.contains(&next) {
                    break;
                }
                generated.push(next);
                logits = state.sess.feed(params, next).to_vec();
            }
            Outcome::Tokens(generated)
        }
    };
    if let Some(c) = ctx {
        trace::phase(c.trace, "decode", t2, astro_telemetry::elapsed_us());
        if let Outcome::Tokens(toks) = &outcome {
            trace::record_num(c.trace, "generated_tokens", toks.len() as f64);
        }
    }
    Ok(outcome)
}

/// Length-normalised log-likelihood of `continuation` from a fork of
/// `sess`, written into the reusable `fork` scratch session. Replicates
/// the serial reference (`astro-eval`'s `continuation_loglik`) operation
/// for operation: same f64 accumulation, same early-stop on a full cache,
/// same `-inf` conventions — the parity suite diffs the two bitwise.
fn continuation_loglik(
    params: &Params,
    sess: &InferenceSession,
    fork: &mut InferenceSession,
    continuation: &[u32],
) -> f32 {
    if continuation.is_empty() {
        return f32::NEG_INFINITY;
    }
    fork.assign_from(sess);
    let mut ll = 0.0f64;
    let mut counted = 0usize;
    for &tok in continuation {
        if fork.remaining() == 0 {
            break;
        }
        let logits = fork.last_logits();
        let lse = astro_tensor::ops::log_sum_exp(logits);
        ll += (logits[tok as usize] - lse) as f64;
        counted += 1;
        fork.feed(params, tok);
    }
    if counted == 0 {
        return f32::NEG_INFINITY;
    }
    (ll / counted as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_model::ModelConfig;

    fn setup() -> (ModelConfig, Params) {
        let cfg = ModelConfig::tiny(24);
        let p = Params::init(cfg, &mut Rng::seed_from(11));
        (cfg, p)
    }

    /// Serial reference for one ContinuationGroups job, fresh sessions
    /// everywhere.
    fn reference_scores(cfg: ModelConfig, p: &Params, prompt: &[u32], groups: &[Vec<Vec<u32>>]) -> Vec<f32> {
        let mut sess = InferenceSession::new(cfg);
        for &t in prompt {
            sess.feed(p, t);
        }
        let mut fork = InferenceSession::new(cfg);
        groups
            .iter()
            .map(|variants| {
                let mut s = f32::NEG_INFINITY;
                for cont in variants {
                    s = s.max(continuation_loglik(p, &sess, &mut fork, cont));
                }
                s
            })
            .collect()
    }

    fn jobs_for(prompts: &[&[u32]], groups: &[Vec<Vec<u32>>]) -> Vec<ScoreJob> {
        prompts
            .iter()
            .map(|p| ScoreJob {
                prompt: p.to_vec(),
                group: Some(p[0] as u64),
                readout: ScoreReadout::ContinuationGroups(groups.to_vec()),
                trace: None,
            })
            .collect()
    }

    #[test]
    fn pooled_cached_matches_serial_uncached_bitwise() {
        let (cfg, p) = setup();
        let groups: Vec<Vec<Vec<u32>>> =
            vec![vec![vec![1, 2], vec![3]], vec![vec![4]], vec![vec![]], vec![vec![5, 6, 7]]];
        // Shared preamble [9, 8, 7], then article-ish middles, then tails.
        let prompts: Vec<Vec<u32>> = vec![
            vec![9, 8, 7, 1, 1, 2],
            vec![9, 8, 7, 1, 1, 3],
            vec![9, 8, 7, 2, 5, 5],
            vec![9, 8, 7, 2, 5, 6],
            vec![9, 8, 7, 3, 0],
        ];
        let prompt_refs: Vec<&[u32]> = prompts.iter().map(|p| p.as_slice()).collect();
        let expected: Vec<Vec<f32>> = prompts
            .iter()
            .map(|pr| reference_scores(cfg, &p, pr, &groups))
            .collect();
        for engine_cfg in [
            EngineConfig::serial(),
            EngineConfig { parallelism: 1, prefix_cache: true, max_cache_bytes: 0 },
            EngineConfig::pooled_with(2),
            EngineConfig::pooled_with(4),
        ] {
            let engine = EvalEngine::new(engine_cfg, &p);
            let got = engine.score_batch(jobs_for(&prompt_refs, &groups));
            for (g, e) in got.iter().zip(expected.iter()) {
                assert_eq!(g.as_ref().ok(), Some(e), "config {engine_cfg:?}");
            }
        }
    }

    #[test]
    fn prefix_cache_records_hits_and_saved_tokens() {
        let (_cfg, p) = setup();
        let groups: Vec<Vec<Vec<u32>>> = vec![vec![vec![1]]];
        let prompts: Vec<Vec<u32>> = (0..6).map(|i| vec![9, 8, 7, 6, i as u32]).collect();
        let prompt_refs: Vec<&[u32]> = prompts.iter().map(|p| p.as_slice()).collect();
        let engine = EvalEngine::new(
            EngineConfig { parallelism: 1, prefix_cache: true, max_cache_bytes: 0 },
            &p,
        );
        let _ = engine.score_batch(jobs_for(&prompt_refs, &groups));
        let stats = engine.cache_stats();
        assert!(stats.hits >= 5, "hits {}", stats.hits);
        assert!(stats.tokens_reused >= 5 * 4, "reused {}", stats.tokens_reused);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn overlong_prompt_fails_that_job_only() {
        let (cfg, p) = setup();
        let long = vec![1u32; cfg.max_seq + 4];
        let jobs = vec![
            ScoreJob {
                prompt: vec![9, 8, 7],
                group: None,
                readout: ScoreReadout::LogitGroups(vec![vec![1], vec![2], vec![3], vec![]]),
                trace: None,
            },
            ScoreJob {
                prompt: long,
                group: None,
                readout: ScoreReadout::LogitGroups(vec![vec![1]]),
                trace: None,
            },
        ];
        let engine = EvalEngine::new(EngineConfig::pooled_with(2), &p);
        let got = engine.score_batch(jobs);
        assert!(got[0].is_ok());
        match &got[1] {
            Err(ServeError::Session(SessionError::CacheFull { max_seq, .. })) => {
                assert_eq!(*max_seq, cfg.max_seq)
            }
            other => panic!("expected CacheFull, got {other:?}"),
        }
        // Empty logit group scores -inf.
        let ok = got[0].as_ref().ok().cloned().unwrap_or_default();
        assert_eq!(ok[3], f32::NEG_INFINITY);
    }

    #[test]
    fn generation_matches_fresh_session_greedy() {
        let (cfg, p) = setup();
        let prompt = vec![3u32, 1, 4, 1, 5];
        // Fresh-session reference.
        let mut sess = InferenceSession::new(cfg);
        let mut logits = Vec::new();
        for &t in &prompt {
            logits = sess.feed(&p, t).to_vec();
        }
        let mut rng = Rng::seed_from(2);
        let mut expect = Vec::new();
        for _ in 0..6 {
            if sess.remaining() == 0 {
                break;
            }
            let next = sample_logits(&logits, &SamplerConfig::greedy(), &mut rng) as u32;
            if next == 0 {
                break;
            }
            expect.push(next);
            logits = sess.feed(&p, next).to_vec();
        }
        // Engine, pooled + cached, duplicated jobs (one hits the cache).
        let job = GenerateJob {
            prompt: prompt.clone(),
            group: Some(1),
            max_new: 6,
            sampler: SamplerConfig::greedy(),
            rng: Rng::seed_from(2),
            stop: vec![0],
            trace: None,
        };
        let engine = EvalEngine::new(EngineConfig::pooled_with(2), &p);
        let got = engine.generate_batch(vec![job.clone(), job]);
        for r in got {
            assert_eq!(r.ok().as_deref(), Some(expect.as_slice()));
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (_cfg, p) = setup();
        let engine = EvalEngine::new(EngineConfig::pooled(), &p);
        assert!(engine.score_batch(Vec::new()).is_empty());
        assert!(engine.generate_batch(Vec::new()).is_empty());
        assert_eq!(engine.cache_stats().hits, 0);
        assert!(engine.config().prefix_cache);
    }
}
