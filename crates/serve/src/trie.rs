//! The prefix-cache trie: encoded-once session snapshots keyed by token
//! prefix.
//!
//! A radix trie over token sequences where selected nodes carry a full
//! [`InferenceSession`] snapshot positioned exactly at that prefix. A
//! lookup for a prompt finds the deepest snapshotted ancestor and copies
//! it into a caller-provided session (`assign_from`, no allocation), so
//! only the prompt's unshared tail needs encoding. Because a forked
//! session replays the identical per-token arithmetic over identical
//! cached KV rows, a cache hit is *bit-identical* to encoding the prompt
//! from scratch — the determinism contract `docs/SERVING.md` spells out
//! and `tests/eval_parity.rs` enforces.
//!
//! Memory is bounded: each snapshot costs `ModelConfig::session_bytes()`
//! resident bytes and the trie evicts the least-recently-used unpinned
//! snapshot when inserting past its byte budget (pinned anchors — the
//! batch-wide shared preamble — survive). Structural nodes without
//! snapshots are a few machine words and are not counted.

use astro_model::{InferenceSession, ModelConfig};

/// How many resident session snapshots the default byte budget allows.
const DEFAULT_RESIDENT_SESSIONS: usize = 32;

/// Running counters for one cache's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found a snapshotted ancestor (depth > 0).
    pub hits: u64,
    /// Lookups that had to start from position 0.
    pub misses: u64,
    /// Prompt tokens whose encoding was skipped thanks to a hit.
    pub tokens_reused: u64,
    /// Snapshots dropped by the LRU eviction policy.
    pub evictions: u64,
    /// Snapshots currently resident.
    pub resident_sessions: u64,
    /// Bytes currently resident (sessions × `session_bytes`).
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// One trie node. `edge` is the token slice on the edge from the parent;
/// `depth` is the total prefix length at this node.
struct Node {
    edge: Vec<u32>,
    depth: usize,
    children: Vec<usize>,
    session: Option<Box<InferenceSession>>,
    last_use: u64,
    pinned: bool,
}

/// The prefix cache: a radix trie of session snapshots with LRU eviction
/// under a resident-byte cap.
pub struct PrefixCache {
    nodes: Vec<Node>,
    clock: u64,
    session_bytes: usize,
    cap_bytes: usize,
    stats: CacheStats,
}

impl PrefixCache {
    /// A cache for sessions of `cfg`. `cap_bytes = 0` derives the default
    /// budget (`DEFAULT_RESIDENT_SESSIONS` snapshots) from the
    /// configuration; any other value is used as-is, floored to one
    /// snapshot so a functioning cache can always hold its pinned anchor.
    pub fn new(cfg: &ModelConfig, cap_bytes: usize) -> Self {
        let session_bytes = cfg.session_bytes().max(1);
        let cap = if cap_bytes == 0 {
            session_bytes * DEFAULT_RESIDENT_SESSIONS
        } else {
            cap_bytes.max(session_bytes)
        };
        PrefixCache {
            nodes: vec![Node {
                edge: Vec::new(),
                depth: 0,
                children: Vec::new(),
                session: None,
                last_use: 0,
                pinned: true,
            }],
            clock: 0,
            session_bytes,
            cap_bytes: cap,
            stats: CacheStats::default(),
        }
    }

    /// Resident bytes of one snapshot.
    pub fn session_bytes(&self) -> usize {
        self.session_bytes
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Walk as deep as the trie structure matches `tokens`, returning
    /// `(node, matched_len)`; the walk only stops at node boundaries.
    fn walk(&self, tokens: &[u32]) -> (usize, usize) {
        let mut node = 0usize;
        let mut matched = 0usize;
        'descend: loop {
            for &child in &self.nodes[node].children {
                let edge = &self.nodes[child].edge;
                let rest = &tokens[matched..];
                if rest.len() >= edge.len() && rest[..edge.len()] == edge[..] {
                    node = child;
                    matched += edge.len();
                    continue 'descend;
                }
            }
            return (node, matched);
        }
    }

    /// Copy the deepest snapshot that prefixes `tokens` into `dst` and
    /// return its depth (0 = miss: `dst` is reset to position 0). Counts
    /// a hit/miss and bumps the snapshot's LRU stamp.
    pub fn fork_into(&mut self, dst: &mut InferenceSession, tokens: &[u32]) -> usize {
        // Walk down, remembering the deepest snapshotted node passed
        // (parent links are implicit — nodes are only reachable downward).
        let mut best: Option<usize> = None;
        let mut node = 0usize;
        let mut matched = 0usize;
        'descend: loop {
            if self.nodes[node].session.is_some() {
                best = Some(node);
            }
            for &child in &self.nodes[node].children {
                let edge = &self.nodes[child].edge;
                let rest = &tokens[matched..];
                if rest.len() >= edge.len() && rest[..edge.len()] == edge[..] {
                    node = child;
                    matched += edge.len();
                    continue 'descend;
                }
            }
            break;
        }
        match best {
            Some(n) if self.nodes[n].depth > 0 => {
                self.clock += 1;
                self.nodes[n].last_use = self.clock;
                let depth = self.nodes[n].depth;
                if let Some(sess) = &self.nodes[n].session {
                    dst.assign_from(sess);
                }
                self.stats.hits += 1;
                self.stats.tokens_reused += depth as u64;
                depth
            }
            _ => {
                dst.reset();
                self.stats.misses += 1;
                0
            }
        }
    }

    /// True when a snapshot exists at exactly this prefix (cheap check so
    /// workers can skip the clone a no-op insert would cost).
    pub fn has_snapshot(&self, tokens: &[u32]) -> bool {
        let (node, matched) = self.walk(tokens);
        matched == tokens.len() && self.nodes[node].session.is_some()
    }

    /// Insert a snapshot of `sess` at exactly the prefix `tokens`,
    /// splitting edges as needed. `sess.position()` must equal
    /// `tokens.len()`. Returns `false` without touching the trie when a
    /// snapshot already exists there, or when the byte budget cannot
    /// admit it (everything resident is pinned) and `pinned` is off.
    pub fn insert(&mut self, tokens: &[u32], sess: &InferenceSession, pinned: bool) -> bool {
        assert!(
            sess.position() == tokens.len(),
            "snapshot position {} != prefix length {}",
            sess.position(),
            tokens.len()
        );
        if tokens.is_empty() {
            return false; // the root never carries a snapshot
        }
        // Make room first; a failed reservation leaves the trie unchanged.
        while self.stats.resident_bytes + self.session_bytes as u64 > self.cap_bytes as u64 {
            if !self.evict_lru() {
                if !pinned {
                    return false;
                }
                break; // pinned anchors may exceed the budget
            }
        }
        let node = self.node_at(tokens);
        if self.nodes[node].session.is_some() {
            return false;
        }
        self.clock += 1;
        self.nodes[node].last_use = self.clock;
        self.nodes[node].pinned = pinned;
        self.nodes[node].session = Some(Box::new(sess.clone()));
        self.stats.resident_sessions += 1;
        self.stats.resident_bytes += self.session_bytes as u64;
        true
    }

    /// Find or create the node whose prefix is exactly `tokens`.
    fn node_at(&mut self, tokens: &[u32]) -> usize {
        let mut node = 0usize;
        let mut matched = 0usize;
        'outer: while matched < tokens.len() {
            let rest = &tokens[matched..];
            let child_ids: Vec<usize> = self.nodes[node].children.clone();
            for child in child_ids {
                let edge = &self.nodes[child].edge;
                let common = edge
                    .iter()
                    .zip(rest.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                if common == 0 {
                    continue;
                }
                if common == edge.len() {
                    // Full edge match: descend.
                    node = child;
                    matched += common;
                    continue 'outer;
                }
                // Partial match: split the edge at `common`.
                let mid = self.split_edge(node, child, common);
                node = mid;
                matched += common;
                continue 'outer;
            }
            // No child shares a first token: create a leaf for the rest.
            let depth = self.nodes[node].depth + rest.len();
            let leaf = self.push_node(Node {
                edge: rest.to_vec(),
                depth,
                children: Vec::new(),
                session: None,
                last_use: 0,
                pinned: false,
            });
            self.nodes[node].children.push(leaf);
            return leaf;
        }
        node
    }

    /// Split `child`'s edge after `common` tokens, interposing a new node
    /// between `parent` and `child`. Returns the new middle node.
    fn split_edge(&mut self, parent: usize, child: usize, common: usize) -> usize {
        let head: Vec<u32> = self.nodes[child].edge[..common].to_vec();
        let tail: Vec<u32> = self.nodes[child].edge[common..].to_vec();
        let mid_depth = self.nodes[parent].depth + common;
        let mid = self.push_node(Node {
            edge: head,
            depth: mid_depth,
            children: vec![child],
            session: None,
            last_use: 0,
            pinned: false,
        });
        self.nodes[child].edge = tail;
        if let Some(slot) = self.nodes[parent]
            .children
            .iter_mut()
            .find(|c| **c == child)
        {
            *slot = mid;
        }
        mid
    }

    fn push_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Drop the least-recently-used unpinned snapshot. Returns `false`
    /// when nothing is evictable.
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.session.is_some() && !n.pinned)
            .min_by_key(|(_, n)| n.last_use)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                self.nodes[i].session = None;
                self.stats.evictions += 1;
                self.stats.resident_sessions -= 1;
                self.stats.resident_bytes -= self.session_bytes as u64;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_model::{ModelConfig, Params};
    use astro_prng::Rng;

    fn setup() -> (ModelConfig, Params) {
        let cfg = ModelConfig::tiny(24);
        let p = Params::init(cfg, &mut Rng::seed_from(1));
        (cfg, p)
    }

    fn encoded(cfg: ModelConfig, p: &Params, tokens: &[u32]) -> InferenceSession {
        let mut s = InferenceSession::new(cfg);
        for &t in tokens {
            s.feed(p, t);
        }
        s
    }

    #[test]
    fn miss_then_hit_reuses_prefix() {
        let (cfg, p) = setup();
        let mut cache = PrefixCache::new(&cfg, 0);
        let prefix = [3u32, 1, 4];
        let mut dst = InferenceSession::new(cfg);
        assert_eq!(cache.fork_into(&mut dst, &[3, 1, 4, 1, 5]), 0);
        cache.insert(&prefix, &encoded(cfg, &p, &prefix), true);
        let got = cache.fork_into(&mut dst, &[3, 1, 4, 1, 5]);
        assert_eq!(got, 3);
        assert_eq!(dst.position(), 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.tokens_reused), (1, 1, 3));
    }

    #[test]
    fn deepest_snapshot_wins() {
        let (cfg, p) = setup();
        let mut cache = PrefixCache::new(&cfg, 0);
        cache.insert(&[3, 1], &encoded(cfg, &p, &[3, 1]), false);
        cache.insert(&[3, 1, 4, 1], &encoded(cfg, &p, &[3, 1, 4, 1]), false);
        let mut dst = InferenceSession::new(cfg);
        assert_eq!(cache.fork_into(&mut dst, &[3, 1, 4, 1, 5, 9]), 4);
        // A shorter prompt only reaches the shallow snapshot.
        assert_eq!(cache.fork_into(&mut dst, &[3, 1, 7]), 2);
    }

    #[test]
    fn edge_splitting_preserves_depths() {
        let (cfg, p) = setup();
        let mut cache = PrefixCache::new(&cfg, 0);
        cache.insert(&[5, 6, 7, 8], &encoded(cfg, &p, &[5, 6, 7, 8]), false);
        // Diverges after [5, 6]: forces a split.
        cache.insert(&[5, 6, 9], &encoded(cfg, &p, &[5, 6, 9]), false);
        assert!(cache.has_snapshot(&[5, 6, 7, 8]));
        assert!(cache.has_snapshot(&[5, 6, 9]));
        assert!(!cache.has_snapshot(&[5, 6]));
        let mut dst = InferenceSession::new(cfg);
        assert_eq!(cache.fork_into(&mut dst, &[5, 6, 9, 1]), 3);
        assert_eq!(cache.fork_into(&mut dst, &[5, 6, 7, 8, 1]), 4);
    }

    #[test]
    fn insert_is_idempotent() {
        let (cfg, p) = setup();
        let mut cache = PrefixCache::new(&cfg, 0);
        let sess = encoded(cfg, &p, &[1, 2]);
        assert!(cache.insert(&[1, 2], &sess, false));
        assert!(!cache.insert(&[1, 2], &sess, false));
        assert_eq!(cache.stats().resident_sessions, 1);
    }

    #[test]
    fn lru_eviction_under_byte_cap() {
        let (cfg, p) = setup();
        // Budget for exactly two snapshots.
        let mut cache = PrefixCache::new(&cfg, cfg.session_bytes() * 2);
        cache.insert(&[1], &encoded(cfg, &p, &[1]), false);
        cache.insert(&[2], &encoded(cfg, &p, &[2]), false);
        // Touch [1] so [2] becomes the LRU victim.
        let mut dst = InferenceSession::new(cfg);
        cache.fork_into(&mut dst, &[1, 9]);
        cache.insert(&[3], &encoded(cfg, &p, &[3]), false);
        assert!(cache.has_snapshot(&[1]));
        assert!(!cache.has_snapshot(&[2]));
        assert!(cache.has_snapshot(&[3]));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().resident_sessions, 2);
    }

    #[test]
    fn pinned_anchor_survives_eviction_pressure() {
        let (cfg, p) = setup();
        let mut cache = PrefixCache::new(&cfg, cfg.session_bytes());
        cache.insert(&[7], &encoded(cfg, &p, &[7]), true);
        // Budget is one snapshot and it is pinned: the insert must refuse.
        assert!(!cache.insert(&[8], &encoded(cfg, &p, &[8]), false));
        assert!(cache.has_snapshot(&[7]));
        assert!(!cache.has_snapshot(&[8]));
    }

    #[test]
    fn zero_cap_derives_default_budget() {
        let cfg = ModelConfig::tiny(24);
        let cache = PrefixCache::new(&cfg, 0);
        assert_eq!(cache.cap_bytes, cfg.session_bytes() * DEFAULT_RESIDENT_SESSIONS);
        assert!(cache.session_bytes() > 0);
    }

    #[test]
    fn hit_rate_counts() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
