//! Learning-rate schedule: linear warmup then cosine decay (paper §III:
//! "warmup ratio of 0.03" and "a cosine decay schedule", after Loshchilov
//! & Hutter 2016).

/// A warmup + cosine-decay schedule.
#[derive(Clone, Copy, Debug)]
pub struct CosineSchedule {
    /// Peak learning rate.
    pub base_lr: f32,
    /// Final learning rate as a fraction of `base_lr`.
    pub min_lr_frac: f32,
    /// Total optimizer steps.
    pub total_steps: u64,
    /// Warmup steps (ratio × total, at least 1 when total > 0).
    pub warmup_steps: u64,
}

impl CosineSchedule {
    /// Build from a warmup *ratio* (the paper uses 0.03).
    pub fn new(base_lr: f32, total_steps: u64, warmup_ratio: f64) -> Self {
        let warmup_steps = ((total_steps as f64 * warmup_ratio).round() as u64).max(1);
        CosineSchedule {
            base_lr,
            min_lr_frac: 0.1,
            total_steps: total_steps.max(1),
            warmup_steps: warmup_steps.min(total_steps.max(1)),
        }
    }

    /// Learning rate at 0-based step `t`.
    pub fn lr_at(&self, t: u64) -> f32 {
        if t < self.warmup_steps {
            // Linear ramp from base_lr/warmup to base_lr.
            return self.base_lr * (t + 1) as f32 / self.warmup_steps as f32;
        }
        let t = t.min(self.total_steps);
        let progress =
            (t - self.warmup_steps) as f32 / (self.total_steps - self.warmup_steps).max(1) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        let min_lr = self.base_lr * self.min_lr_frac;
        min_lr + (self.base_lr - min_lr) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_to_peak() {
        let s = CosineSchedule::new(1.0, 100, 0.1);
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6, "peak at end of warmup");
    }

    #[test]
    fn decays_after_warmup() {
        let s = CosineSchedule::new(1.0, 100, 0.03);
        assert!(s.lr_at(50) < s.lr_at(10));
        assert!(s.lr_at(99) < s.lr_at(50));
    }

    #[test]
    fn floor_is_min_lr() {
        let s = CosineSchedule::new(2.0, 100, 0.03);
        let end = s.lr_at(100);
        assert!((end - 2.0 * s.min_lr_frac).abs() < 1e-5, "end lr {end}");
        // Beyond the horizon it stays at the floor.
        assert_eq!(s.lr_at(5000), end);
    }

    #[test]
    fn lr_always_positive_and_bounded() {
        let s = CosineSchedule::new(3e-4, 1000, 0.03);
        for t in 0..1200 {
            let lr = s.lr_at(t);
            assert!(lr > 0.0 && lr <= 3e-4 + 1e-9, "step {t}: {lr}");
        }
    }

    #[test]
    fn degenerate_single_step() {
        let s = CosineSchedule::new(1.0, 1, 0.03);
        let lr = s.lr_at(0);
        assert!(lr > 0.0 && lr <= 1.0);
    }
}
