//! Held-out loss / perplexity evaluation.
//!
//! CPT's training objective is next-token prediction; the most direct
//! measure of what CPT did (before any MCQ benchmarking) is the model's
//! loss on held-out text from each distribution. The study uses this to
//! show the mechanism behind catastrophic forgetting: after CPT on
//! astro-only text, loss on astro text drops while loss on the general
//! distribution rises.

use crate::data::TokenStream;
use astro_model::{Params, TrainContext};

/// Mean next-token loss of `params` over deterministic, non-overlapping
/// windows of `stream`. Evaluates at most `max_windows` windows of length
/// `seq` (0 = all). Returns `(mean_loss, windows_evaluated)`.
pub fn held_out_loss(
    params: &Params,
    stream: &TokenStream,
    seq: usize,
    max_windows: usize,
) -> (f32, usize) {
    assert!(seq > 0, "seq must be positive");
    assert!(
        stream.len() > seq,
        "stream of {} tokens too short for windows of {seq}",
        stream.len()
    );
    let mut ctx = TrainContext::new(params.cfg, 1, seq);
    let n_windows = {
        let all = (stream.len() - 1) / seq;
        if max_windows == 0 {
            all
        } else {
            all.min(max_windows)
        }
    };
    assert!(n_windows > 0, "no complete windows");
    let mask = vec![true; seq];
    let mut total = 0.0f64;
    for w in 0..n_windows {
        let start = w * seq;
        let tokens: Vec<u32> = stream.tokens[start..start + seq].to_vec();
        let targets: Vec<usize> = stream.tokens[start + 1..start + seq + 1]
            .iter()
            .map(|&t| t as usize)
            .collect();
        total += ctx.loss(params, &tokens, &targets, &mask) as f64;
    }
    ((total / n_windows as f64) as f32, n_windows)
}

/// Perplexity from a mean loss.
pub fn perplexity(mean_loss: f32) -> f32 {
    mean_loss.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::pack_documents;
    use crate::trainer::{train_lm, BatchSource, TrainerConfig};
    use astro_model::ModelConfig;
    use astro_prng::Rng;
    use astro_tokenizer::{train_bpe, BpeTrainerConfig};
    use astro_world::{Document, DocumentKind};

    fn setup() -> (astro_tokenizer::Tokenizer, TokenStream, TokenStream) {
        let astro_text = "the quasar emits gamma rays at redshift two ".repeat(12);
        let general_text = "people enjoy bread and tea in the morning market ".repeat(12);
        let tok = train_bpe(
            &[astro_text.clone(), general_text.clone()],
            &BpeTrainerConfig {
                vocab_size: 300,
                ..Default::default()
            },
        );
        let mk = |text: String| {
            pack_documents(
                &tok,
                &[Document {
                    kind: DocumentKind::General,
                    article: None,
                    text,
                }],
            )
        };
        (tok.clone(), mk(astro_text), mk(general_text))
    }

    #[test]
    fn training_on_astro_reduces_astro_loss_more_than_general() {
        let (tok, astro, general) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let mut params = astro_model::Params::init(cfg, &mut Rng::seed_from(1));
        let (astro_before, _) = held_out_loss(&params, &astro, 16, 0);
        let (general_before, _) = held_out_loss(&params, &general, 16, 0);
        train_lm(
            &mut params,
            BatchSource::Lm(&astro),
            &TrainerConfig {
                lr: 5e-3,
                batch: 4,
                seq: 16,
                steps: 60,
                bf16_weights: false,
                ..Default::default()
            },
            &Rng::seed_from(2),
        )
        .expect("train");
        let (astro_after, _) = held_out_loss(&params, &astro, 16, 0);
        let (general_after, _) = held_out_loss(&params, &general, 16, 0);
        let astro_gain = astro_before - astro_after;
        let general_gain = general_before - general_after;
        assert!(astro_gain > 0.5, "astro loss should drop a lot: {astro_before} → {astro_after}");
        assert!(
            astro_gain > general_gain,
            "specialisation: astro gain {astro_gain} vs general gain {general_gain}"
        );
    }

    #[test]
    fn max_windows_limits_evaluation() {
        let (tok, astro, _) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = astro_model::Params::init(cfg, &mut Rng::seed_from(3));
        let (_, all) = held_out_loss(&params, &astro, 16, 0);
        let (_, limited) = held_out_loss(&params, &astro, 16, 2);
        assert!(all > 2);
        assert_eq!(limited, 2);
    }

    #[test]
    fn untrained_loss_is_near_uniform() {
        let (tok, astro, _) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = astro_model::Params::init(cfg, &mut Rng::seed_from(4));
        let (loss, _) = held_out_loss(&params, &astro, 16, 0);
        let uniform = (tok.vocab_size() as f32).ln();
        assert!((loss - uniform).abs() < 0.6, "{loss} vs ln(V)={uniform}");
    }

    #[test]
    fn perplexity_is_exp_of_loss() {
        assert!((perplexity(0.0) - 1.0).abs() < 1e-6);
        assert!((perplexity(2.0) - 2.0f32.exp()).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn short_stream_panics() {
        let (tok, _, _) = setup();
        let cfg = ModelConfig::tiny(tok.vocab_size());
        let params = astro_model::Params::init(cfg, &mut Rng::seed_from(5));
        let tiny = TokenStream { tokens: vec![1, 2, 3] };
        held_out_loss(&params, &tiny, 16, 0);
    }
}
