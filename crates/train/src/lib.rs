//! Training loops for continual pretraining (CPT) and supervised
//! fine-tuning (SFT), mirroring the paper's LMFlow-based recipe:
//!
//! * AdamW with cosine decay + linear warmup (paper §III: warmup ratio
//!   0.03, cosine schedule);
//! * bf16 weight emulation (the paper trains in bf16);
//! * gradient accumulation and clipping;
//! * data parallelism over a simulated device grid with ring all-reduce
//!   (standing in for the multi-A100 setup);
//! * SFT with assistant-span loss masking over the chat template;
//! * an A100-hour cost model calibrated against the paper's reported
//!   GPU-hour figures.

pub mod cost;
pub mod data;
pub mod optim;
pub mod perplexity;
pub mod schedule;
pub mod sft;
pub mod trainer;

pub use cost::{a100_hours, CostModel, TrainingKind, PAPER_COSTS};
pub use perplexity::{held_out_loss, perplexity};
pub use data::{pack_documents, LmBatch, TokenStream};
pub use optim::{clip_grad_norm, AdamW};
pub use schedule::CosineSchedule;
pub use sft::{render_conversations, sft_batch, SftExample};
pub use trainer::{train_lm, BatchSource, TrainError, TrainReport, TrainerConfig};
