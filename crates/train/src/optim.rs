//! AdamW optimizer with decoupled weight decay and global-norm gradient
//! clipping.

use astro_tensor::ops::l2_norm;

/// AdamW state and hyper-parameters.
#[derive(Clone, Debug)]
pub struct AdamW {
    /// First-moment estimates.
    m: Vec<f32>,
    /// Second-moment estimates.
    v: Vec<f32>,
    /// Step counter (for bias correction).
    t: u64,
    /// β₁.
    pub beta1: f32,
    /// β₂.
    pub beta2: f32,
    /// ε.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
}

impl AdamW {
    /// Fresh optimizer state for `n` parameters with standard defaults
    /// (β₁ 0.9, β₂ 0.999, ε 1e-8, weight decay 0.01).
    pub fn new(n: usize) -> Self {
        AdamW {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update: `params -= lr · (m̂/(√v̂+ε) + wd·params)`.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len(), "optimizer size mismatch");
        assert_eq!(grad.len(), self.m.len(), "gradient size mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * params[i]);
        }
    }
}

impl AdamW {
    /// Serialise the optimizer state (moments + step counter +
    /// hyper-parameters) for training resumption.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.m.len() * 8 + 24);
        out.extend_from_slice(&0x41444d57u32.to_le_bytes()); // "ADMW"
        out.extend_from_slice(&(self.m.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.t.to_le_bytes());
        for v in [self.beta1, self.beta2, self.eps, self.weight_decay] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &x in &self.m {
            out.extend_from_slice(&x.to_le_bytes());
        }
        for &x in &self.v {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Restore from [`AdamW::to_bytes`] output. Every read is
    /// bounds-checked, so truncated or corrupt blobs surface as `Err`
    /// rather than a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<AdamW, String> {
        fn array_at<const N: usize>(bytes: &[u8], o: usize) -> Result<[u8; N], String> {
            bytes
                .get(o..o + N)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| format!("optimizer blob truncated at byte {o}"))
        }
        let f32_at = |o: usize| -> Result<f32, String> { Ok(f32::from_le_bytes(array_at(bytes, o)?)) };
        if u32::from_le_bytes(array_at(bytes, 0)?) != 0x41444d57 {
            return Err("bad optimizer magic".to_string());
        }
        let n = u64::from_le_bytes(array_at(bytes, 4)?) as usize;
        let t = u64::from_le_bytes(array_at(bytes, 12)?);
        let want = 36 + n * 8;
        if bytes.len() != want {
            return Err(format!("optimizer blob length {} != {want}", bytes.len()));
        }
        let mut m = Vec::with_capacity(n);
        let mut v = Vec::with_capacity(n);
        for i in 0..n {
            m.push(f32_at(36 + i * 4)?);
        }
        for i in 0..n {
            v.push(f32_at(36 + n * 4 + i * 4)?);
        }
        Ok(AdamW {
            m,
            v,
            t,
            beta1: f32_at(20)?,
            beta2: f32_at(24)?,
            eps: f32_at(28)?,
            weight_decay: f32_at(32)?,
        })
    }
}

/// Scale `grad` in place so its global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(grad: &mut [f32], max_norm: f32) -> f32 {
    let norm = l2_norm(grad);
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grad.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // minimise Σ (x_i − c_i)²
        let target = [3.0f32, -2.0, 0.5];
        let mut x = vec![0.0f32; 3];
        let mut opt = AdamW::new(3);
        opt.weight_decay = 0.0;
        for _ in 0..800 {
            let grad: Vec<f32> = x.iter().zip(target.iter()).map(|(xi, ci)| 2.0 * (xi - ci)).collect();
            opt.step(&mut x, &grad, 0.05);
        }
        for (xi, ci) in x.iter().zip(target.iter()) {
            assert!((xi - ci).abs() < 0.05, "{xi} vs {ci}");
        }
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_grad() {
        let mut x = vec![1.0f32; 4];
        let grad = vec![0.0f32; 4];
        let mut opt = AdamW::new(4);
        for _ in 0..10 {
            opt.step(&mut x, &grad, 0.1);
        }
        assert!(x.iter().all(|&v| v < 1.0 && v > 0.9), "{x:?}");
    }

    #[test]
    fn step_counter_advances() {
        let mut opt = AdamW::new(2);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut [0.0, 0.0], &[1.0, 1.0], 0.01);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the first AdamW step ≈ lr · sign(g).
        let mut x = vec![0.0f32];
        let mut opt = AdamW::new(1);
        opt.weight_decay = 0.0;
        opt.step(&mut x, &[0.3], 0.01);
        assert!((x[0] + 0.01).abs() < 1e-3, "{}", x[0]);
    }

    #[test]
    fn clip_reduces_large_norm() {
        let mut g = vec![3.0f32, 4.0];
        let pre = clip_grad_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        assert!((l2_norm(&g) - 1.0).abs() < 1e-5);
        // direction preserved
        assert!((g[0] / g[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_norm() {
        let mut g = vec![0.3f32, 0.4];
        clip_grad_norm(&mut g, 1.0);
        assert_eq!(g, vec![0.3, 0.4]);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let mut opt = AdamW::new(2);
        opt.step(&mut [0.0, 0.0, 0.0], &[0.0, 0.0, 0.0], 0.1);
    }

    #[test]
    fn serialization_round_trip_resumes_identically() {
        // Train a few steps, snapshot, train more; resuming from the
        // snapshot must reproduce the continuation exactly.
        let mut x = vec![1.0f32, -2.0, 0.5];
        let mut opt = AdamW::new(3);
        let grad_at = |x: &[f32]| -> Vec<f32> { x.iter().map(|v| 2.0 * v).collect() };
        for _ in 0..5 {
            let g = grad_at(&x);
            opt.step(&mut x, &g, 0.05);
        }
        let snap_x = x.clone();
        let blob = opt.to_bytes();
        // Continue original.
        for _ in 0..5 {
            let g = grad_at(&x);
            opt.step(&mut x, &g, 0.05);
        }
        // Resume from snapshot.
        let mut opt2 = AdamW::from_bytes(&blob).unwrap();
        assert_eq!(opt2.steps(), 5);
        let mut x2 = snap_x;
        for _ in 0..5 {
            let g = grad_at(&x2);
            opt2.step(&mut x2, &g, 0.05);
        }
        assert_eq!(x, x2, "resumed trajectory diverged");
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(AdamW::from_bytes(&[]).is_err());
        assert!(AdamW::from_bytes(&[0u8; 36]).is_err());
        let mut blob = AdamW::new(2).to_bytes();
        blob.truncate(blob.len() - 1);
        assert!(AdamW::from_bytes(&blob).is_err());
    }
}
