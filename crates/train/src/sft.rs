//! Supervised fine-tuning data: chat rendering and loss-masked batches.
//!
//! Each conversation is rendered through the chat template; the LM loss is
//! applied only at positions whose *predicted* token belongs to an
//! assistant span (standard instruction-tuning masking). Examples shorter
//! than the window are padded; padding receives no loss.

use crate::data::LmBatch;
use crate::trainer::TrainError;
use astro_prng::Rng;
use astro_tokenizer::{ChatMessage, ChatTemplate, Role, Tokenizer};
use astro_world::Conversation;

/// One rendered SFT example.
#[derive(Clone, Debug)]
pub struct SftExample {
    /// Token sequence (starts with BOS).
    pub tokens: Vec<u32>,
    /// Per-token flag: this token is part of an assistant span.
    pub loss_mask: Vec<bool>,
}

/// Map a world-side role string to the tokenizer's [`Role`].
fn role_of(s: &str) -> Result<Role, TrainError> {
    match s {
        "system" => Ok(Role::System),
        "user" => Ok(Role::User),
        "assistant" => Ok(Role::Assistant),
        other => Err(TrainError::UnknownRole(other.to_string())),
    }
}

/// Render conversations through the chat template. Fails with
/// [`TrainError::UnknownRole`] if any turn carries a role the chat
/// template does not define.
pub fn render_conversations(
    tok: &Tokenizer,
    convs: &[Conversation],
) -> Result<Vec<SftExample>, TrainError> {
    convs
        .iter()
        .map(|c| {
            let msgs: Vec<ChatMessage> = c
                .turns
                .iter()
                .map(|t| Ok(ChatMessage::new(role_of(t.role)?, t.text.clone())))
                .collect::<Result<Vec<_>, TrainError>>()?;
            let r = ChatTemplate.render_training(tok, &msgs);
            Ok(SftExample {
                tokens: r.tokens,
                loss_mask: r.loss_mask,
            })
        })
        .collect()
}

/// Assemble a loss-masked batch from randomly chosen examples.
///
/// Inputs are `tokens[..len-1]`, targets the shift-by-one; position `i`
/// receives loss iff `loss_mask[i+1]` (the token being predicted is an
/// assistant token). Sequences are truncated/padded to `seq`.
pub fn sft_batch(
    examples: &[SftExample],
    batch: usize,
    seq: usize,
    pad: u32,
    rng: &mut Rng,
) -> LmBatch {
    assert!(!examples.is_empty(), "no SFT examples");
    let mut tokens = Vec::with_capacity(batch * seq);
    let mut targets = Vec::with_capacity(batch * seq);
    let mut mask = Vec::with_capacity(batch * seq);
    for _ in 0..batch {
        let ex = &examples[rng.index(examples.len())];
        // Need at least 2 tokens for an (input, target) pair.
        let usable = ex.tokens.len().min(seq + 1);
        for i in 0..seq {
            if i + 1 < usable {
                tokens.push(ex.tokens[i]);
                targets.push(ex.tokens[i + 1] as usize);
                mask.push(ex.loss_mask[i + 1]);
            } else {
                tokens.push(pad);
                targets.push(pad as usize);
                mask.push(false);
            }
        }
    }
    LmBatch {
        tokens,
        targets,
        mask,
        batch,
        seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_tokenizer::{train_bpe, BpeTrainerConfig};
    use astro_world::{InstructKind, Turn};

    fn tok() -> Tokenizer {
        train_bpe(
            &["what is the answer to the question it is fine".to_string()],
            &BpeTrainerConfig {
                vocab_size: 280,
                ..Default::default()
            },
        )
    }

    fn convs() -> Vec<Conversation> {
        vec![
            Conversation {
                kind: InstructKind::LimaLike,
                turns: vec![
                    Turn {
                        role: "user",
                        text: "what is the answer".to_string(),
                    },
                    Turn {
                        role: "assistant",
                        text: "it is fine".to_string(),
                    },
                ],
            },
            Conversation {
                kind: InstructKind::OrcaLike,
                turns: vec![
                    Turn {
                        role: "system",
                        text: "be brief".to_string(),
                    },
                    Turn {
                        role: "user",
                        text: "question".to_string(),
                    },
                    Turn {
                        role: "assistant",
                        text: "fine".to_string(),
                    },
                ],
            },
        ]
    }

    #[test]
    fn rendering_marks_assistant_tokens_only() {
        let tok = tok();
        let exs = render_conversations(&tok, &convs()).expect("render");
        assert_eq!(exs.len(), 2);
        for ex in &exs {
            assert_eq!(ex.tokens.len(), ex.loss_mask.len());
            let masked = ex.loss_mask.iter().filter(|&&m| m).count();
            assert!(masked > 0, "assistant span must receive loss");
            assert!(masked < ex.tokens.len(), "user span must not");
        }
    }

    #[test]
    fn batch_pads_and_masks_padding() {
        let tok = tok();
        let exs = render_conversations(&tok, &convs()).expect("render");
        let mut rng = Rng::seed_from(3);
        let b = sft_batch(&exs, 4, 64, tok.pad(), &mut rng);
        assert_eq!(b.tokens.len(), 4 * 64);
        // Padding exists (examples are short) and is never loss-masked.
        let pad = tok.pad();
        let mut saw_pad = false;
        for i in 0..b.tokens.len() {
            if b.tokens[i] == pad {
                saw_pad = true;
                assert!(!b.mask[i], "padding must not receive loss");
            }
        }
        assert!(saw_pad);
        // Some positions do receive loss.
        assert!(b.mask.iter().any(|&m| m));
    }

    #[test]
    fn truncation_respects_window() {
        let tok = tok();
        let exs = render_conversations(&tok, &convs()).expect("render");
        let mut rng = Rng::seed_from(4);
        let b = sft_batch(&exs, 2, 4, tok.pad(), &mut rng);
        assert_eq!(b.tokens.len(), 8);
        assert_eq!(b.seq, 4);
    }

    #[test]
    fn loss_positions_predict_assistant_tokens() {
        let tok = tok();
        let exs = render_conversations(&tok, &convs()).expect("render");
        let mut rng = Rng::seed_from(5);
        let b = sft_batch(&exs, 1, 64, tok.pad(), &mut rng);
        // Wherever mask is set, the target must be a token that is marked
        // as an assistant token in some example (weak but meaningful:
        // targets at masked positions are never the user header).
        let user_header = tok.special("<|user|>") as usize;
        for i in 0..b.tokens.len() {
            if b.mask[i] {
                assert_ne!(b.targets[i], user_header);
            }
        }
    }

    #[test]
    fn unknown_role_is_a_typed_error() {
        let tok = tok();
        let bad = vec![Conversation {
            kind: InstructKind::LimaLike,
            turns: vec![Turn {
                role: "narrator",
                text: "hi".to_string(),
            }],
        }];
        let err = render_conversations(&tok, &bad).unwrap_err();
        assert_eq!(err, TrainError::UnknownRole("narrator".to_string()));
    }
}
