//! A100 GPU-hour cost model.
//!
//! The paper reports (§III): CPT ≈ 32 A100-hours for the 8B models and
//! ≈ 2,000 for the 70B; SFT ≈ 12 / 100 hours; and ≈ 64 hours of inference
//! for full-instruct answering of all 4,425 MCQs with the 70B model. We
//! model GPU-hours from first principles — FLOPs = `6·P·tokens` for
//! training, `2·P·tokens` for inference, divided by achievable A100
//! throughput — and validate that the paper's numbers are mutually
//! consistent with plausible token counts.
//!
//! This is the component that lets the `costs` bench binary regenerate the
//! paper's §III cost table from our simulated runs (scaling simulated
//! token counts up to paper-scale corpora).

/// What kind of workload is being costed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainingKind {
    /// Continual pretraining / pretraining (forward + backward).
    Cpt,
    /// Supervised fine-tuning (forward + backward).
    Sft,
    /// Autoregressive inference (forward only).
    Inference,
}

/// Throughput assumptions for one A100.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Peak bf16 throughput in TFLOP/s (A100: 312).
    pub peak_tflops: f64,
    /// Model FLOPs utilisation during training.
    pub train_mfu: f64,
    /// Utilisation during batched inference (lower: memory bound).
    pub infer_mfu: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            peak_tflops: 312.0,
            train_mfu: 0.45,
            infer_mfu: 0.2,
        }
    }
}

impl CostModel {
    /// A100-hours to process `tokens` with a model of `params_b` billion
    /// parameters.
    pub fn a100_hours(&self, params_b: f64, tokens: f64, kind: TrainingKind) -> f64 {
        assert!(params_b > 0.0 && tokens >= 0.0);
        let p = params_b * 1e9;
        let (flops_per_token, mfu) = match kind {
            TrainingKind::Cpt | TrainingKind::Sft => (6.0 * p, self.train_mfu),
            TrainingKind::Inference => (2.0 * p, self.infer_mfu),
        };
        let total_flops = flops_per_token * tokens;
        let rate = self.peak_tflops * 1e12 * mfu;
        total_flops / rate / 3600.0
    }

    /// Invert the model: the token count implied by a GPU-hour budget.
    pub fn implied_tokens(&self, params_b: f64, hours: f64, kind: TrainingKind) -> f64 {
        assert!(hours >= 0.0);
        let p = params_b * 1e9;
        let (flops_per_token, mfu) = match kind {
            TrainingKind::Cpt | TrainingKind::Sft => (6.0 * p, self.train_mfu),
            TrainingKind::Inference => (2.0 * p, self.infer_mfu),
        };
        hours * 3600.0 * self.peak_tflops * 1e12 * mfu / flops_per_token
    }
}

/// Convenience wrapper using the default model.
pub fn a100_hours(params_b: f64, tokens: f64, kind: TrainingKind) -> f64 {
    CostModel::default().a100_hours(params_b, tokens, kind)
}

/// The paper's reported cost table (§III), used by tests and the `costs`
/// bench binary: (label, params_b, hours, kind).
pub const PAPER_COSTS: [(&str, f64, f64, TrainingKind); 5] = [
    ("CPT 8B", 8.0, 32.0, TrainingKind::Cpt),
    ("CPT 70B", 70.0, 2000.0, TrainingKind::Cpt),
    ("SFT 8B", 8.0, 12.0, TrainingKind::Sft),
    ("SFT 70B", 70.0, 100.0, TrainingKind::Sft),
    ("Inference 70B (4,425 MCQs)", 70.0, 64.0, TrainingKind::Inference),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hours_scale_linearly_in_tokens_and_params() {
        let m = CostModel::default();
        let h1 = m.a100_hours(8.0, 1e9, TrainingKind::Cpt);
        assert!((m.a100_hours(8.0, 2e9, TrainingKind::Cpt) - 2.0 * h1).abs() < 1e-9);
        assert!((m.a100_hours(16.0, 1e9, TrainingKind::Cpt) - 2.0 * h1).abs() < 1e-9);
    }

    #[test]
    fn inference_cheaper_than_training_per_token() {
        let m = CostModel::default();
        let t = m.a100_hours(70.0, 1e9, TrainingKind::Cpt);
        let i = m.a100_hours(70.0, 1e9, TrainingKind::Inference);
        assert!(i < t);
    }

    #[test]
    fn implied_tokens_inverts_hours() {
        let m = CostModel::default();
        for kind in [TrainingKind::Cpt, TrainingKind::Inference] {
            let tokens = m.implied_tokens(70.0, 100.0, kind);
            let hours = m.a100_hours(70.0, tokens, kind);
            assert!((hours - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn paper_70b_cpt_implies_billions_of_tokens() {
        // 2,000 A100-hours on a 70B model should imply a corpus in the
        // single-digit-billions of tokens — the astro-ph AIC scale.
        let m = CostModel::default();
        let tokens = m.implied_tokens(70.0, 2000.0, TrainingKind::Cpt);
        assert!(
            (1e9..1e10).contains(&tokens),
            "implied 70B CPT tokens {tokens:.3e}"
        );
    }

    #[test]
    fn paper_inference_cost_implies_hundreds_of_tokens_per_question() {
        // 64 A100-hours for 4,425 MCQs on a 70B model: with chain-of-
        // thought outputs up to 512 tokens (plus the prompt), per-question
        // token counts should land in the 10³–10⁴ range.
        let m = CostModel::default();
        let tokens = m.implied_tokens(70.0, 64.0, TrainingKind::Inference);
        let per_q = tokens / 4425.0;
        assert!(
            (100.0..100_000.0).contains(&per_q),
            "implied tokens per question {per_q:.0}"
        );
    }

    #[test]
    fn sft_costs_are_much_smaller_than_cpt() {
        // The paper's SFT set (≈31k conversations) is far smaller than the
        // CPT corpus; its hours are accordingly ~1/20 of CPT for both
        // scales. Our model reproduces the ratio when given the token
        // counts implied by the paper's own numbers.
        let m = CostModel::default();
        let cpt_tokens = m.implied_tokens(70.0, 2000.0, TrainingKind::Cpt);
        let sft_tokens = m.implied_tokens(70.0, 100.0, TrainingKind::Sft);
        assert!(sft_tokens < cpt_tokens / 10.0);
    }

    #[test]
    #[should_panic]
    fn zero_params_rejected() {
        a100_hours(0.0, 1e9, TrainingKind::Cpt);
    }
}
