//! Language-model data pipeline: document packing and batch sampling.
//!
//! Documents are tokenised with BOS/EOS boundaries and concatenated into
//! one contiguous [`TokenStream`] (the standard packed-pretraining
//! layout). Batches are random windows of the stream; targets are the
//! next-token shift, and the loss mask covers every position except those
//! whose *target* is padding.

use astro_prng::Rng;
use astro_tokenizer::Tokenizer;
use astro_world::Document;

/// A packed token stream.
#[derive(Clone, Debug)]
pub struct TokenStream {
    /// The concatenated token ids.
    pub tokens: Vec<u32>,
}

impl TokenStream {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Tokenise and pack documents: `<bos> doc <eos> <bos> doc <eos> ...`.
pub fn pack_documents(tok: &Tokenizer, docs: &[Document]) -> TokenStream {
    let mut tokens = Vec::with_capacity(docs.len() * 64);
    for d in docs {
        tokens.extend(tok.encode_with_bounds(&d.text, true));
    }
    TokenStream { tokens }
}

/// One training batch: `batch*seq` inputs plus shifted targets and mask.
#[derive(Clone, Debug)]
pub struct LmBatch {
    /// Input token ids, `batch * seq`.
    pub tokens: Vec<u32>,
    /// Next-token targets, `batch * seq`.
    pub targets: Vec<usize>,
    /// Positions that receive loss.
    pub mask: Vec<bool>,
    /// Rows in the batch.
    pub batch: usize,
    /// Window length.
    pub seq: usize,
}

impl LmBatch {
    /// Sample `batch` random windows of length `seq` from the stream.
    ///
    /// # Panics
    /// Panics if the stream is shorter than `seq + 1` tokens.
    pub fn sample(stream: &TokenStream, batch: usize, seq: usize, rng: &mut Rng) -> Self {
        assert!(
            stream.len() > seq,
            "stream of {} tokens too short for windows of {seq}",
            stream.len()
        );
        let mut tokens = Vec::with_capacity(batch * seq);
        let mut targets = Vec::with_capacity(batch * seq);
        for _ in 0..batch {
            let start = rng.index(stream.len() - seq);
            tokens.extend_from_slice(&stream.tokens[start..start + seq]);
            targets.extend(
                stream.tokens[start + 1..start + seq + 1]
                    .iter()
                    .map(|&t| t as usize),
            );
        }
        let mask = vec![true; batch * seq];
        LmBatch {
            tokens,
            targets,
            mask,
            batch,
            seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_tokenizer::{train_bpe, BpeTrainerConfig};
    use astro_world::DocumentKind;

    fn tok() -> Tokenizer {
        train_bpe(
            &["the star shines on the dust of the galaxy".to_string()],
            &BpeTrainerConfig {
                vocab_size: 280,
                ..Default::default()
            },
        )
    }

    fn docs() -> Vec<Document> {
        (0..5)
            .map(|i| Document {
                kind: DocumentKind::General,
                article: None,
                text: format!("the star shines {i} times on the dust"),
            })
            .collect()
    }

    #[test]
    fn packing_adds_boundaries() {
        let tok = tok();
        let stream = pack_documents(&tok, &docs());
        let bos = tok.bos();
        let eos = tok.eos();
        let n_bos = stream.tokens.iter().filter(|&&t| t == bos).count();
        let n_eos = stream.tokens.iter().filter(|&&t| t == eos).count();
        assert_eq!(n_bos, 5);
        assert_eq!(n_eos, 5);
        assert_eq!(stream.tokens[0], bos);
        assert_eq!(*stream.tokens.last().unwrap(), eos);
    }

    #[test]
    fn batch_targets_are_shifted_inputs() {
        let tok = tok();
        let stream = pack_documents(&tok, &docs());
        let mut rng = Rng::seed_from(1);
        let b = LmBatch::sample(&stream, 3, 8, &mut rng);
        assert_eq!(b.tokens.len(), 24);
        assert_eq!(b.targets.len(), 24);
        assert!(b.mask.iter().all(|&m| m));
        // Each window's target i must equal the stream token after input i.
        // Verify consistency within rows: target[i] should appear as a
        // valid vocab id.
        for &t in &b.targets {
            assert!(t < tok.vocab_size());
        }
        // First row shifted property: find the window in the stream.
        let row: Vec<u32> = b.tokens[0..8].to_vec();
        let pos = stream
            .tokens
            .windows(8)
            .position(|w| w == row.as_slice())
            .expect("window must come from the stream");
        for i in 0..8 {
            assert_eq!(b.targets[i], stream.tokens[pos + i + 1] as usize);
        }
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let tok = tok();
        let stream = pack_documents(&tok, &docs());
        let a = LmBatch::sample(&stream, 2, 6, &mut Rng::seed_from(9));
        let b = LmBatch::sample(&stream, 2, 6, &mut Rng::seed_from(9));
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.targets, b.targets);
    }

    #[test]
    #[should_panic]
    fn short_stream_panics() {
        let tok = tok();
        let stream = pack_documents(
            &tok,
            &[Document {
                kind: DocumentKind::General,
                article: None,
                text: "hi".to_string(),
            }],
        );
        LmBatch::sample(&stream, 1, 64, &mut Rng::seed_from(0));
    }

    #[test]
    fn empty_stream_reports_empty() {
        let s = TokenStream { tokens: vec![] };
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
