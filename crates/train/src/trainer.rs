//! The training driver: CPT and SFT share one loop that differs only in
//! its batch source.
//!
//! Structure per optimizer step (faithful to multi-GPU LMFlow training):
//!
//! 1. every simulated device samples `grad_accum` micro-batches from its
//!    own stream shard and accumulates gradients locally;
//! 2. gradients are averaged across devices with a ring all-reduce;
//! 3. the (now identical) gradient is clipped and applied by each
//!    device's AdamW under the shared cosine schedule, so replicas stay
//!    bit-identical — standard DDP semantics;
//! 4. optionally, weights are rounded to bf16 (the paper trains in bf16).

use crate::data::{LmBatch, TokenStream};
use crate::optim::{clip_grad_norm, AdamW};
use crate::schedule::CosineSchedule;
use crate::sft::{sft_batch, SftExample};
use astro_model::{Params, TrainContext};
use astro_parallel::DeviceGrid;
use astro_prng::Rng;
use astro_tensor::bf16::bf16_round_slice;

/// Where batches come from.
pub enum BatchSource<'a> {
    /// Packed-stream language modelling (CPT / native pretraining).
    Lm(&'a TokenStream),
    /// Loss-masked SFT examples with the pad token id.
    Sft(&'a [SftExample], u32),
}

/// Typed training failure. On any error the caller's `params` are left
/// exactly as passed in — the loop publishes weights only on success.
#[derive(Clone, Debug, PartialEq)]
pub enum TrainError {
    /// Hyper-parameters failed [`TrainerConfig::validate`].
    InvalidConfig(String),
    /// The loss became non-finite at `step` — divergence, data
    /// corruption, or the `train.nan_loss` injected fault. The update
    /// for that step is *not* applied.
    NonFiniteLoss {
        /// Optimizer step at which the loss left the reals.
        step: u64,
        /// The offending loss value.
        loss: f32,
    },
    /// A conversation turn carried a role the chat template doesn't know
    /// (surfaced by [`crate::sft::render_conversations`]).
    UnknownRole(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::InvalidConfig(why) => write!(f, "invalid TrainerConfig: {why}"),
            TrainError::NonFiniteLoss { step, loss } => {
                write!(f, "non-finite loss {loss} at step {step}")
            }
            TrainError::UnknownRole(role) => write!(f, "unknown conversation role {role:?}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Trainer hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Peak learning rate.
    pub lr: f32,
    /// Rows per micro-batch per device.
    pub batch: usize,
    /// Window length.
    pub seq: usize,
    /// Optimizer steps.
    pub steps: u64,
    /// Warmup ratio (paper: 0.03).
    pub warmup_ratio: f64,
    /// Global-norm gradient clip (0 disables).
    pub grad_clip: f32,
    /// Micro-batches accumulated per step.
    pub grad_accum: usize,
    /// Simulated data-parallel devices.
    pub devices: usize,
    /// Round weights to bf16 after each update.
    pub bf16_weights: bool,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Record the loss every N steps (0 = only first/last).
    pub log_every: u64,
}

impl TrainerConfig {
    /// Validate hyper-parameters before building replicas or buffers.
    /// [`train_lm`] asserts this; the static preflight in `astro-audit`
    /// enforces the same rules (`preflight.steps`, `preflight.lr`) without
    /// running the trainer.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 || self.grad_accum == 0 || self.steps == 0 {
            return Err(format!(
                "devices {}, grad_accum {} and steps {} must all be nonzero",
                self.devices, self.grad_accum, self.steps
            ));
        }
        if self.batch == 0 || self.seq == 0 {
            return Err(format!("batch {} and seq {} must be nonzero", self.batch, self.seq));
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(format!("lr must be positive and finite, got {}", self.lr));
        }
        if !(0.0..=1.0).contains(&self.warmup_ratio) {
            return Err(format!("warmup_ratio {} outside [0, 1]", self.warmup_ratio));
        }
        if self.grad_clip < 0.0 || !self.grad_clip.is_finite() {
            return Err(format!("grad_clip must be finite and >= 0, got {}", self.grad_clip));
        }
        if self.weight_decay < 0.0 || !self.weight_decay.is_finite() {
            return Err(format!(
                "weight_decay must be finite and >= 0, got {}",
                self.weight_decay
            ));
        }
        Ok(())
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            lr: 2e-3,
            batch: 8,
            seq: 64,
            steps: 100,
            warmup_ratio: 0.03,
            grad_clip: 1.0,
            grad_accum: 1,
            devices: 1,
            bf16_weights: true,
            weight_decay: 0.01,
            log_every: 10,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Optimizer steps taken.
    pub steps: u64,
    /// Total tokens processed across all devices.
    pub tokens_processed: u64,
    /// `(step, loss)` samples from device 0.
    pub losses: Vec<(u64, f32)>,
    /// Loss at the last step.
    pub final_loss: f32,
}

impl TrainReport {
    /// Mean of the last `k` recorded losses (robust end-of-training
    /// estimate).
    pub fn tail_loss(&self, k: usize) -> f32 {
        let n = self.losses.len();
        if n == 0 {
            return self.final_loss;
        }
        let take = k.max(1).min(n);
        self.losses[n - take..].iter().map(|&(_, l)| l).sum::<f32>() / take as f32
    }
}

/// Per-device replica state.
struct Device {
    params: Params,
    ctx: TrainContext,
    opt: AdamW,
    grad: Vec<f32>,
    rng: Rng,
    last_loss: f32,
}

/// Train `params` in place. Returns the training report, or a typed
/// error (invalid config, non-finite loss) with `params` untouched.
pub fn train_lm(
    params: &mut Params,
    source: BatchSource<'_>,
    cfg: &TrainerConfig,
    rng: &Rng,
) -> Result<TrainReport, TrainError> {
    cfg.validate().map_err(TrainError::InvalidConfig)?;
    let kind = match source {
        BatchSource::Lm(_) => "lm",
        BatchSource::Sft(..) => "sft",
    };
    let train_span =
        astro_telemetry::span!("train", kind = kind, devices = cfg.devices, steps = cfg.steps);
    let tokens_counter = astro_telemetry::counter("train.tokens");
    let steps_counter = astro_telemetry::counter("train.steps");
    let step_tokens = (cfg.devices * cfg.grad_accum * cfg.batch * cfg.seq) as u64;
    let schedule = CosineSchedule::new(cfg.lr, cfg.steps, cfg.warmup_ratio);
    let n = params.data.len();

    // Build replicas.
    let devices: Vec<Device> = (0..cfg.devices)
        .map(|d| {
            let mut opt = AdamW::new(n);
            opt.weight_decay = cfg.weight_decay;
            Device {
                params: params.clone(),
                ctx: TrainContext::new(params.cfg, cfg.batch, cfg.seq),
                opt,
                grad: vec![0.0; n],
                rng: rng.substream_idx("train-device", d as u64),
                last_loss: 0.0,
            }
        })
        .collect();
    let mut grid = DeviceGrid::new(devices);

    let mut losses = Vec::new();
    // Rate bookkeeping for `train.step` telemetry: tokens since the last
    // recorded step over the wall time since then.
    let mut mark = (std::time::Instant::now(), 0u64);
    for step in 0..cfg.steps {
        let inv_accum = 1.0 / cfg.grad_accum as f32;
        // Local compute + ring all-reduce.
        grid.step(
            |_rank, dev: &mut Device| {
                dev.grad.fill(0.0);
                let mut loss_sum = 0.0;
                for _ in 0..cfg.grad_accum {
                    let batch = match &source {
                        BatchSource::Lm(stream) => {
                            LmBatch::sample(stream, cfg.batch, cfg.seq, &mut dev.rng)
                        }
                        BatchSource::Sft(examples, pad) => {
                            sft_batch(examples, cfg.batch, cfg.seq, *pad, &mut dev.rng)
                        }
                    };
                    loss_sum += dev.ctx.loss_and_grad(
                        &dev.params,
                        &batch.tokens,
                        &batch.targets,
                        &batch.mask,
                        &mut dev.grad,
                    );
                }
                if cfg.grad_accum > 1 {
                    for g in dev.grad.iter_mut() {
                        *g *= inv_accum;
                    }
                }
                dev.last_loss = loss_sum * inv_accum;
            },
            |dev| dev.grad.as_mut_slice(),
        );
        // Abort on a non-finite loss *before* applying the update, so a
        // diverged (or fault-injected) step never poisons the weights.
        let mut loss0 = grid.device(0).last_loss;
        if astro_resilience::fault::should_fault("train.nan_loss") {
            loss0 = f32::NAN;
        }
        if !loss0.is_finite() {
            astro_telemetry::Event::new("train.abort")
                .str_field("kind", kind)
                .u64_field("step", step)
                .f64_field("loss", loss0 as f64)
                .emit();
            return Err(TrainError::NonFiniteLoss { step, loss: loss0 });
        }
        // Identical update on every replica.
        let lr = schedule.lr_at(step);
        let mut grad_norm0 = f32::NAN;
        for rank in 0..cfg.devices {
            let dev = grid.device_mut(rank);
            if cfg.grad_clip > 0.0 {
                let norm = clip_grad_norm(&mut dev.grad, cfg.grad_clip);
                if rank == 0 {
                    grad_norm0 = norm;
                }
            }
            dev.opt.step(&mut dev.params.data, &dev.grad, lr);
            if cfg.bf16_weights {
                bf16_round_slice(&mut dev.params.data);
            }
        }
        steps_counter.inc();
        tokens_counter.add(step_tokens);
        let record = step == 0
            || step + 1 == cfg.steps
            || (cfg.log_every > 0 && step % cfg.log_every == 0);
        if record {
            losses.push((step, loss0));
            let done = step + 1;
            let dt = mark.0.elapsed().as_secs_f64();
            let tok_per_sec = ((done - mark.1) * step_tokens) as f64 / dt.max(1e-9);
            mark = (std::time::Instant::now(), done);
            astro_telemetry::Event::new("train.step")
                .str_field("kind", kind)
                .u64_field("step", step)
                .f64_field("loss", loss0 as f64)
                .f64_field("lr", lr as f64)
                .f64_field("grad_norm", grad_norm0 as f64)
                .f64_field("tok_per_sec", tok_per_sec)
                .emit();
            astro_telemetry::debug!(
                "train[{kind}] step {step}/{} loss {loss0:.4} lr {lr:.3e} {tok_per_sec:.0} tok/s",
                cfg.steps
            );
        }
    }

    let final_loss = losses.last().map(|&(_, l)| l).unwrap_or(f32::NAN);
    // Publish device 0's replica. `validate` guarantees devices >= 1, so
    // the fallback (keep the caller's weights) is unreachable in practice.
    let replicas = grid.into_devices();
    if let Some(first) = replicas.into_iter().next() {
        params.data = first.params.data;
    }

    let tokens_processed = cfg.steps * step_tokens;
    train_span.record_f64("tokens", tokens_processed as f64);
    Ok(TrainReport {
        steps: cfg.steps,
        tokens_processed,
        losses,
        final_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::pack_documents;
    use crate::sft::render_conversations;
    use astro_model::ModelConfig;
    use astro_tokenizer::{train_bpe, BpeTrainerConfig, Tokenizer};
    use astro_world::{Conversation, Document, DocumentKind, InstructKind, Turn};

    fn tok_and_stream() -> (Tokenizer, TokenStream) {
        let text = "the star shines on the galaxy and the dust of the nebula ".repeat(8);
        let tok = train_bpe(
            std::slice::from_ref(&text),
            &BpeTrainerConfig {
                vocab_size: 290,
                ..Default::default()
            },
        );
        let docs: Vec<Document> = (0..6)
            .map(|_| Document {
                kind: DocumentKind::General,
                article: None,
                text: text.clone(),
            })
            .collect();
        let stream = pack_documents(&tok, &docs);
        (tok, stream)
    }

    fn small_cfg(steps: u64) -> TrainerConfig {
        TrainerConfig {
            lr: 1e-2,
            batch: 4,
            seq: 24,
            steps,
            grad_accum: 1,
            devices: 1,
            bf16_weights: false,
            log_every: 5,
            ..Default::default()
        }
    }

    #[test]
    fn training_reduces_lm_loss() {
        let (tok, stream) = tok_and_stream();
        let cfg_model = ModelConfig::tiny(tok.vocab_size());
        let mut params = Params::init(cfg_model, &mut Rng::seed_from(1));
        let report = train_lm(
            &mut params,
            BatchSource::Lm(&stream),
            &small_cfg(60),
            &Rng::seed_from(2),
        )
        .expect("train");
        let first = report.losses.first().unwrap().1;
        let last = report.tail_loss(3);
        assert!(last < first * 0.8, "loss {first} → {last}");
        assert_eq!(report.steps, 60);
        assert_eq!(report.tokens_processed, 60 * 4 * 24);
    }

    #[test]
    fn multi_device_matches_train_semantics() {
        // 2 devices with half the accumulation ≈ same effective batch; at
        // minimum the run must complete and reduce the loss.
        let (tok, stream) = tok_and_stream();
        let cfg_model = ModelConfig::tiny(tok.vocab_size());
        let mut params = Params::init(cfg_model, &mut Rng::seed_from(3));
        let mut cfg = small_cfg(40);
        cfg.devices = 2;
        let report = train_lm(&mut params, BatchSource::Lm(&stream), &cfg, &Rng::seed_from(4))
            .expect("train");
        assert!(report.tail_loss(3) < report.losses[0].1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (tok, stream) = tok_and_stream();
        let cfg_model = ModelConfig::tiny(tok.vocab_size());
        let run = |seed| {
            let mut p = Params::init(cfg_model, &mut Rng::seed_from(5));
            train_lm(
                &mut p,
                BatchSource::Lm(&stream),
                &small_cfg(10),
                &Rng::seed_from(seed),
            )
            .expect("train");
            p.data
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn bf16_rounding_keeps_weights_bf16() {
        let (tok, stream) = tok_and_stream();
        let cfg_model = ModelConfig::tiny(tok.vocab_size());
        let mut params = Params::init(cfg_model, &mut Rng::seed_from(6));
        let mut cfg = small_cfg(5);
        cfg.bf16_weights = true;
        train_lm(&mut params, BatchSource::Lm(&stream), &cfg, &Rng::seed_from(7)).expect("train");
        for &w in params.data.iter().take(500) {
            assert_eq!(w, astro_tensor::bf16::bf16_round(w), "weight not bf16: {w}");
        }
    }

    #[test]
    fn sft_training_reduces_loss() {
        let (tok, _) = tok_and_stream();
        let convs: Vec<Conversation> = (0..8)
            .map(|i| Conversation {
                kind: InstructKind::LimaLike,
                turns: vec![
                    Turn {
                        role: "user",
                        text: format!("the star {i}"),
                    },
                    Turn {
                        role: "assistant",
                        text: "shines on the galaxy".to_string(),
                    },
                ],
            })
            .collect();
        let examples = render_conversations(&tok, &convs).expect("render");
        let cfg_model = ModelConfig::tiny(tok.vocab_size());
        let mut params = Params::init(cfg_model, &mut Rng::seed_from(8));
        let report = train_lm(
            &mut params,
            BatchSource::Sft(&examples, tok.pad()),
            &small_cfg(60),
            &Rng::seed_from(9),
        )
        .expect("train");
        assert!(
            report.tail_loss(3) < report.losses[0].1 * 0.9,
            "SFT loss {} → {}",
            report.losses[0].1,
            report.tail_loss(3)
        );
    }

    #[test]
    fn grad_accumulation_runs() {
        let (tok, stream) = tok_and_stream();
        let cfg_model = ModelConfig::tiny(tok.vocab_size());
        let mut params = Params::init(cfg_model, &mut Rng::seed_from(10));
        let mut cfg = small_cfg(8);
        cfg.grad_accum = 3;
        let report = train_lm(&mut params, BatchSource::Lm(&stream), &cfg, &Rng::seed_from(11))
            .expect("train");
        assert_eq!(report.tokens_processed, 8 * 3 * 4 * 24);
    }

    #[test]
    fn tail_loss_handles_short_history() {
        let r = TrainReport {
            steps: 1,
            tokens_processed: 0,
            losses: vec![(0, 2.0)],
            final_loss: 2.0,
        };
        assert_eq!(r.tail_loss(5), 2.0);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let (tok, stream) = tok_and_stream();
        let cfg_model = ModelConfig::tiny(tok.vocab_size());
        let mut params = Params::init(cfg_model, &mut Rng::seed_from(1));
        let mut cfg = small_cfg(10);
        cfg.steps = 0;
        let before = params.data.clone();
        let err = train_lm(&mut params, BatchSource::Lm(&stream), &cfg, &Rng::seed_from(2))
            .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
        assert_eq!(params.data, before, "params must be untouched on error");
    }

    #[test]
    fn diverging_loss_is_a_typed_error_and_params_survive() {
        // An absurd learning rate blows the weights up within a step or
        // two; the loop must surface NonFiniteLoss instead of publishing
        // garbage weights. (The injected `train.nan_loss` variant of this
        // is exercised by the workspace chaos suite, which serialises
        // access to the global fault plan.)
        let (tok, stream) = tok_and_stream();
        let cfg_model = ModelConfig::tiny(tok.vocab_size());
        let mut params = Params::init(cfg_model, &mut Rng::seed_from(1));
        let before = params.data.clone();
        let mut cfg = small_cfg(20);
        cfg.lr = 1e30;
        let err = train_lm(&mut params, BatchSource::Lm(&stream), &cfg, &Rng::seed_from(2))
            .unwrap_err();
        assert!(matches!(err, TrainError::NonFiniteLoss { .. }), "{err}");
        assert_eq!(params.data, before, "diverged run must not publish weights");
    }
}
