//! Byte-level BPE tokenizer for the AstroMLab 2 reproduction.
//!
//! LLaMA models ship SentencePiece/BPE tokenizers; we train our own
//! byte-level BPE on the synthetic corpus. Two properties of real
//! tokenizers that the paper's evaluation *depends on* are reproduced
//! faithfully:
//!
//! * **Leading-space variants.** Merges operate on raw bytes including
//!   spaces, so `"A"` and `" A"` typically become *different* tokens —
//!   exactly the ambiguity the paper's next-token benchmarking method must
//!   resolve dynamically (§V-B).
//! * **Special tokens** for chat structure (`<|bos|>`, `<|user|>`, ...)
//!   that never collide with text tokens, used by the SFT chat template
//!   and the full-instruct evaluation method.
//!
//! The implementation is a standard pair-merge BPE: training counts
//! adjacent-pair frequencies over a word-segmented corpus and greedily
//! merges the most frequent pair; encoding applies merges in rank order
//! with a per-chunk cache.

mod bpe;
mod chat;
mod serial;

pub use bpe::{train_bpe, BpeTrainerConfig};
pub use chat::{ChatMessage, ChatTemplate, Role};
pub use serial::SerialError;

use std::collections::HashMap;

/// Special tokens, in id order directly after the 256 byte tokens.
pub const SPECIALS: [&str; 7] = [
    "<|bos|>",
    "<|eos|>",
    "<|pad|>",
    "<|system|>",
    "<|user|>",
    "<|assistant|>",
    "<|end|>",
];

/// Token id type.
pub type TokenId = u32;

/// A trained byte-level BPE tokenizer.
#[derive(Clone, Debug)]
pub struct Tokenizer {
    /// Merge rules in rank order: merging `pair.0` and `pair.1` produces
    /// token `256 + SPECIALS.len() + rank`.
    merges: Vec<(TokenId, TokenId)>,
    /// pair → merged id, for O(1) lookup while encoding.
    merge_map: HashMap<(TokenId, TokenId), TokenId>,
    /// Byte string for every token id (specials included, as their
    /// literal text).
    pieces: Vec<Vec<u8>>,
    /// Exact piece → id lookup.
    piece_ids: HashMap<Vec<u8>, TokenId>,
}

impl Tokenizer {
    /// Construct from merge rules (normally via [`train_bpe`]).
    pub fn from_merges(merges: Vec<(TokenId, TokenId)>) -> Self {
        let mut pieces: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();
        for s in SPECIALS {
            pieces.push(s.as_bytes().to_vec());
        }
        let mut merge_map = HashMap::with_capacity(merges.len());
        for (rank, &(a, b)) in merges.iter().enumerate() {
            let id = (pieces.len()) as TokenId;
            debug_assert_eq!(id as usize, 256 + SPECIALS.len() + rank);
            let mut piece = pieces[a as usize].clone();
            piece.extend_from_slice(&pieces[b as usize]);
            pieces.push(piece);
            merge_map.insert((a, b), id);
        }
        let piece_ids = pieces
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as TokenId))
            .collect();
        Tokenizer {
            merges,
            merge_map,
            pieces,
            piece_ids,
        }
    }

    /// Total vocabulary size (bytes + specials + merges).
    pub fn vocab_size(&self) -> usize {
        self.pieces.len()
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// Id of a special token.
    ///
    /// # Panics
    /// Panics if `name` is not one of [`SPECIALS`].
    pub fn special(&self, name: &str) -> TokenId {
        let idx = SPECIALS
            .iter()
            .position(|&s| s == name)
            .unwrap_or_else(|| panic!("unknown special token {name}"));
        (256 + idx) as TokenId
    }

    /// Convenience: beginning-of-sequence id.
    pub fn bos(&self) -> TokenId {
        self.special("<|bos|>")
    }

    /// Convenience: end-of-sequence id.
    pub fn eos(&self) -> TokenId {
        self.special("<|eos|>")
    }

    /// Convenience: padding id.
    pub fn pad(&self) -> TokenId {
        self.special("<|pad|>")
    }

    /// Exact single-token lookup: the id whose piece is exactly `s`, if
    /// one exists. This powers the eval-side detection of `"A"` vs `" A"`
    /// answer-token variants.
    pub fn token_for_str(&self, s: &str) -> Option<TokenId> {
        self.piece_ids.get(s.as_bytes()).copied()
    }

    /// The byte string of a token.
    pub fn piece(&self, id: TokenId) -> &[u8] {
        &self.pieces[id as usize]
    }

    /// Encode text to token ids (no BOS/EOS added).
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(text.len() / 3 + 4);
        for chunk in segment(text) {
            self.encode_chunk(chunk.as_bytes(), &mut out);
        }
        out
    }

    /// Encode with BOS prepended and optionally EOS appended.
    pub fn encode_with_bounds(&self, text: &str, eos: bool) -> Vec<TokenId> {
        let mut out = vec![self.bos()];
        for chunk in segment(text) {
            self.encode_chunk(chunk.as_bytes(), &mut out);
        }
        if eos {
            out.push(self.eos());
        }
        out
    }

    /// Apply merges to one pre-tokenised chunk, appending ids to `out`.
    fn encode_chunk(&self, bytes: &[u8], out: &mut Vec<TokenId>) {
        let mut ids: Vec<TokenId> = bytes.iter().map(|&b| b as TokenId).collect();
        loop {
            // Find the lowest-rank applicable merge.
            let mut best: Option<(TokenId, usize)> = None; // (merged id, position)
            for i in 0..ids.len().saturating_sub(1) {
                if let Some(&m) = self.merge_map.get(&(ids[i], ids[i + 1])) {
                    if best.map(|(b, _)| m < b).unwrap_or(true) {
                        best = Some((m, i));
                    }
                }
            }
            match best {
                Some((m, i)) => {
                    ids[i] = m;
                    ids.remove(i + 1);
                }
                None => break,
            }
        }
        out.extend_from_slice(&ids);
    }

    /// Decode token ids back to text. Byte sequences that are not valid
    /// UTF-8 are replaced with U+FFFD. Special tokens render as their
    /// literal `<|...|>` text.
    pub fn decode(&self, ids: &[TokenId]) -> String {
        let mut bytes = Vec::with_capacity(ids.len() * 3);
        for &id in ids {
            bytes.extend_from_slice(self.piece(id));
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Serialise to a compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        serial::tokenizer_to_bytes(self)
    }

    /// Deserialise from [`Tokenizer::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SerialError> {
        serial::tokenizer_from_bytes(bytes)
    }

    pub(crate) fn merges(&self) -> &[(TokenId, TokenId)] {
        &self.merges
    }

    /// Encode raw bytes as one chunk (merges may span the whole piece),
    /// used by the trainer to build required pieces.
    pub(crate) fn encode_raw_chunk(&self, bytes: &[u8], out: &mut Vec<TokenId>) {
        self.encode_chunk(bytes, out);
    }
}

/// Pre-tokenisation: split text into chunks at word boundaries, keeping a
/// leading space attached to the following word (GPT-2 style). Merges never
/// cross chunk boundaries, which keeps encoding fast and gives the
/// leading-space token variants real tokenizers have.
pub fn segment(text: &str) -> impl Iterator<Item = &str> {
    SegmentIter { rest: text }
}

struct SegmentIter<'a> {
    rest: &'a str,
}

impl<'a> Iterator for SegmentIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        if self.rest.is_empty() {
            return None;
        }
        let bytes = self.rest.as_bytes();
        let mut i = 0;
        // Optionally one leading space glued to the next word.
        if bytes[0] == b' ' {
            i = 1;
        }
        // A run of non-space, non-newline characters...
        let start_word = i;
        while i < bytes.len() && bytes[i] != b' ' && bytes[i] != b'\n' {
            i += 1;
        }
        if i == start_word {
            // Chunk is pure whitespace/newline: emit a single char.
            i = start_word
                + self.rest[start_word..]
                    .chars()
                    .next()
                    .map(|c| c.len_utf8())
                    .unwrap_or(0);
            // If we consumed a leading space and nothing else, emit just it.
            if i == 0 {
                i = 1;
            }
        }
        let (head, tail) = self.rest.split_at(i.max(1));
        self.rest = tail;
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tok() -> Tokenizer {
        let corpus = "the star the star the galaxy a star in the galaxy \
                      the quasar emits the light of the galaxy";
        train_bpe(
            &[corpus.to_string()],
            &BpeTrainerConfig {
                vocab_size: 300,
                ..Default::default()
            },
        )
    }

    #[test]
    fn round_trip_ascii() {
        let tok = tiny_tok();
        for text in [
            "the star",
            " leading space",
            "multi  space",
            "line\nbreak",
            "",
            "unknownwordxyz",
        ] {
            assert_eq!(tok.decode(&tok.encode(text)), text, "round trip {text:?}");
        }
    }

    #[test]
    fn round_trip_unicode() {
        let tok = tiny_tok();
        let text = "σ Ori — a 5.2 M☉ star";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn specials_have_stable_ids() {
        let tok = tiny_tok();
        assert_eq!(tok.bos(), 256);
        assert_eq!(tok.eos(), 257);
        assert_eq!(tok.pad(), 258);
        assert_eq!(tok.special("<|assistant|>"), 261);
    }

    #[test]
    #[should_panic]
    fn unknown_special_panics() {
        tiny_tok().special("<|nope|>");
    }

    #[test]
    fn encode_with_bounds_adds_bos_eos() {
        let tok = tiny_tok();
        let ids = tok.encode_with_bounds("the star", true);
        assert_eq!(ids[0], tok.bos());
        assert_eq!(*ids.last().unwrap(), tok.eos());
    }

    #[test]
    fn merges_compress() {
        let tok = tiny_tok();
        let ids = tok.encode("the star the star");
        // With merges trained on this exact text, far fewer tokens than
        // bytes.
        assert!(ids.len() < "the star the star".len() / 2 + 2, "got {} tokens", ids.len());
    }

    #[test]
    fn leading_space_variant_exists_after_training() {
        // Train on text where " A" appears as an answer-letter pattern.
        let corpus = "Answer: A Answer: B Answer: C Answer: D ".repeat(50);
        let tok = train_bpe(
            &[corpus],
            &BpeTrainerConfig {
                vocab_size: 320,
                ..Default::default()
            },
        );
        // The single-byte "A" token always exists:
        assert_eq!(tok.token_for_str("A"), Some(b'A' as TokenId));
        // And the trained merge " A" should exist as its own token.
        assert!(tok.token_for_str(" A").is_some(), "no ' A' variant learned");
    }

    #[test]
    fn segment_keeps_leading_spaces() {
        let chunks: Vec<&str> = segment("the star shines").collect();
        assert_eq!(chunks, vec!["the", " star", " shines"]);
        let chunks: Vec<&str> = segment(" lead").collect();
        assert_eq!(chunks, vec![" lead"]);
        let chunks: Vec<&str> = segment("a\nb").collect();
        assert_eq!(chunks, vec!["a", "\n", "b"]);
        let joined: String = segment("x  y").collect();
        assert_eq!(joined, "x  y");
    }

    #[test]
    fn serialisation_round_trip() {
        let tok = tiny_tok();
        let bytes = tok.to_bytes();
        let tok2 = Tokenizer::from_bytes(&bytes).unwrap();
        assert_eq!(tok.vocab_size(), tok2.vocab_size());
        let text = "the galaxy emits light";
        assert_eq!(tok.encode(text), tok2.encode(text));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Tokenizer::from_bytes(&[1, 2, 3]).is_err());
        assert!(Tokenizer::from_bytes(&[]).is_err());
    }

    #[test]
    fn vocab_size_accounts_bytes_specials_merges() {
        let tok = tiny_tok();
        assert_eq!(tok.vocab_size(), 256 + SPECIALS.len() + tok.num_merges());
    }
}
