//! Chat template for SFT and full-instruct evaluation.
//!
//! The paper's SFT stage turns base models into "chat/instruct" versions;
//! its full-instruct benchmark then prompts them conversationally. Both
//! need a canonical serialisation of a conversation into tokens, plus — for
//! SFT loss masking — the spans that belong to assistant turns (loss is
//! computed only on assistant tokens, as in standard instruction tuning).

use crate::{TokenId, Tokenizer};

/// Speaker role in a conversation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// System instructions.
    System,
    /// Human/user turn.
    User,
    /// Model turn (the only spans that receive loss during SFT).
    Assistant,
}

impl Role {
    fn special_name(self) -> &'static str {
        match self {
            Role::System => "<|system|>",
            Role::User => "<|user|>",
            Role::Assistant => "<|assistant|>",
        }
    }
}

/// One turn of a conversation.
#[derive(Clone, Debug, PartialEq)]
pub struct ChatMessage {
    /// Who is speaking.
    pub role: Role,
    /// The turn's text content.
    pub content: String,
}

impl ChatMessage {
    /// Convenience constructor.
    pub fn new(role: Role, content: impl Into<String>) -> Self {
        ChatMessage {
            role,
            content: content.into(),
        }
    }
}

/// Tokenised conversation with assistant-span markers.
#[derive(Clone, Debug)]
pub struct RenderedChat {
    /// The full token sequence (starts with BOS).
    pub tokens: Vec<TokenId>,
    /// `true` for positions whose *prediction* should receive loss — i.e.
    /// the assistant's content tokens and the closing `<|end|>` of
    /// assistant turns.
    pub loss_mask: Vec<bool>,
}

/// Serialises conversations as
/// `<|bos|> (<|role|> content <|end|>)*` and, for generation prompts,
/// a trailing `<|assistant|>` header.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChatTemplate;

impl ChatTemplate {
    /// Render a full conversation for SFT training.
    pub fn render_training(&self, tok: &Tokenizer, messages: &[ChatMessage]) -> RenderedChat {
        let end = tok.special("<|end|>");
        let mut tokens = vec![tok.bos()];
        let mut loss_mask = vec![false];
        for msg in messages {
            let header = tok.special(msg.role.special_name());
            tokens.push(header);
            loss_mask.push(false);
            let body = tok.encode(&msg.content);
            let is_assistant = msg.role == Role::Assistant;
            for id in body {
                tokens.push(id);
                loss_mask.push(is_assistant);
            }
            tokens.push(end);
            loss_mask.push(is_assistant);
        }
        debug_assert_eq!(tokens.len(), loss_mask.len());
        RenderedChat { tokens, loss_mask }
    }

    /// Render a prompt for generation: the conversation so far plus an
    /// opened assistant turn the model should complete.
    pub fn render_prompt(&self, tok: &Tokenizer, messages: &[ChatMessage]) -> Vec<TokenId> {
        let end = tok.special("<|end|>");
        let mut tokens = vec![tok.bos()];
        for msg in messages {
            tokens.push(tok.special(msg.role.special_name()));
            tokens.extend(tok.encode(&msg.content));
            tokens.push(end);
        }
        tokens.push(tok.special("<|assistant|>"));
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_bpe, BpeTrainerConfig};

    fn tok() -> Tokenizer {
        train_bpe(
            &["hello world how are you fine thanks".to_string()],
            &BpeTrainerConfig {
                vocab_size: 280,
                ..Default::default()
            },
        )
    }

    #[test]
    fn training_render_masks_only_assistant() {
        let tok = tok();
        let msgs = [
            ChatMessage::new(Role::User, "hello"),
            ChatMessage::new(Role::Assistant, "world"),
        ];
        let r = ChatTemplate.render_training(&tok, &msgs);
        assert_eq!(r.tokens.len(), r.loss_mask.len());
        assert_eq!(r.tokens[0], tok.bos());
        // user content must be unmasked; at least one masked position must
        // exist (assistant content + its <|end|>).
        let masked: usize = r.loss_mask.iter().filter(|&&b| b).count();
        let world_len = tok.encode("world").len();
        assert_eq!(masked, world_len + 1, "assistant tokens + end");
        // header tokens themselves receive no loss
        let assistant_header = tok.special("<|assistant|>");
        for (t, &m) in r.tokens.iter().zip(r.loss_mask.iter()) {
            if *t == assistant_header {
                assert!(!m);
            }
        }
    }

    #[test]
    fn prompt_render_ends_with_assistant_header() {
        let tok = tok();
        let msgs = [
            ChatMessage::new(Role::System, "you are helpful"),
            ChatMessage::new(Role::User, "hello"),
        ];
        let p = ChatTemplate.render_prompt(&tok, &msgs);
        assert_eq!(*p.last().unwrap(), tok.special("<|assistant|>"));
        assert_eq!(p[0], tok.bos());
    }

    #[test]
    fn multi_turn_conversation_renders_all_turns() {
        let tok = tok();
        let msgs = [
            ChatMessage::new(Role::User, "hello"),
            ChatMessage::new(Role::Assistant, "world"),
            ChatMessage::new(Role::User, "how are you"),
            ChatMessage::new(Role::Assistant, "fine thanks"),
        ];
        let r = ChatTemplate.render_training(&tok, &msgs);
        let ends = r
            .tokens
            .iter()
            .filter(|&&t| t == tok.special("<|end|>"))
            .count();
        assert_eq!(ends, 4);
        let headers = r
            .tokens
            .iter()
            .filter(|&&t| t == tok.special("<|user|>") || t == tok.special("<|assistant|>"))
            .count();
        assert_eq!(headers, 4);
    }

    #[test]
    fn empty_conversation_is_just_bos() {
        let tok = tok();
        let r = ChatTemplate.render_training(&tok, &[]);
        assert_eq!(r.tokens, vec![tok.bos()]);
        let p = ChatTemplate.render_prompt(&tok, &[]);
        assert_eq!(p, vec![tok.bos(), tok.special("<|assistant|>")]);
    }
}
