//! Compact binary serialisation for tokenizers.
//!
//! Format (little-endian):
//! ```text
//! magic  u32  = 0x42504531 ("BPE1")
//! merges u32  = number of merge rules
//! then per merge: a u32, b u32
//! ```
//! Pieces are reconstructed from the merges, so only the rules are stored.

use crate::{TokenId, Tokenizer};

const MAGIC: u32 = 0x4250_4531;

/// Why a tokenizer blob failed to deserialise. Mirrors the model
/// checkpoint's `CkptError`: a typed error callers can match on instead
/// of string-scraping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SerialError {
    /// Blob shorter than the 8-byte header.
    TooShort {
        /// Actual blob length.
        len: usize,
    },
    /// Header magic does not identify a tokenizer blob.
    BadMagic {
        /// The magic value found.
        got: u32,
    },
    /// Body length inconsistent with the declared merge count.
    LengthMismatch {
        /// Actual blob length.
        len: usize,
        /// Declared number of merges.
        merges: usize,
        /// Length the declared count implies.
        want: usize,
    },
    /// A merge rule references a token not yet defined at its rank.
    ForwardReference {
        /// Rank of the offending merge.
        rank: usize,
        /// Left operand token id.
        a: u32,
        /// Right operand token id.
        b: u32,
    },
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::TooShort { len } => {
                write!(f, "tokenizer blob too short ({len} bytes, need 8)")
            }
            SerialError::BadMagic { got } => write!(f, "bad tokenizer magic {got:#x}"),
            SerialError::LengthMismatch { len, merges, want } => write!(
                f,
                "tokenizer blob length {len} does not match {merges} merges (want {want})"
            ),
            SerialError::ForwardReference { rank, a, b } => {
                write!(f, "merge {rank} references undefined token ({a},{b})")
            }
        }
    }
}

impl std::error::Error for SerialError {}

/// Read a little-endian `u32` at `off`. Caller guarantees the bounds;
/// the fixed-size copy cannot fail.
fn read_u32(bytes: &[u8], off: usize) -> u32 {
    let mut le = [0u8; 4];
    le.copy_from_slice(&bytes[off..off + 4]);
    u32::from_le_bytes(le)
}

/// Serialise a tokenizer's merge table.
pub fn tokenizer_to_bytes(tok: &Tokenizer) -> Vec<u8> {
    let merges = tok.merges();
    let mut out = Vec::with_capacity(8 + merges.len() * 8);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(merges.len() as u32).to_le_bytes());
    for &(a, b) in merges {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

/// Deserialise a tokenizer from [`tokenizer_to_bytes`] output.
pub fn tokenizer_from_bytes(bytes: &[u8]) -> Result<Tokenizer, SerialError> {
    if bytes.len() < 8 {
        return Err(SerialError::TooShort { len: bytes.len() });
    }
    let magic = read_u32(bytes, 0);
    if magic != MAGIC {
        return Err(SerialError::BadMagic { got: magic });
    }
    let count = read_u32(bytes, 4) as usize;
    let want = 8 + count * 8;
    if bytes.len() != want {
        return Err(SerialError::LengthMismatch {
            len: bytes.len(),
            merges: count,
            want,
        });
    }
    let mut merges: Vec<(TokenId, TokenId)> = Vec::with_capacity(count);
    for i in 0..count {
        let off = 8 + i * 8;
        merges.push((read_u32(bytes, off), read_u32(bytes, off + 4)));
    }
    // Validate that merge operands refer to already-defined tokens.
    let base = (256 + crate::SPECIALS.len()) as u32;
    for (rank, &(a, b)) in merges.iter().enumerate() {
        let limit = base + rank as u32;
        if a >= limit || b >= limit {
            return Err(SerialError::ForwardReference { rank, a, b });
        }
    }
    Ok(Tokenizer::from_merges(merges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_bpe, BpeTrainerConfig};

    #[test]
    fn round_trip_preserves_behaviour() {
        let tok = train_bpe(
            &["star dust nebula star dust".to_string()],
            &BpeTrainerConfig {
                vocab_size: 290,
                min_pair_count: 1,
                ensure_pieces: Vec::new(),
            },
        );
        let restored = tokenizer_from_bytes(&tokenizer_to_bytes(&tok)).unwrap();
        for text in ["star dust", "nebula", "unseen words"] {
            assert_eq!(tok.encode(text), restored.encode(text));
        }
    }

    #[test]
    fn rejects_forward_references() {
        // A merge whose operand id is not yet defined must be rejected.
        let mut blob = Vec::new();
        blob.extend_from_slice(&MAGIC.to_le_bytes());
        blob.extend_from_slice(&1u32.to_le_bytes());
        blob.extend_from_slice(&999u32.to_le_bytes());
        blob.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            tokenizer_from_bytes(&blob),
            Err(SerialError::ForwardReference { rank: 0, a: 999, b: 0 })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let tok = train_bpe(
            &["aa bb aa bb".to_string()],
            &BpeTrainerConfig {
                vocab_size: 270,
                min_pair_count: 1,
                ensure_pieces: Vec::new(),
            },
        );
        let blob = tokenizer_to_bytes(&tok);
        assert!(matches!(
            tokenizer_from_bytes(&blob[..blob.len() - 1]),
            Err(SerialError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn typed_errors_cover_header_failures() {
        assert!(matches!(
            tokenizer_from_bytes(&[1, 2, 3]),
            Err(SerialError::TooShort { len: 3 })
        ));
        let mut blob = Vec::new();
        blob.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        blob.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            tokenizer_from_bytes(&blob),
            Err(SerialError::BadMagic { got: 0xdead_beef })
        ));
        // Display stays human-readable for log lines.
        let msg = SerialError::TooShort { len: 3 }.to_string();
        assert!(msg.contains("too short"), "{msg}");
    }
}
