//! Compact binary serialisation for tokenizers.
//!
//! Format (little-endian):
//! ```text
//! magic  u32  = 0x42504531 ("BPE1")
//! merges u32  = number of merge rules
//! then per merge: a u32, b u32
//! ```
//! Pieces are reconstructed from the merges, so only the rules are stored.

use crate::{TokenId, Tokenizer};

const MAGIC: u32 = 0x4250_4531;

/// Serialise a tokenizer's merge table.
pub fn tokenizer_to_bytes(tok: &Tokenizer) -> Vec<u8> {
    let merges = tok.merges();
    let mut out = Vec::with_capacity(8 + merges.len() * 8);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(merges.len() as u32).to_le_bytes());
    for &(a, b) in merges {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

/// Deserialise a tokenizer from [`tokenizer_to_bytes`] output.
pub fn tokenizer_from_bytes(bytes: &[u8]) -> Result<Tokenizer, String> {
    if bytes.len() < 8 {
        return Err("tokenizer blob too short".to_string());
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("sliced"));
    if magic != MAGIC {
        return Err(format!("bad tokenizer magic {magic:#x}"));
    }
    let count = u32::from_le_bytes(bytes[4..8].try_into().expect("sliced")) as usize;
    let want = 8 + count * 8;
    if bytes.len() != want {
        return Err(format!(
            "tokenizer blob length {} does not match {count} merges (want {want})",
            bytes.len()
        ));
    }
    let mut merges: Vec<(TokenId, TokenId)> = Vec::with_capacity(count);
    for i in 0..count {
        let off = 8 + i * 8;
        let a = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("sliced"));
        let b = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("sliced"));
        merges.push((a, b));
    }
    // Validate that merge operands refer to already-defined tokens.
    let base = (256 + crate::SPECIALS.len()) as u32;
    for (rank, &(a, b)) in merges.iter().enumerate() {
        let limit = base + rank as u32;
        if a >= limit || b >= limit {
            return Err(format!("merge {rank} references undefined token ({a},{b})"));
        }
    }
    Ok(Tokenizer::from_merges(merges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_bpe, BpeTrainerConfig};

    #[test]
    fn round_trip_preserves_behaviour() {
        let tok = train_bpe(
            &["star dust nebula star dust".to_string()],
            &BpeTrainerConfig {
                vocab_size: 290,
                min_pair_count: 1,
                ensure_pieces: Vec::new(),
            },
        );
        let restored = tokenizer_from_bytes(&tokenizer_to_bytes(&tok)).unwrap();
        for text in ["star dust", "nebula", "unseen words"] {
            assert_eq!(tok.encode(text), restored.encode(text));
        }
    }

    #[test]
    fn rejects_forward_references() {
        // A merge whose operand id is not yet defined must be rejected.
        let mut blob = Vec::new();
        blob.extend_from_slice(&MAGIC.to_le_bytes());
        blob.extend_from_slice(&1u32.to_le_bytes());
        blob.extend_from_slice(&999u32.to_le_bytes());
        blob.extend_from_slice(&0u32.to_le_bytes());
        assert!(tokenizer_from_bytes(&blob).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let tok = train_bpe(
            &["aa bb aa bb".to_string()],
            &BpeTrainerConfig {
                vocab_size: 270,
                min_pair_count: 1,
                ensure_pieces: Vec::new(),
            },
        );
        let blob = tokenizer_to_bytes(&tok);
        assert!(tokenizer_from_bytes(&blob[..blob.len() - 1]).is_err());
    }
}
