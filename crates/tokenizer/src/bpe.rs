//! BPE training.
//!
//! Standard byte-pair-encoding trainer over a word-segmented corpus:
//! count the frequency of every adjacent token pair across all distinct
//! chunks (weighted by chunk frequency), merge the most frequent pair,
//! repeat until the target vocabulary size. Chunk deduplication makes
//! training cost proportional to the number of *distinct* words rather
//! than corpus length.

use crate::{segment, TokenId, Tokenizer, SPECIALS};
use std::collections::HashMap;

/// Configuration for [`train_bpe`].
#[derive(Clone, Debug)]
pub struct BpeTrainerConfig {
    /// Target total vocabulary size (bytes + specials + merges). Values
    /// below `256 + SPECIALS.len()` yield a byte-only tokenizer.
    pub vocab_size: usize,
    /// Stop merging when the best pair occurs fewer than this many times.
    pub min_pair_count: u64,
    /// Pieces guaranteed to exist as single tokens after training, even
    /// if the corpus statistics would not produce them (merges are
    /// appended as needed). Real LLM tokenizers reliably contain the
    /// answer-letter variants (`" A"`, `" B"`, ...) the paper's
    /// next-token method depends on; this reproduces that property at
    /// small vocabulary sizes.
    pub ensure_pieces: Vec<String>,
}

impl Default for BpeTrainerConfig {
    fn default() -> Self {
        BpeTrainerConfig {
            vocab_size: 1024,
            min_pair_count: 2,
            ensure_pieces: Vec::new(),
        }
    }
}

/// Train a byte-level BPE tokenizer on the given documents.
pub fn train_bpe(docs: &[String], config: &BpeTrainerConfig) -> Tokenizer {
    let base = 256 + SPECIALS.len();
    let target_merges = config.vocab_size.saturating_sub(base);

    // Collect distinct chunks with frequencies.
    let mut chunk_freq: HashMap<&str, u64> = HashMap::new();
    for doc in docs {
        for chunk in segment(doc) {
            *chunk_freq.entry(chunk).or_insert(0) += 1;
        }
    }
    // Each chunk as a mutable token sequence.
    let mut chunks: Vec<(Vec<TokenId>, u64)> = chunk_freq
        .into_iter()
        .map(|(s, f)| (s.bytes().map(|b| b as TokenId).collect(), f))
        .collect();
    // Deterministic order regardless of hash iteration.
    chunks.sort_unstable();

    let mut merges: Vec<(TokenId, TokenId)> = Vec::with_capacity(target_merges);

    for merge_idx in 0..target_merges {
        // Count adjacent pairs.
        let mut pair_counts: HashMap<(TokenId, TokenId), u64> = HashMap::new();
        for (ids, freq) in &chunks {
            for w in ids.windows(2) {
                *pair_counts.entry((w[0], w[1])).or_insert(0) += freq;
            }
        }
        // Best pair; ties broken by smallest pair ids for determinism.
        let best = pair_counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(&p, &c)| (p, c));
        let Some((pair, count)) = best else { break };
        if count < config.min_pair_count {
            break;
        }
        let new_id = (base + merge_idx) as TokenId;
        merges.push(pair);
        // Apply the merge to every chunk.
        for (ids, _) in &mut chunks {
            apply_merge(ids, pair, new_id);
        }
    }

    // Append merges for any required pieces the corpus statistics missed.
    let mut tok = Tokenizer::from_merges(merges.clone());
    for piece in &config.ensure_pieces {
        while tok.token_for_str(piece).is_none() {
            let ids = {
                let mut out = Vec::new();
                // Encode as a single chunk so merges can span the piece.
                tok.encode_raw_chunk(piece.as_bytes(), &mut out);
                out
            };
            debug_assert!(ids.len() >= 2, "piece {piece:?} should need a merge");
            merges.push((ids[0], ids[1]));
            tok = Tokenizer::from_merges(merges.clone());
        }
    }
    tok
}

/// Replace every occurrence of `pair` in `ids` with `new_id`, in place.
fn apply_merge(ids: &mut Vec<TokenId>, pair: (TokenId, TokenId), new_id: TokenId) {
    if ids.len() < 2 {
        return;
    }
    let mut write = 0;
    let mut read = 0;
    while read < ids.len() {
        if read + 1 < ids.len() && ids[read] == pair.0 && ids[read + 1] == pair.1 {
            ids[write] = new_id;
            read += 2;
        } else {
            ids[write] = ids[read];
            read += 1;
        }
        write += 1;
    }
    ids.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_merge_basic() {
        let mut ids = vec![1, 2, 3, 1, 2, 1];
        apply_merge(&mut ids, (1, 2), 99);
        assert_eq!(ids, vec![99, 3, 99, 1]);
    }

    #[test]
    fn apply_merge_overlapping_left_to_right() {
        let mut ids = vec![7, 7, 7];
        apply_merge(&mut ids, (7, 7), 42);
        assert_eq!(ids, vec![42, 7]);
    }

    #[test]
    fn apply_merge_empty_and_single() {
        let mut empty: Vec<TokenId> = vec![];
        apply_merge(&mut empty, (1, 2), 9);
        assert!(empty.is_empty());
        let mut single = vec![5];
        apply_merge(&mut single, (1, 2), 9);
        assert_eq!(single, vec![5]);
    }

    #[test]
    fn training_learns_frequent_words() {
        let corpus = "supernova ".repeat(100) + &"dust ".repeat(3);
        let tok = train_bpe(
            &[corpus],
            &BpeTrainerConfig {
                vocab_size: 280,
                min_pair_count: 2,
                ensure_pieces: Vec::new(),
            },
        );
        // "supernova" should encode into very few tokens after merging.
        let n = tok.encode("supernova").len();
        assert!(n <= 3, "supernova encodes to {n} tokens");
    }

    #[test]
    fn training_is_deterministic() {
        let docs = vec!["the star of the galaxy shines on the dust".to_string()];
        let cfg = BpeTrainerConfig {
            vocab_size: 290,
            min_pair_count: 1,
            ensure_pieces: Vec::new(),
        };
        let a = train_bpe(&docs, &cfg);
        let b = train_bpe(&docs, &cfg);
        assert_eq!(a.encode("the star"), b.encode("the star"));
        assert_eq!(a.vocab_size(), b.vocab_size());
    }

    #[test]
    fn min_pair_count_limits_merges() {
        let docs = vec!["abc abc xyz".to_string()];
        let strict = train_bpe(
            &docs,
            &BpeTrainerConfig {
                vocab_size: 400,
                min_pair_count: 1000,
                ensure_pieces: Vec::new(),
            },
        );
        assert_eq!(strict.num_merges(), 0);
    }

    #[test]
    fn ensure_pieces_creates_missing_tokens() {
        // Corpus never contains " A", yet the piece must exist afterwards.
        let tok = train_bpe(
            &["nothing relevant here".to_string()],
            &BpeTrainerConfig {
                vocab_size: 270,
                min_pair_count: 2,
                ensure_pieces: vec![" A".to_string(), " B".to_string(), " D".to_string()],
            },
        );
        for piece in [" A", " B", " D"] {
            assert!(tok.token_for_str(piece).is_some(), "{piece:?} missing");
        }
    }

    #[test]
    fn ensure_pieces_multibyte() {
        let tok = train_bpe(
            &["xyz".to_string()],
            &BpeTrainerConfig {
                vocab_size: 270,
                min_pair_count: 1000,
                ensure_pieces: vec!["Answer:".to_string()],
            },
        );
        assert!(tok.token_for_str("Answer:").is_some());
        // Round trips still hold with the synthetic merges.
        assert_eq!(tok.decode(&tok.encode("Answer: yes")), "Answer: yes");
    }

    #[test]
    fn ensure_pieces_noop_when_already_present() {
        let corpus = "Answer: A ".repeat(100);
        let with = train_bpe(
            std::slice::from_ref(&corpus),
            &BpeTrainerConfig {
                vocab_size: 300,
                min_pair_count: 1,
                ensure_pieces: vec![" A".to_string()],
            },
        );
        let without = train_bpe(
            &[corpus],
            &BpeTrainerConfig {
                vocab_size: 300,
                min_pair_count: 1,
                ensure_pieces: Vec::new(),
            },
        );
        // " A" was already learned from data, so ensure adds nothing.
        assert_eq!(with.num_merges(), without.num_merges());
    }

    #[test]
    fn vocab_below_base_is_byte_only() {
        let docs = vec!["hello".to_string()];
        let tok = train_bpe(
            &docs,
            &BpeTrainerConfig {
                vocab_size: 10,
                min_pair_count: 1,
                ensure_pieces: Vec::new(),
            },
        );
        assert_eq!(tok.num_merges(), 0);
        assert_eq!(tok.encode("hi").len(), 2);
    }
}
