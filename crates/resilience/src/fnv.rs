//! FNV-1a 64-bit — the workspace's content checksum.
//!
//! Chosen over a cryptographic hash deliberately: the threat model is
//! torn writes and bit rot, not adversaries, and FNV-1a is allocation-
//! free, dependency-free and fast enough to run over every checkpoint on
//! every load. Checkpoint trailers (`astro_model::serial`) and run-ledger
//! entries (`astromlab::study`) both store this hash.

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET_BASIS;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let a = vec![0u8; 1024];
        let mut b = a.clone();
        b[512] ^= 0x01;
        assert_ne!(fnv64(&a), fnv64(&b));
    }
}
