//! # astro-resilience — deterministic chaos and durable I/O
//!
//! The study pipeline trains a whole model zoo and fans evaluation across
//! a worker pool; at paper scale that is a multi-day job where a single
//! torn checkpoint or worker panic must not cost the run. This crate is
//! the substrate the rest of the workspace leans on to survive that:
//!
//! * [`fault`] — a **deterministic fault-injection plan**: named sites
//!   (`ckpt.write_truncate`, `pool.worker_panic`, `train.nan_loss`,
//!   `serve.cache_full`, `io.partial_read`, `study.stage_boundary`)
//!   behind zero-cost hooks. Disarmed, a hook is one relaxed atomic
//!   load; armed, a seeded [`fault::FaultPlan`] fires each trigger
//!   exactly once on its configured hit count, so chaos tests are
//!   reproducible bit for bit.
//! * [`durable`] — crash-safe artifact writes (tmp + fsync + rename +
//!   directory fsync) and fault-aware reads.
//! * [`fnv`] — the FNV-1a 64-bit content checksum used by checkpoint
//!   trailers and the run ledger.
//! * [`retry`] — bounded deterministic exponential backoff for
//!   transient failures.
//! * [`journal`] — an fsync'd append-only line journal that tolerates a
//!   torn tail on replay; the run ledger in `astromlab::study` is built
//!   on it.
//!
//! docs/RESILIENCE.md catalogues the fault sites and spells out the
//! determinism-after-resume argument the chaos suite enforces.

pub mod durable;
pub mod fault;
pub mod fnv;
pub mod journal;
pub mod retry;

pub use fault::{FaultPlan, SITES};
pub use fnv::fnv64;
pub use journal::Journal;
pub use retry::RetryPolicy;
