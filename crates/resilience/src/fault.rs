//! Deterministic fault injection behind zero-cost hooks.
//!
//! Production code asks [`should_fault("site")`](should_fault) at each
//! injectable site. With no plan installed the call is a single relaxed
//! atomic load — the eval-throughput bench asserts the disabled hooks
//! cost < 1% of engine throughput. With a [`FaultPlan`] installed, every
//! call increments that site's hit counter under a ranked lock
//! (`resilience.fault_plan`) and fires each matching trigger **exactly
//! once** when the counter reaches its configured value. Plans are data
//! (site name + hit number, optionally derived from a seed), so a chaos
//! run is reproducible: the same plan against the same binary faults at
//! the same instruction.
//!
//! The registry is process-global; tests that install plans must
//! serialise with each other (the chaos suite shares one static mutex).

use astro_prng::Rng;
use astro_telemetry::lockcheck;
use astro_telemetry::{counter, info};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Catalogue of every injectable site wired into the workspace; see
/// docs/RESILIENCE.md for what each one simulates.
pub const SITES: &[&str] = &[
    "ckpt.write_truncate",
    "pool.worker_panic",
    "train.nan_loss",
    "serve.cache_full",
    "io.partial_read",
    "study.stage_boundary",
    "gateway.accept_fail",
    "gateway.slow_client",
    "gateway.queue_poison",
    "pool.pending_poison",
];

/// Panic payload used when a plan injects a panic (the thread pool's
/// `pool.worker_panic` site), so `catch_unwind` handlers and panic-hook
/// output can tell an injected panic from a genuine one.
#[derive(Clone, Copy, Debug)]
pub struct FaultPanic(pub &'static str);

/// A deterministic set of one-shot triggers: `(site, fire_on_hit)`
/// pairs. Each trigger fires the first time its site's hit counter
/// reaches `fire_on_hit`, then never again (until a new plan is
/// installed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    triggers: Vec<(String, u64)>,
}

impl FaultPlan {
    /// An empty plan (installing it arms the hit counters but fires
    /// nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single trigger: fault `site` on its
    /// `fire_on_hit`-th hit (1-based; 0 is clamped to 1).
    pub fn single(site: &str, fire_on_hit: u64) -> Self {
        FaultPlan::new().and(site, fire_on_hit)
    }

    /// Add another one-shot trigger to the plan.
    #[must_use]
    pub fn and(mut self, site: &str, fire_on_hit: u64) -> Self {
        self.triggers.push((site.to_string(), fire_on_hit.max(1)));
        self
    }

    /// A seeded single-trigger plan: the site and hit number are drawn
    /// from `seed`, so a sweep over seeds explores the fault space
    /// reproducibly.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed).substream("fault-plan");
        let site = SITES[rng.index(SITES.len())];
        let hit = 1 + rng.below(8);
        FaultPlan::single(site, hit)
    }

    /// The `(site, fire_on_hit)` triggers in insertion order.
    pub fn triggers(&self) -> &[(String, u64)] {
        &self.triggers
    }
}

struct ActiveTrigger {
    site: String,
    fire_on_hit: u64,
    fired: bool,
}

struct Armory {
    triggers: Vec<ActiveTrigger>,
    hits: HashMap<String, u64>,
}

/// Fast-path flag: false ⇒ no plan installed ⇒ `should_fault` returns
/// without touching the mutex.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Armory>> = Mutex::new(None);

fn lock_state() -> (lockcheck::LockToken, MutexGuard<'static, Option<Armory>>) {
    let token = lockcheck::acquire("resilience.fault_plan");
    // Poisoning cannot corrupt the armory (all writes are field stores);
    // recover rather than propagate a panic out of the fault substrate.
    let guard = STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    (token, guard)
}

/// Install `plan`, arming the hooks and resetting all hit counters.
/// Replaces any previously installed plan.
pub fn install(plan: FaultPlan) {
    let summary = format!("{:?}", plan.triggers());
    {
        let (_token, mut state) = lock_state();
        *state = Some(Armory {
            triggers: plan
                .triggers
                .into_iter()
                .map(|(site, fire_on_hit)| ActiveTrigger { site, fire_on_hit, fired: false })
                .collect(),
            hits: HashMap::new(),
        });
        ARMED.store(true, Ordering::SeqCst);
    }
    info!("fault plan installed: {summary}");
}

/// Remove the installed plan and disarm every hook.
pub fn clear() {
    let (_token, mut state) = lock_state();
    *state = None;
    ARMED.store(false, Ordering::SeqCst);
}

/// The hook: returns true exactly when an installed trigger for `site`
/// fires on this hit. Disarmed cost is one relaxed atomic load.
#[inline]
pub fn should_fault(site: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    should_fault_armed(site)
}

#[cold]
fn should_fault_armed(site: &str) -> bool {
    let (_token, mut state) = lock_state();
    let Some(armory) = state.as_mut() else {
        return false;
    };
    let entry = armory.hits.entry(site.to_string()).or_insert(0);
    *entry += 1;
    let hit = *entry;
    for trigger in &mut armory.triggers {
        if !trigger.fired && trigger.site == site && hit == trigger.fire_on_hit {
            trigger.fired = true;
            counter("fault.injected").inc();
            info!("fault injected: {site} (hit {hit})");
            return true;
        }
    }
    false
}

/// True when an installed trigger for `site` has already fired
/// (test/assertion hook).
pub fn fired(site: &str) -> bool {
    let (_token, state) = lock_state();
    state
        .as_ref()
        .is_some_and(|a| a.triggers.iter().any(|t| t.fired && t.site == site))
}

/// How many times `site` has been hit since the current plan was
/// installed (0 when disarmed; test/assertion hook).
pub fn hits(site: &str) -> u64 {
    let (_token, state) = lock_state();
    state
        .as_ref()
        .and_then(|a| a.hits.get(site).copied())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialise the tests in this module.
    static GATE: Mutex<()> = Mutex::new(());

    fn locked() -> (lockcheck::LockToken, MutexGuard<'static, ()>) {
        let token = lockcheck::acquire("test.fault_gate");
        let guard = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        (token, guard)
    }

    #[test]
    fn disarmed_hook_never_fires() {
        let _g = locked();
        clear();
        for _ in 0..100 {
            assert!(!should_fault("pool.worker_panic"));
        }
        assert_eq!(hits("pool.worker_panic"), 0);
    }

    #[test]
    fn fires_exactly_once_on_the_configured_hit() {
        let _g = locked();
        install(FaultPlan::single("train.nan_loss", 3));
        let fires: Vec<bool> = (0..6).map(|_| should_fault("train.nan_loss")).collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        assert!(fired("train.nan_loss"));
        assert_eq!(hits("train.nan_loss"), 6);
        clear();
        assert!(!should_fault("train.nan_loss"));
    }

    #[test]
    fn sites_are_independent_and_multi_trigger_plans_work() {
        let _g = locked();
        install(FaultPlan::single("io.partial_read", 1).and("serve.cache_full", 2));
        assert!(!should_fault("serve.cache_full"));
        assert!(should_fault("io.partial_read"));
        assert!(should_fault("serve.cache_full"));
        assert!(!should_fault("io.partial_read"), "one-shot: must not re-fire");
        clear();
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_catalogue() {
        let _g = locked();
        for seed in 0..32 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            let (site, hit) = &a.triggers()[0];
            assert!(SITES.contains(&site.as_str()), "{site}");
            assert!((1..=8).contains(hit));
        }
    }

    #[test]
    fn reinstall_resets_counters() {
        let _g = locked();
        install(FaultPlan::single("ckpt.write_truncate", 2));
        assert!(!should_fault("ckpt.write_truncate"));
        install(FaultPlan::single("ckpt.write_truncate", 2));
        assert!(!should_fault("ckpt.write_truncate"), "counter must reset on reinstall");
        assert!(should_fault("ckpt.write_truncate"));
        clear();
    }
}
