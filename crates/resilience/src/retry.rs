//! Bounded retry with deterministic exponential backoff.
//!
//! Used by `run_study` around evaluation jobs: a transient failure (a
//! worker panic absorbed as a per-job error, an injected fault that has
//! since burnt out) is retried a fixed number of times with doubling
//! delays. The delays are pure functions of the attempt number — no
//! clock, no jitter — so retried runs stay reproducible.

use astro_telemetry::{counter, info};
use std::time::Duration;

/// Retry budget: at most `max_attempts` tries, sleeping
/// `base_delay_ms * 2^(attempt-1)` (capped at `max_delay_ms`) between
/// them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (values below 1 behave as 1).
    pub max_attempts: u32,
    /// Delay after the first failure, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl RetryPolicy {
    /// The study pipeline's policy for transient eval-job failures.
    pub fn evals() -> Self {
        RetryPolicy { max_attempts: 3, base_delay_ms: 10, max_delay_ms: 80 }
    }

    /// No retries: a single attempt.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, base_delay_ms: 0, max_delay_ms: 0 }
    }

    /// The backoff delay after failed attempt number `attempt` (1-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(16);
        (self.base_delay_ms << doublings).min(self.max_delay_ms)
    }

    /// Run `op` (which receives the 1-based attempt number) until it
    /// succeeds or the budget is exhausted; returns the last error.
    pub fn run<T, E: std::fmt::Display>(
        &self,
        label: &str,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        for attempt in 1..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    counter("retry.attempt_failures").inc();
                    let delay = self.delay_ms(attempt);
                    info!("{label}: attempt {attempt}/{attempts} failed ({e}); retrying in {delay}ms");
                    std::thread::sleep(Duration::from_millis(delay));
                }
            }
        }
        match op(attempts) {
            Ok(v) => Ok(v),
            Err(e) => {
                counter("retry.exhausted").inc();
                info!("{label}: attempt {attempts}/{attempts} failed ({e}); budget exhausted");
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy { max_attempts: 3, base_delay_ms: 0, max_delay_ms: 0 };
        let mut calls = 0;
        let out = policy.run("t", |attempt| {
            calls += 1;
            if attempt < 3 { Err("transient") } else { Ok(attempt) }
        });
        assert_eq!(out, Ok(3));
        assert_eq!(calls, 3);
    }

    #[test]
    fn exhausts_budget_and_returns_last_error() {
        let policy = RetryPolicy { max_attempts: 2, base_delay_ms: 0, max_delay_ms: 0 };
        let out: Result<(), String> = policy.run("t", |a| Err(format!("fail {a}")));
        assert_eq!(out, Err("fail 2".to_string()));
    }

    #[test]
    fn single_attempt_policy_never_retries() {
        let mut calls = 0;
        let out: Result<(), &str> = RetryPolicy::none().run("t", |_| {
            calls += 1;
            Err("nope")
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy { max_attempts: 6, base_delay_ms: 10, max_delay_ms: 35 };
        assert_eq!(p.delay_ms(1), 10);
        assert_eq!(p.delay_ms(2), 20);
        assert_eq!(p.delay_ms(3), 35);
        assert_eq!(p.delay_ms(5), 35);
    }
}
