//! Fsync'd append-only line journal.
//!
//! Each [`append`](Journal::append) opens the file in append mode,
//! writes `line + '\n'` and fsyncs before returning, so an entry that
//! `append` acknowledged survives a crash. Replay via
//! [`lines`](Journal::lines) tolerates the one partial state a crash can
//! leave: a torn final line (no trailing newline), which is dropped —
//! the corresponding stage simply re-runs. Content is treated as bytes
//! and decoded lossily, so a torn multi-byte sequence cannot poison
//! replay either.

use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Handle to an append-only journal file (which need not exist yet).
#[derive(Clone, Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal stored at `path`.
    pub fn at(path: &Path) -> Self {
        Journal { path: path.to_path_buf() }
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably append one line. `line` must not contain `'\n'` (that
    /// would forge extra entries); such input is rejected as
    /// `InvalidInput`.
    pub fn append(&self, line: &str) -> io::Result<()> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal lines must not contain newlines",
            ));
        }
        let mut f = OpenOptions::new().create(true).append(true).open(&self.path)?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()
    }

    /// Replay all durably committed lines. A missing file is an empty
    /// journal; a torn trailing line (crash mid-append) is dropped.
    pub fn lines(&self) -> io::Result<Vec<String>> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut lines: Vec<String> = text.split('\n').map(str::to_string).collect();
        // split always yields a final element: empty if the file ended
        // with '\n' (fully committed), the torn tail otherwise. Drop it
        // either way.
        lines.pop();
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("astro_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn missing_file_is_empty_journal() {
        let j = Journal::at(&tmp("missing"));
        assert_eq!(j.lines().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn appends_replay_in_order() {
        let p = tmp("order");
        let j = Journal::at(&p);
        j.append("one").unwrap();
        j.append("two").unwrap();
        j.append("three").unwrap();
        assert_eq!(j.lines().unwrap(), ["one", "two", "three"]);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let p = tmp("torn");
        let j = Journal::at(&p);
        j.append("committed").unwrap();
        // Simulate a crash mid-append: bytes without the trailing newline.
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(b"{\"stage\":\"half").unwrap();
        drop(f);
        assert_eq!(j.lines().unwrap(), ["committed"]);
        // The journal stays appendable afterwards; the torn fragment is
        // merged into the next line and dropped by the caller's parser,
        // or — as here — the caller starts a fresh journal. Either way
        // replay never panics.
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn newline_in_line_is_rejected() {
        let j = Journal::at(&tmp("reject"));
        assert!(j.append("a\nb").is_err());
    }
}
