//! Crash-safe file writes and fault-aware reads.
//!
//! [`write_atomic`] follows the classic durable-write protocol: write the
//! payload to a sibling temp file, `fsync` it, `rename` over the final
//! path (atomic on POSIX within a filesystem), then `fsync` the parent
//! directory so the rename itself survives power loss. A reader therefore
//! observes either the old complete file or the new complete file — never
//! a torn one.
//!
//! Two fault sites live here:
//!
//! * `ckpt.write_truncate` — simulates a crash mid-write under a
//!   *non*-atomic protocol: half the payload lands at the final path and
//!   the call errors, exercising the caller's torn-artifact detection.
//! * `io.partial_read` — [`read_all`] returns only half the file,
//!   exercising checksum/length validation on the load path.

use crate::fault;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `bytes` to `path` atomically (tmp + fsync + rename + directory
/// fsync). On success a concurrent or post-crash reader sees either the
/// previous contents or `bytes`, never a prefix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if fault::should_fault("ckpt.write_truncate") {
        // Injected crash mid-write: a torn file at the final path, as a
        // non-atomic writer would leave behind.
        fs::write(path, &bytes[..bytes.len() / 2])?;
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "injected fault: ckpt.write_truncate (simulated crash mid-write)",
        ));
    }
    let tmp = tmp_sibling(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory fsync is advisory on some platforms; opening a
        // directory read-only can fail (e.g. on Windows) — best effort.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read the whole file, subject to the `io.partial_read` fault (which
/// truncates the returned bytes to half, simulating a short read of a
/// torn artifact).
pub fn read_all(path: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = fs::read(path)?;
    if fault::should_fault("io.partial_read") {
        bytes.truncate(bytes.len() / 2);
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("astro_durable_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trip_and_overwrite() {
        let d = tmpdir("rt");
        let p = d.join("artifact.bin");
        write_atomic(&p, b"first contents").unwrap();
        assert_eq!(read_all(&p).unwrap(), b"first contents");
        write_atomic(&p, b"second").unwrap();
        assert_eq!(read_all(&p).unwrap(), b"second");
        // No temp file left behind.
        assert!(!tmp_sibling(&p).exists());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn injected_truncate_leaves_torn_file_and_errors() {
        let d = tmpdir("torn");
        let p = d.join("artifact.bin");
        fault::install(FaultPlan::single("ckpt.write_truncate", 1));
        let err = write_atomic(&p, &[7u8; 100]).expect_err("injected fault must error");
        fault::clear();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(fs::read(&p).unwrap().len(), 50, "torn artifact must be half-written");
        // A clean rewrite repairs it.
        write_atomic(&p, &[7u8; 100]).unwrap();
        assert_eq!(read_all(&p).unwrap().len(), 100);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn injected_partial_read_halves_the_bytes() {
        let d = tmpdir("short");
        let p = d.join("artifact.bin");
        write_atomic(&p, &[9u8; 64]).unwrap();
        fault::install(FaultPlan::single("io.partial_read", 1));
        assert_eq!(read_all(&p).unwrap().len(), 32);
        fault::clear();
        assert_eq!(read_all(&p).unwrap().len(), 64);
        let _ = fs::remove_dir_all(&d);
    }
}
