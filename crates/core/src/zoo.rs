//! The model zoo: the eight models of Table I.

use astro_model::Tier;
use astro_world::CorpusRecipe;

/// Every model evaluated in the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// Native LLaMA-2-7B stand-in.
    Llama2_7b,
    /// AstroLLaMA-2-7B-AIC (ref [28]).
    AstroLlama2_7bAic,
    /// AstroLLaMA-2-7B-Abstract (ref [27]; no instruct release → no
    /// instruct-mode scores).
    AstroLlama2_7bAbstract,
    /// Native LLaMA-3-8B stand-in.
    Llama3_8b,
    /// AstroLLaMA-3-8B-AIC (this study).
    AstroLlama3_8bAic,
    /// AstroLLaMA-3-8B-Summary (this study).
    AstroLlama3_8bSummary,
    /// Native LLaMA-2-70B stand-in.
    Llama2_70b,
    /// AstroLLaMA-2-70B-AIC (this study's headline model).
    AstroLlama2_70bAic,
}

impl ModelId {
    /// All models in Table I row order.
    pub fn all() -> [ModelId; 8] {
        [
            ModelId::Llama2_7b,
            ModelId::AstroLlama2_7bAic,
            ModelId::AstroLlama2_7bAbstract,
            ModelId::Llama3_8b,
            ModelId::AstroLlama3_8bAic,
            ModelId::AstroLlama3_8bSummary,
            ModelId::Llama2_70b,
            ModelId::AstroLlama2_70bAic,
        ]
    }

    /// Display name (with the `(sim)` marker making the substitution
    /// explicit).
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Llama2_7b => "LLaMA-2-7B (sim)",
            ModelId::AstroLlama2_7bAic => "AstroLLaMA-2-7B-AIC (sim)",
            ModelId::AstroLlama2_7bAbstract => "AstroLLaMA-2-7B-Abstract (sim)",
            ModelId::Llama3_8b => "LLaMA-3-8B (sim)",
            ModelId::AstroLlama3_8bAic => "AstroLLaMA-3-8B-AIC (sim)",
            ModelId::AstroLlama3_8bSummary => "AstroLLaMA-3-8B-Summary (sim)",
            ModelId::Llama2_70b => "LLaMA-2-70B (sim)",
            ModelId::AstroLlama2_70bAic => "AstroLLaMA-2-70B-AIC (sim)",
        }
    }

    /// Table I series header.
    pub fn series(self) -> &'static str {
        match self {
            ModelId::Llama2_7b => "LLaMA-2 Series (7B Parameters)",
            ModelId::AstroLlama2_7bAic | ModelId::AstroLlama2_7bAbstract => {
                "AstroLLaMA-2 Series (7B Parameters)"
            }
            ModelId::Llama3_8b => "LLaMA-3 Series (8B Parameters)",
            ModelId::AstroLlama3_8bAic | ModelId::AstroLlama3_8bSummary => {
                "AstroLLaMA-3 Series (8B Parameters)"
            }
            ModelId::Llama2_70b => "LLaMA-2 Series (70B Parameters)",
            ModelId::AstroLlama2_70bAic => "AstroLLaMA-2 Series (70B Parameters)",
        }
    }

    /// Source column of Table I.
    pub fn source(self) -> &'static str {
        match self {
            ModelId::Llama2_7b | ModelId::Llama3_8b | ModelId::Llama2_70b => "Meta",
            ModelId::AstroLlama2_7bAic | ModelId::AstroLlama2_7bAbstract => "uTBD",
            _ => "AstroMLab",
        }
    }

    /// Capacity tier.
    pub fn tier(self) -> Tier {
        match self {
            ModelId::Llama2_7b | ModelId::AstroLlama2_7bAic | ModelId::AstroLlama2_7bAbstract => {
                Tier::S7b
            }
            ModelId::Llama3_8b | ModelId::AstroLlama3_8bAic | ModelId::AstroLlama3_8bSummary => {
                Tier::S8b
            }
            ModelId::Llama2_70b | ModelId::AstroLlama2_70bAic => Tier::S70b,
        }
    }

    /// CPT recipe (`None` for the natives).
    pub fn recipe(self) -> Option<CorpusRecipe> {
        match self {
            ModelId::AstroLlama2_7bAic
            | ModelId::AstroLlama3_8bAic
            | ModelId::AstroLlama2_70bAic => Some(CorpusRecipe::Aic),
            ModelId::AstroLlama2_7bAbstract => Some(CorpusRecipe::Abstract),
            ModelId::AstroLlama3_8bSummary => Some(CorpusRecipe::Summary),
            _ => None,
        }
    }

    /// The native baseline of this model's series.
    pub fn baseline(self) -> ModelId {
        match self.tier() {
            Tier::S7b => ModelId::Llama2_7b,
            Tier::S8b => ModelId::Llama3_8b,
            Tier::S70b => ModelId::Llama2_70b,
        }
    }

    /// Whether the paper reports instruct-mode scores for this model
    /// (false only for AstroLLaMA-2-7B-Abstract).
    pub fn has_instruct(self) -> bool {
        self != ModelId::AstroLlama2_7bAbstract
    }

    /// The paper's measured scores `[full instruct, token instruct, token
    /// base]` (percent), for shape comparison in EXPERIMENTS.md.
    pub fn paper_scores(self) -> [Option<f64>; 3] {
        match self {
            ModelId::Llama2_7b => [Some(50.3), Some(62.6), Some(51.3)],
            ModelId::AstroLlama2_7bAic => [Some(41.4), Some(47.2), Some(44.3)],
            ModelId::AstroLlama2_7bAbstract => [None, None, Some(43.5)],
            ModelId::Llama3_8b => [Some(72.9), Some(73.6), Some(72.0)],
            ModelId::AstroLlama3_8bAic => [Some(61.8), Some(68.4), Some(71.9)],
            ModelId::AstroLlama3_8bSummary => [Some(69.0), Some(70.9), Some(72.3)],
            ModelId::Llama2_70b => [Some(70.7), Some(71.4), Some(73.9)],
            ModelId::AstroLlama2_70bAic => [Some(64.7), Some(75.4), Some(76.0)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_models_in_order() {
        let all = ModelId::all();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], ModelId::Llama2_7b);
        assert_eq!(all[7], ModelId::AstroLlama2_70bAic);
    }

    #[test]
    fn natives_have_no_recipe_and_are_own_series_baseline() {
        for id in [ModelId::Llama2_7b, ModelId::Llama3_8b, ModelId::Llama2_70b] {
            assert!(id.recipe().is_none());
            assert_eq!(id.baseline(), id);
            assert_eq!(id.source(), "Meta");
        }
    }

    #[test]
    fn cpt_models_point_to_their_native() {
        assert_eq!(ModelId::AstroLlama2_70bAic.baseline(), ModelId::Llama2_70b);
        assert_eq!(ModelId::AstroLlama3_8bSummary.baseline(), ModelId::Llama3_8b);
        assert_eq!(ModelId::AstroLlama2_7bAbstract.baseline(), ModelId::Llama2_7b);
    }

    #[test]
    fn abstract_model_has_no_instruct() {
        assert!(!ModelId::AstroLlama2_7bAbstract.has_instruct());
        assert!(ModelId::AstroLlama2_70bAic.has_instruct());
    }

    #[test]
    fn paper_scores_match_table1_headlines() {
        let s = ModelId::AstroLlama2_70bAic.paper_scores();
        assert_eq!(s[2], Some(76.0));
        assert_eq!(ModelId::Llama2_70b.paper_scores()[2], Some(73.9));
        assert_eq!(ModelId::AstroLlama2_7bAbstract.paper_scores()[0], None);
    }

    #[test]
    fn recipes_match_model_names() {
        use astro_world::CorpusRecipe::*;
        assert_eq!(ModelId::AstroLlama2_7bAbstract.recipe(), Some(Abstract));
        assert_eq!(ModelId::AstroLlama3_8bSummary.recipe(), Some(Summary));
        assert_eq!(ModelId::AstroLlama2_70bAic.recipe(), Some(Aic));
    }

    #[test]
    fn names_and_series_are_unique() {
        let names: std::collections::HashSet<&str> =
            ModelId::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 8);
    }
}
