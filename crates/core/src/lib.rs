//! # AstroMLab 2 reproduction — top-level API
//!
//! This crate ties the substrates together into the paper's full pipeline:
//!
//! 1. generate the synthetic astronomy world and its MCQ benchmark;
//! 2. train a BPE tokenizer and pretrain three *native* models (the
//!    LLaMA-2-7B / LLaMA-3-8B / LLaMA-2-70B stand-ins) on the general
//!    corpus;
//! 3. continually pretrain (CPT) the AstroLLaMA variants on the
//!    Abstract / AIC / Summary recipes;
//! 4. supervised fine-tune (SFT) instruct versions on the paper's
//!    conversation mixture;
//! 5. evaluate every model under the three benchmarking methods and
//!    render Table I / Figure 1.
//!
//! ```no_run
//! use astromlab::{Study, StudyConfig};
//!
//! # fn main() -> Result<(), astromlab::study::StudyError> {
//! let study = Study::prepare(StudyConfig::fast(42))?;
//! let result = study.run_table1()?;
//! println!("{}", result.table1);
//!
//! // Or crash-safe: checkpoints + a run ledger under ./run, resumable
//! // after an interruption with bitwise-identical scores.
//! let resumable = study.run_study(std::path::Path::new("run"))?;
//! assert_eq!(result.figure1_csv, resumable.figure1_csv);
//! # Ok(())
//! # }
//! ```
//!
//! The [`ablations`] module adds the design-choice experiments indexed in
//! DESIGN.md (data quality, SFT mixture, capacity sweep, eval-method
//! options).

pub mod ablations;
pub mod presets;
pub mod study;
pub mod zoo;

pub use presets::StudyConfig;
pub use study::{ModelArtifacts, Study, StudyError, StudyResult};
pub use zoo::ModelId;

// Re-export the substrate crates so downstream users need one dependency.
pub use astro_eval as eval;
pub use astro_mcq as mcq;
pub use astro_model as model;
pub use astro_parallel as parallel;
pub use astro_prng as prng;
pub use astro_serve as serve;
pub use astro_tensor as tensor;
pub use astro_tokenizer as tokenizer;
pub use astro_train as train;
pub use astro_world as world;
