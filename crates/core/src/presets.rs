//! Study configuration and presets.
//!
//! Three presets trade fidelity for wall-clock on a single CPU core:
//!
//! * [`StudyConfig::smoke`] — seconds; CI and unit tests;
//! * [`StudyConfig::fast`] — minutes; the default for the bench binaries;
//! * [`StudyConfig::full`] — tens of minutes; the setting recorded in
//!   EXPERIMENTS.md.
//!
//! Learning rates mirror the paper's *relations* (SFT ≪ CPT ≤ pretrain;
//! paper: CPT 2e-5, SFT 3e-7) rescaled to our model scale.

use astro_serve::EngineConfig;
use astro_world::WorldConfig;

/// All knobs of one end-to-end study.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Synthetic world parameters.
    pub world: WorldConfig,
    /// Target BPE vocabulary size.
    pub vocab_size: usize,
    /// Number of general-corpus documents for native pretraining.
    pub general_docs: usize,
    /// Native pretraining steps per tier `[S7b, S8b, S70b]`. The 8B
    /// stand-in gets the most tokens — LLaMA-3's better pretraining is
    /// what lets the real 8B rival the older 70B.
    pub native_steps: [u64; 3],
    /// CPT optimizer steps (per model).
    pub cpt_steps: u64,
    /// SFT optimizer steps (per model).
    pub sft_steps: u64,
    /// Peak learning rates.
    pub native_lr: f32,
    /// CPT peak LR (paper: 2e-5 at 7–70B scale).
    pub cpt_lr: f32,
    /// SFT peak LR (paper: 3e-7 — far below CPT).
    pub sft_lr: f32,
    /// Rows per micro-batch.
    pub batch: usize,
    /// Training window length.
    pub seq: usize,
    /// Simulated data-parallel devices.
    pub devices: usize,
    /// Scale of the SFT mixture relative to the paper's 31k conversations.
    pub sft_scale: f64,
    /// Fraction of astro SFT conversations demonstrating the JSON MCQ
    /// format.
    pub sft_json_fraction: f64,
    /// Questions evaluated per model/method (the paper runs all 4,417
    /// scored + 8 exemplars; presets subsample).
    pub n_eval_questions: usize,
    /// Use the verbose Appendix-B prompt in the full-instruct method.
    pub verbose_prompt: bool,
    /// Evaluation execution strategy. Presets default to
    /// [`EngineConfig::pooled`] — safe because the engine is bit-identical
    /// to the serial path for every setting (`tests/eval_parity.rs`).
    pub eval_engine: EngineConfig,
}

impl StudyConfig {
    /// Seconds-scale preset for tests.
    pub fn smoke(seed: u64) -> Self {
        StudyConfig {
            seed,
            world: WorldConfig {
                n_articles: 40,
                n_entities: 30,
                n_general_entities: 24,
                facts_per_article: 6,
                ..WorldConfig::default()
            },
            vocab_size: 420,
            general_docs: 400,
            native_steps: [30, 40, 30],
            cpt_steps: 15,
            sft_steps: 10,
            native_lr: 2e-3,
            cpt_lr: 2e-4,
            sft_lr: 5e-5,
            batch: 4,
            seq: 64,
            devices: 1,
            sft_scale: 0.004,
            sft_json_fraction: 0.35,
            n_eval_questions: 24,
            verbose_prompt: false,
            eval_engine: EngineConfig::pooled(),
        }
    }

    /// Sub-second preset for the chaos suite: the smallest configuration
    /// that still exercises every stage of [`crate::Study::run_study`]
    /// (all tiers, all recipes, all three eval methods), so
    /// kill-at-every-ledger-boundary sweeps stay affordable.
    pub fn micro(seed: u64) -> Self {
        StudyConfig {
            native_steps: [2, 2, 2],
            cpt_steps: 2,
            sft_steps: 2,
            n_eval_questions: 6,
            ..StudyConfig::smoke(seed)
        }
    }

    /// Minutes-scale preset (default for the bench binaries).
    pub fn fast(seed: u64) -> Self {
        StudyConfig {
            seed,
            world: WorldConfig {
                n_articles: 885,
                n_entities: 60,
                n_general_entities: 50,
                facts_per_article: 8,
                ..WorldConfig::default()
            },
            vocab_size: 512,
            general_docs: 8000,
            native_steps: [600, 1000, 700],
            cpt_steps: 200,
            sft_steps: 60,
            native_lr: 2e-3,
            // The paper's CPT LR (2e-5) is ~1/15 of a typical pretraining
            // peak; keep the same relation at our scale.
            cpt_lr: 2e-4,
            sft_lr: 5e-5,
            // The two-shot evaluation prompt is ~225 tokens; train at the
            // same context length so no unseen relative distances appear
            // at eval time.
            batch: 4,
            seq: 224,
            devices: 1,
            sft_scale: 0.02,
            sft_json_fraction: 0.35,
            n_eval_questions: 120,
            verbose_prompt: false,
            eval_engine: EngineConfig::pooled(),
        }
    }

    /// The highest-fidelity preset we can afford on one core; used for the
    /// numbers recorded in EXPERIMENTS.md.
    pub fn full(seed: u64) -> Self {
        StudyConfig {
            general_docs: 9000,
            native_steps: [1500, 2600, 2000],
            cpt_steps: 500,
            sft_steps: 160,
            sft_scale: 0.05,
            n_eval_questions: 400,
            ..StudyConfig::fast(seed)
        }
    }

    /// Cheap structural validation, run by [`crate::Study::prepare`]
    /// before any compute is spent. The static preflight in `astro-audit`
    /// mirrors these rules (ids `preflight.*`) plus the full shape/dtype
    /// graph checks; this in-process copy catches hand-built configs that
    /// never went through the audit binary.
    pub fn validate(&self) -> Result<(), String> {
        let floor = 256 + astro_tokenizer::SPECIALS.len();
        if self.vocab_size < floor {
            return Err(format!(
                "vocab_size {} is below the structural floor {floor} \
                 (256 byte tokens + {} specials)",
                self.vocab_size,
                astro_tokenizer::SPECIALS.len()
            ));
        }
        if self.batch == 0 || self.seq == 0 || self.devices == 0 {
            return Err(format!(
                "batch {}, seq {} and devices {} must all be nonzero",
                self.batch, self.seq, self.devices
            ));
        }
        if self.native_steps.contains(&0) || self.cpt_steps == 0 || self.sft_steps == 0
        {
            return Err(format!(
                "step counts must be nonzero: native {:?}, cpt {}, sft {}",
                self.native_steps, self.cpt_steps, self.sft_steps
            ));
        }
        for (name, lr) in
            [("native_lr", self.native_lr), ("cpt_lr", self.cpt_lr), ("sft_lr", self.sft_lr)]
        {
            if !(lr > 0.0 && lr.is_finite()) {
                return Err(format!("{name} must be positive and finite, got {lr}"));
            }
        }
        if !(0.0..=1.0).contains(&self.sft_json_fraction) {
            return Err(format!(
                "sft_json_fraction {} outside [0, 1]",
                self.sft_json_fraction
            ));
        }
        if !(self.sft_scale > 0.0 && self.sft_scale.is_finite()) {
            return Err(format!("sft_scale must be positive and finite, got {}", self.sft_scale));
        }
        if self.n_eval_questions == 0 {
            return Err("n_eval_questions must be nonzero".to_string());
        }
        self.eval_engine
            .validate()
            .map_err(|e| format!("eval_engine: {e}"))?;
        Ok(())
    }

    /// Tokens one native pretraining run processes for tier index `i`.
    pub fn native_tokens(&self, tier_idx: usize) -> u64 {
        self.native_steps[tier_idx] * (self.batch * self.seq * self.devices) as u64
    }

    /// Tokens per CPT run.
    pub fn cpt_tokens(&self) -> u64 {
        self.cpt_steps * (self.batch * self.seq * self.devices) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        let m = StudyConfig::micro(1);
        let s = StudyConfig::smoke(1);
        let f = StudyConfig::fast(1);
        let u = StudyConfig::full(1);
        assert!(m.cpt_steps < s.cpt_steps);
        assert!(s.cpt_steps < f.cpt_steps && f.cpt_steps < u.cpt_steps);
        assert!(m.n_eval_questions < s.n_eval_questions);
        assert!(s.n_eval_questions < f.n_eval_questions);
        assert!(f.n_eval_questions < u.n_eval_questions);
    }

    #[test]
    fn all_presets_validate() {
        for cfg in [
            StudyConfig::micro(3),
            StudyConfig::smoke(3),
            StudyConfig::fast(3),
            StudyConfig::full(3),
        ] {
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_bad_eval_engine() {
        let mut cfg = StudyConfig::micro(3);
        cfg.eval_engine.parallelism = astro_serve::MAX_PARALLELISM + 1;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("eval_engine"), "{err}");
    }

    #[test]
    fn lr_relations_follow_paper() {
        for cfg in [StudyConfig::smoke(0), StudyConfig::fast(0), StudyConfig::full(0)] {
            assert!(cfg.sft_lr < cfg.cpt_lr, "SFT LR must be far below CPT");
            assert!(cfg.cpt_lr <= cfg.native_lr);
        }
    }

    #[test]
    fn eight_b_gets_most_pretraining() {
        let f = StudyConfig::fast(0);
        assert!(f.native_steps[1] > f.native_steps[0]);
        assert!(f.native_steps[1] > f.native_steps[2]);
    }

    #[test]
    fn token_accounting() {
        let f = StudyConfig::fast(0);
        assert_eq!(f.cpt_tokens(), f.cpt_steps * (f.batch * f.seq) as u64);
        assert_eq!(f.native_tokens(1), f.native_steps[1] * (f.batch * f.seq) as u64);
    }

    #[test]
    fn fast_preset_keeps_paper_article_count() {
        assert_eq!(StudyConfig::fast(0).world.n_articles, 885);
    }
}
