//! Design-choice ablations (DESIGN.md experiments A1–A4).
//!
//! Each ablation reuses a prepared [`Study`] so the world, tokenizer and
//! benchmark stay fixed while one factor varies.

use crate::study::{Study, StudyError};
use crate::zoo::ModelId;
use astro_eval::{evaluate, EvalModel, InstructEvalConfig, Method, TokenEvalConfig};
use astro_model::Tier;
use astro_prng::Rng;
use astro_train::{pack_documents, render_conversations, train_lm, BatchSource};
use astro_world::{
    clean_ocr, noisify, render_article, sft_dataset, CorpusRecipe, Document, DocumentKind,
    NoiseConfig, SftMixtureConfig,
};

/// One ablation measurement.
#[derive(Clone, Debug)]
pub struct AblationPoint {
    /// Human-readable setting label.
    pub label: String,
    /// Token-base score (%) unless noted otherwise by the ablation.
    pub score: f64,
    /// Secondary score (%), meaning depends on the ablation (e.g. full
    /// instruct); NaN when unused.
    pub secondary: f64,
}

/// A1 — CPT data quality: the same AIC content passed through different
/// noise channels (clean, LaTeX artefacts, heavy OCR, heavy OCR + Nougat
/// cleaning), each used to CPT the 8B-class native. Probes the paper's
/// claim that "high-quality, information-dense tokens used in CPT" are
/// critical.
/// A text-corruption channel applied to CPT documents.
type NoiseChannel = Box<dyn Fn(&str, &mut Rng) -> String>;

/// A1: CPT on progressively noisier corpora (Table 3's data-quality axis).
pub fn ablation_data_quality(study: &Study) -> Result<Vec<AblationPoint>, StudyError> {
    let (native, _) = study.pretrain_native(Tier::S8b)?;
    let channels: [(&str, NoiseChannel); 4] = [
        ("clean", Box::new(|s: &str, _: &mut Rng| s.to_string())),
        (
            "latex-artifacts",
            Box::new(|s: &str, rng: &mut Rng| noisify(s, &NoiseConfig::latex_artifacts(), rng)),
        ),
        (
            "heavy-ocr",
            Box::new(|s: &str, rng: &mut Rng| noisify(s, &NoiseConfig::heavy_ocr(), rng)),
        ),
        (
            "heavy-ocr+nougat",
            Box::new(|s: &str, rng: &mut Rng| {
                clean_ocr(&noisify(s, &NoiseConfig::heavy_ocr(), rng))
            }),
        ),
    ];
    let mut out = Vec::new();
    for (label, channel) in channels {
        let mut rng = Rng::seed_from(study.config.seed).substream(&format!("abl-dq-{label}"));
        let docs: Vec<Document> = study
            .world
            .articles
            .iter()
            .map(|a| {
                let clean = render_article(&study.world, a, CorpusRecipe::Aic, &mut rng);
                Document {
                    kind: DocumentKind::Aic,
                    article: Some(a.id),
                    text: channel(&clean, &mut rng),
                }
            })
            .collect();
        let stream = pack_documents(&study.tokenizer, &docs);
        let mut params = native.clone();
        let tc = astro_train::TrainerConfig {
            lr: study.config.cpt_lr,
            batch: study.config.batch,
            seq: study.config.seq,
            steps: study.config.cpt_steps,
            ..Default::default()
        };
        train_lm(&mut params, BatchSource::Lm(&stream), &tc, &rng).map_err(|e| {
            StudyError::Train { stage: format!("ablation-dq-{label}"), source: e }
        })?;
        let score = study.eval(&params, Method::TokenBase).percent();
        out.push(AblationPoint {
            label: label.to_string(),
            score,
            secondary: f64::NAN,
        });
    }
    Ok(out)
}

/// A2 — SFT mixture: astronomy fraction and dataset size. SFTs the
/// 8B-class AIC model with different mixtures and reports full-instruct
/// (primary) and token-instruct (secondary) scores — probing the paper's
/// conclusion that the small, non-astronomy mixture is what breaks the
/// instruct models.
pub fn ablation_sft_mixture(study: &Study) -> Result<Vec<AblationPoint>, StudyError> {
    let (native, _) = study.pretrain_native(Tier::S8b)?;
    let (base, _) = study.cpt(&native, CorpusRecipe::Aic)?;
    let total = SftMixtureConfig::paper_mixture(study.config.sft_scale).total();
    let settings: [(&str, f64, usize); 4] = [
        ("astro 0% (general only)", 0.0, total),
        ("astro 33% (paper mixture)", 1.0 / 3.0, total),
        ("astro 100%", 1.0, total),
        ("astro 33%, 10x smaller", 1.0 / 3.0, (total / 10).max(4)),
    ];
    let mut out = Vec::new();
    for (label, astro_frac, size) in settings {
        let n_astro = ((size as f64) * astro_frac).round() as usize;
        let n_general = size - n_astro;
        let mixture = SftMixtureConfig {
            n_astro: n_astro.max(if astro_frac > 0.0 { 1 } else { 0 }),
            n_lima: (n_general / 21).max(1),
            n_orca: (n_general * 10 / 21).max(1),
            n_ultrachat: (n_general * 10 / 21).max(1),
            astro_json_fraction: study.config.sft_json_fraction,
        };
        let mut rng = Rng::seed_from(study.config.seed).substream(&format!("abl-sft-{label}"));
        let convs = sft_dataset(&study.world, &mixture, &mut rng);
        let examples = render_conversations(&study.tokenizer, &convs).map_err(|e| {
            StudyError::Train { stage: format!("ablation-sft-{label}"), source: e }
        })?;
        let mut params = base.clone();
        let tc = astro_train::TrainerConfig {
            lr: study.config.sft_lr,
            batch: study.config.batch,
            seq: study.config.seq,
            steps: study.config.sft_steps,
            ..Default::default()
        };
        train_lm(
            &mut params,
            BatchSource::Sft(&examples, study.tokenizer.pad()),
            &tc,
            &rng,
        )
        .map_err(|e| StudyError::Train { stage: format!("ablation-sft-{label}"), source: e })?;
        let full = study.eval(&params, Method::FullInstruct).percent();
        let token = study.eval(&params, Method::TokenInstruct).percent();
        out.push(AblationPoint {
            label: label.to_string(),
            score: full,
            secondary: token,
        });
    }
    Ok(out)
}

/// A3 — capacity sweep: native vs CPT-AIC token-base scores per tier, the
/// paper's central forgetting-vs-gain contrast. `score` is the native
/// model, `secondary` the CPT'd model.
pub fn ablation_scale(study: &Study) -> Result<Vec<AblationPoint>, StudyError> {
    let mut out = Vec::new();
    for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
        let (native, _) = study.pretrain_native(tier)?;
        let (cpt, _) = study.cpt(&native, CorpusRecipe::Aic)?;
        let native_score = study.eval(&native, Method::TokenBase).percent();
        let cpt_score = study.eval(&cpt, Method::TokenBase).percent();
        out.push(AblationPoint {
            label: tier.label().to_string(),
            score: native_score,
            secondary: cpt_score,
        });
    }
    Ok(out)
}

/// A4 — evaluation-method options on one fixed model (the 8B-class
/// native): two-shot vs zero-shot prompting, token-variant detection
/// on/off (paper Appendix C's design choices), and the value-vs-letter
/// answer readout (our documented substitution vs the paper's literal
/// letter method).
pub fn ablation_eval_method(study: &Study) -> Result<Vec<AblationPoint>, StudyError> {
    use astro_eval::AnswerReadout;
    let (native, _) = study.pretrain_native(Tier::S8b)?;
    let model = EvalModel {
        params: &native,
        tokenizer: &study.tokenizer,
    };
    let questions = study.eval_questions();
    let settings: [(&str, TokenEvalConfig); 5] = [
        (
            "two-shot + variant detection",
            TokenEvalConfig {
                shots: 2,
                detect_variants: true,
                readout: AnswerReadout::OptionValue,
                engine: study.config.eval_engine,
            },
        ),
        (
            "two-shot, no variant detection",
            TokenEvalConfig {
                shots: 2,
                detect_variants: false,
                readout: AnswerReadout::OptionValue,
                engine: study.config.eval_engine,
            },
        ),
        (
            "zero-shot + variant detection",
            TokenEvalConfig {
                shots: 0,
                detect_variants: true,
                readout: AnswerReadout::OptionValue,
                engine: study.config.eval_engine,
            },
        ),
        (
            "zero-shot, no variant detection",
            TokenEvalConfig {
                shots: 0,
                detect_variants: false,
                readout: AnswerReadout::OptionValue,
                engine: study.config.eval_engine,
            },
        ),
        (
            "two-shot, letter readout (paper-literal)",
            TokenEvalConfig {
                shots: 2,
                detect_variants: true,
                readout: AnswerReadout::Letter,
                engine: study.config.eval_engine,
            },
        ),
    ];
    let mut rng = Rng::seed_from(study.config.seed).substream("abl-eval");
    Ok(settings
        .into_iter()
        .map(|(label, cfg)| {
            let score = evaluate(
                &model,
                &questions,
                &study.mcq.exemplars,
                Method::TokenBase,
                &cfg,
                &InstructEvalConfig::default(),
                &mut rng,
            );
            AblationPoint {
                label: label.to_string(),
                score: score.percent(),
                secondary: f64::NAN,
            }
        })
        .collect())
}

/// Render ablation points as a small text table.
pub fn render_ablation(title: &str, points: &[AblationPoint], secondary_label: Option<&str>) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&"-".repeat(title.len()));
    out.push('\n');
    for p in points {
        if p.secondary.is_nan() {
            out.push_str(&format!("  {:<34} {:>6.1}%\n", p.label, p.score));
        } else {
            out.push_str(&format!(
                "  {:<34} {:>6.1}%   {} {:>6.1}%\n",
                p.label,
                p.score,
                secondary_label.unwrap_or("secondary"),
                p.secondary
            ));
        }
    }
    out
}

/// Convenience: which model id the ablations centre on (documentation).
pub fn ablation_reference_model() -> ModelId {
    ModelId::AstroLlama3_8bAic
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::StudyConfig;

    #[test]
    fn render_ablation_formats_both_kinds() {
        let pts = vec![
            AblationPoint {
                label: "a".to_string(),
                score: 50.0,
                secondary: f64::NAN,
            },
            AblationPoint {
                label: "b".to_string(),
                score: 60.0,
                secondary: 55.0,
            },
        ];
        let s = render_ablation("Test", &pts, Some("token"));
        assert!(s.contains("50.0%"));
        assert!(s.contains("token"));
        assert!(s.contains("55.0%"));
    }

    #[test]
    fn eval_method_ablation_runs_on_smoke_study() {
        let study = Study::prepare(StudyConfig::smoke(23)).expect("prepare");
        let pts = ablation_eval_method(&study).expect("ablation");
        assert_eq!(pts.len(), 5);
        for p in &pts {
            assert!((0.0..=100.0).contains(&p.score), "{p:?}");
        }
    }

    #[test]
    fn scale_ablation_covers_three_tiers() {
        let study = Study::prepare(StudyConfig::smoke(29)).expect("prepare");
        let pts = ablation_scale(&study).expect("ablation");
        assert_eq!(pts.len(), 3);
        assert!(pts[0].label.contains("7B"));
        assert!(pts[2].label.contains("70B"));
    }
}
