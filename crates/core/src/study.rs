//! The end-to-end study pipeline (paper §III–§VI).
//!
//! Two entry points produce the same numbers:
//!
//! * [`Study::run_table1`] — everything in memory, no artifacts;
//! * [`Study::run_study`] — the crash-safe variant: every trained model is
//!   saved as an atomic checkpoint, every score appended to a run ledger,
//!   and a re-run after an interruption resumes from the last durable
//!   artifact and reproduces the remaining stages bit-for-bit (see
//!   `docs/RESILIENCE.md`).

use crate::presets::StudyConfig;
use crate::zoo::ModelId;
use astro_eval::json::Json;
use astro_eval::report::{render_figure1, render_table1, ModelRow};
use astro_eval::{
    evaluate, evaluate_checked, EvalFailure, EvalModel, InstructEvalConfig, Method, Score,
    TokenEvalConfig,
};
use astro_mcq::{Mcq, McqConfig, McqDataset};
use astro_model::serial::save_checkpoint;
use astro_model::{CkptError, ModelConfig, Params, Tier};
use astro_prng::Rng;
use astro_resilience::{fault, fnv64, Journal, RetryPolicy};
use astro_tokenizer::{train_bpe, BpeTrainerConfig, Tokenizer};
use astro_train::{
    pack_documents, render_conversations, train_lm, BatchSource, SftExample, TokenStream,
    TrainError, TrainReport, TrainerConfig,
};
use astro_world::{cpt_corpus, general_corpus, sft_dataset, CorpusRecipe, SftMixtureConfig, World};
use std::collections::HashMap;
use std::path::Path;

/// Why a study stage could not complete. Every failure on the study path
/// is typed: callers can distinguish a bad configuration from a training
/// divergence, a corrupt checkpoint, an exhausted eval retry budget or an
/// injected interruption, and decide to resume.
#[derive(Debug)]
pub enum StudyError {
    /// The configuration failed [`StudyConfig::validate`].
    InvalidConfig(String),
    /// Training failed (divergence, bad trainer config, unknown role).
    Train {
        /// Stage label, e.g. `cpt-AstroLLaMA-2-7B-AIC`.
        stage: String,
        /// The underlying trainer error.
        source: TrainError,
    },
    /// A checkpoint could not be written or read back.
    Ckpt {
        /// Filesystem path of the offending checkpoint.
        path: String,
        /// The underlying checkpoint error.
        source: CkptError,
    },
    /// The run ledger is unusable (unparseable line, or it belongs to a
    /// different study configuration).
    Ledger(String),
    /// Evaluation kept failing after bounded retries.
    Eval {
        /// Stage label, e.g. `eval-LLaMA-3-8B-token_base`.
        stage: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// The last failure.
        failure: EvalFailure,
    },
    /// An injected `study.stage_boundary` fault fired — the simulated
    /// crash used by the chaos suite to exercise resume.
    Interrupted {
        /// The fault site that fired.
        site: &'static str,
        /// The stage whose boundary was interrupted.
        stage: String,
    },
    /// Ledger or filesystem I/O failed.
    Io(String),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::InvalidConfig(msg) => write!(f, "invalid StudyConfig: {msg}"),
            StudyError::Train { stage, source } => write!(f, "training failed at {stage}: {source}"),
            StudyError::Ckpt { path, source } => write!(f, "checkpoint {path}: {source}"),
            StudyError::Ledger(msg) => write!(f, "run ledger: {msg}"),
            StudyError::Eval { stage, attempts, failure } => {
                write!(f, "evaluation {stage} failed after {attempts} attempts: {failure}")
            }
            StudyError::Interrupted { site, stage } => {
                write!(f, "interrupted by injected fault {site} at stage {stage}")
            }
            StudyError::Io(msg) => write!(f, "study I/O: {msg}"),
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::Train { source, .. } => Some(source),
            StudyError::Ckpt { source, .. } => Some(source),
            StudyError::Eval { failure, .. } => Some(failure),
            _ => None,
        }
    }
}

/// Tier index into per-tier arrays.
fn tier_idx(tier: Tier) -> usize {
    match tier {
        Tier::S7b => 0,
        Tier::S8b => 1,
        Tier::S70b => 2,
    }
}

/// A prepared study: world, tokenizer, benchmark and packed corpora.
pub struct Study {
    /// The configuration the study was prepared with.
    pub config: StudyConfig,
    /// The synthetic world.
    pub world: World,
    /// The shared tokenizer.
    pub tokenizer: Tokenizer,
    /// The MCQ benchmark.
    pub mcq: McqDataset,
    /// Packed general corpus (native pretraining).
    pub general_stream: TokenStream,
    /// Packed CPT corpora per recipe.
    pub cpt_streams: Vec<(CorpusRecipe, TokenStream)>,
    /// Rendered SFT examples.
    pub sft_examples: Vec<SftExample>,
    root: Rng,
}

/// Base and instruct weights for one model of the zoo.
pub struct ModelArtifacts {
    /// Post-pretraining (or post-CPT) weights.
    pub base: Params,
    /// Post-SFT weights (absent for AstroLLaMA-2-7B-Abstract).
    pub instruct: Option<Params>,
    /// CPT training report, for CPT models.
    pub cpt_report: Option<TrainReport>,
    /// SFT training report.
    pub sft_report: Option<TrainReport>,
}

/// The study's measured outputs.
pub struct StudyResult {
    /// Scores per model: `[full instruct, token instruct, token base]`, %.
    pub scores: Vec<(ModelId, [Option<f64>; 3])>,
    /// Full-instruct parse-trouble rate per model (interpreter + failed).
    pub parse_trouble: Vec<(ModelId, f64)>,
    /// Rendered Table I.
    pub table1: String,
    /// Rendered ASCII Figure 1.
    pub figure1: String,
    /// Figure 1 data as CSV.
    pub figure1_csv: String,
}

impl StudyResult {
    /// Measured score of one model under one method.
    pub fn score(&self, id: ModelId, method: Method) -> Option<f64> {
        let col = match method {
            Method::FullInstruct => 0,
            Method::TokenInstruct => 1,
            Method::TokenBase => 2,
        };
        self.scores
            .iter()
            .find(|(m, _)| *m == id)
            .and_then(|(_, s)| s[col])
    }
}

impl Study {
    /// Generate the world, train the tokenizer, build the benchmark and
    /// pack every corpus.
    pub fn prepare(config: StudyConfig) -> Result<Study, StudyError> {
        let _span = astro_telemetry::span!("study.prepare", seed = config.seed);
        config.validate().map_err(StudyError::InvalidConfig)?;
        astro_telemetry::info!(
            "prepare: world + tokenizer + benchmark (seed {})",
            config.seed
        );
        let root = Rng::seed_from(config.seed);
        let world = World::generate(config.seed, config.world.clone());

        // Corpora.
        let mut corpus_rng = root.substream("general-corpus");
        let general_docs = general_corpus(&world, config.general_docs, &mut corpus_rng);
        let mut cpt_rng = root.substream("cpt-corpus");
        let cpt_docs: Vec<(CorpusRecipe, Vec<astro_world::Document>)> =
            [CorpusRecipe::Abstract, CorpusRecipe::Aic, CorpusRecipe::Summary]
                .into_iter()
                .map(|r| (r, cpt_corpus(&world, r, &mut cpt_rng)))
                .collect();

        // Tokenizer: train on a blend of general + astro text so both
        // domains tokenise compactly (as LLaMA's web-trained BPE does).
        let mut tok_corpus: Vec<String> = general_docs
            .iter()
            .take(400)
            .map(|d| d.text.clone())
            .collect();
        for (_, docs) in &cpt_docs {
            tok_corpus.extend(docs.iter().take(120).map(|d| d.text.clone()));
        }
        // Guarantee the answer-letter variants exist as single tokens (as
        // they do in real LLM tokenizers) — the next-token method reads
        // their logits directly — and make every attribute value's head
        // word a single token, mirroring how common words are whole
        // tokens in web-scale BPE vocabularies.
        let mut ensure: Vec<String> = [" A", " B", " C", " D"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for rel in astro_world::RELATIONS {
            for v in rel.values() {
                let head = v.split(' ').next().unwrap_or(v);
                ensure.push(format!(" {head}"));
            }
        }
        for rel in astro_world::GENERAL_RELATIONS {
            for v in rel.values() {
                ensure.push(format!(" {v}"));
            }
        }
        ensure.sort();
        ensure.dedup();
        let tokenizer = train_bpe(
            &tok_corpus,
            &BpeTrainerConfig {
                vocab_size: config.vocab_size,
                min_pair_count: 2,
                ensure_pieces: ensure,
            },
        );

        // Benchmark.
        let mut mcq_rng = root.substream("mcq-gen");
        let mcq = McqDataset::generate(&world, &McqConfig::default(), &mut mcq_rng);

        // Packing.
        let general_stream = pack_documents(&tokenizer, &general_docs);
        let cpt_streams = cpt_docs
            .iter()
            .map(|(r, docs)| (*r, pack_documents(&tokenizer, docs)))
            .collect();

        // SFT set.
        let mut sft_rng = root.substream("sft-data");
        let mut mixture = SftMixtureConfig::paper_mixture(config.sft_scale);
        mixture.astro_json_fraction = config.sft_json_fraction;
        let convs = sft_dataset(&world, &mixture, &mut sft_rng);
        let sft_examples = render_conversations(&tokenizer, &convs).map_err(|e| {
            StudyError::Train { stage: "prepare.sft-render".to_string(), source: e }
        })?;

        Ok(Study {
            config,
            world,
            tokenizer,
            mcq,
            general_stream,
            cpt_streams,
            sft_examples,
            root,
        })
    }

    /// The packed CPT stream for a recipe. `None` only for a recipe that
    /// [`Study::prepare`] did not pack (it packs all three).
    pub fn cpt_stream(&self, recipe: CorpusRecipe) -> Option<&TokenStream> {
        self.cpt_streams.iter().find(|(r, _)| *r == recipe).map(|(_, s)| s)
    }

    /// Model configuration for a tier under this study's tokenizer.
    pub fn model_config(&self, tier: Tier) -> ModelConfig {
        ModelConfig::tier(tier, self.tokenizer.vocab_size())
    }

    fn trainer_config(&self, steps: u64, lr: f32) -> TrainerConfig {
        TrainerConfig {
            lr,
            batch: self.config.batch,
            seq: self.config.seq,
            steps,
            warmup_ratio: 0.03,
            grad_clip: 1.0,
            grad_accum: 1,
            devices: self.config.devices,
            bf16_weights: true,
            weight_decay: 0.01,
            log_every: 20,
        }
    }

    /// Pretrain one native model on the general corpus.
    pub fn pretrain_native(&self, tier: Tier) -> Result<(Params, TrainReport), StudyError> {
        let span = astro_telemetry::span!("study.pretrain_native", tier = tier.label());
        astro_telemetry::info!("pretrain_native: tier {}", tier.label());
        let cfg = self.model_config(tier);
        let mut rng = self.root.substream_idx("native-init", tier_idx(tier) as u64);
        let mut params = Params::init(cfg, &mut rng);
        let tc = self.trainer_config(self.config.native_steps[tier_idx(tier)], self.config.native_lr);
        let report = train_lm(
            &mut params,
            BatchSource::Lm(&self.general_stream),
            &tc,
            &self.root.substream_idx("native-train", tier_idx(tier) as u64),
        )
        .map_err(|e| StudyError::Train {
            stage: format!("pretrain-native-{}", tier.label()),
            source: e,
        })?;
        span.record_f64("tokens", report.tokens_processed as f64);
        Ok((params, report))
    }

    /// Continually pretrain a base model on a recipe corpus (paper §III).
    pub fn cpt(&self, base: &Params, recipe: CorpusRecipe) -> Result<(Params, TrainReport), StudyError> {
        let span = astro_telemetry::span!("study.cpt", recipe = recipe.label());
        astro_telemetry::info!("cpt: recipe {}", recipe.label());
        let stream = self.cpt_stream(recipe).ok_or_else(|| {
            StudyError::InvalidConfig(format!("no packed corpus for recipe {}", recipe.label()))
        })?;
        let mut params = base.clone();
        let tc = self.trainer_config(self.config.cpt_steps, self.config.cpt_lr);
        let report = train_lm(
            &mut params,
            BatchSource::Lm(stream),
            &tc,
            &self.root.substream(&format!("cpt-{}", recipe.label())),
        )
        .map_err(|e| StudyError::Train {
            stage: format!("cpt-{}", recipe.label()),
            source: e,
        })?;
        span.record_f64("tokens", report.tokens_processed as f64);
        Ok((params, report))
    }

    /// SFT a base model into an instruct model.
    pub fn sft(&self, base: &Params, label: &str) -> Result<(Params, TrainReport), StudyError> {
        let span = astro_telemetry::span!("study.sft", model = label);
        astro_telemetry::info!("sft: {label}");
        let mut params = base.clone();
        let tc = self.trainer_config(self.config.sft_steps, self.config.sft_lr);
        let report = train_lm(
            &mut params,
            BatchSource::Sft(&self.sft_examples, self.tokenizer.pad()),
            &tc,
            &self.root.substream(&format!("sft-{label}")),
        )
        .map_err(|e| StudyError::Train { stage: format!("sft-{label}"), source: e })?;
        span.record_f64("tokens", report.tokens_processed as f64);
        Ok((params, report))
    }

    /// The deterministic evaluation subset.
    pub fn eval_questions(&self) -> Vec<&Mcq> {
        let mut rng = self.root.substream("eval-subset");
        self.mcq.subset(self.config.n_eval_questions, &mut rng)
    }

    /// Evaluate the token-base method and return the per-tier accuracy
    /// breakdown alongside the aggregate — the decomposition showing
    /// *where* a CPT gain or loss comes from (consensus = retention,
    /// frontier/detail = acquisition).
    pub fn eval_with_breakdown(&self, params: &Params) -> (Score, astro_eval::TierBreakdown) {
        let model = EvalModel {
            params,
            tokenizer: &self.tokenizer,
        };
        let questions = self.eval_questions();
        let preds = astro_eval::token_method(
            &model,
            &questions,
            &self.mcq.exemplars,
            &TokenEvalConfig {
                engine: self.config.eval_engine,
                ..Default::default()
            },
        );
        let correct = preds
            .iter()
            .zip(questions.iter())
            .filter(|(&p, q)| p == q.answer)
            .count();
        let breakdown = astro_eval::TierBreakdown::from_predictions(&questions, &preds);
        (
            Score {
                correct,
                total: questions.len(),
                stages: [0; 4],
            },
            breakdown,
        )
    }

    /// Evaluate one parameter set under one method.
    pub fn eval(&self, params: &Params, method: Method) -> Score {
        let model = EvalModel {
            params,
            tokenizer: &self.tokenizer,
        };
        let questions = self.eval_questions();
        let mut rng = self.root.substream("eval-run");
        evaluate(
            &model,
            &questions,
            &self.mcq.exemplars,
            method,
            &TokenEvalConfig {
                engine: self.config.eval_engine,
                ..Default::default()
            },
            &InstructEvalConfig {
                verbose_prompt: self.config.verbose_prompt,
                engine: self.config.eval_engine,
                ..Default::default()
            },
            &mut rng,
        )
    }

    /// Like [`Study::eval`], but transient engine failures (worker panics,
    /// cache exhaustion that survives the uncached retry) surface as a
    /// typed [`EvalFailure`] instead of being silently scored wrong. An
    /// `Ok` score is bitwise identical to what [`Study::eval`] returns.
    pub fn eval_checked(&self, params: &Params, method: Method) -> Result<Score, EvalFailure> {
        let model = EvalModel {
            params,
            tokenizer: &self.tokenizer,
        };
        let questions = self.eval_questions();
        let mut rng = self.root.substream("eval-run");
        evaluate_checked(
            &model,
            &questions,
            &self.mcq.exemplars,
            method,
            &TokenEvalConfig {
                engine: self.config.eval_engine,
                ..Default::default()
            },
            &InstructEvalConfig {
                verbose_prompt: self.config.verbose_prompt,
                engine: self.config.eval_engine,
                ..Default::default()
            },
            &mut rng,
        )
    }

    /// Train every model of the zoo (natives shared across their series).
    pub fn build_artifacts(&self) -> Result<HashMap<ModelId, ModelArtifacts>, StudyError> {
        let _span = astro_telemetry::span!("study.build_artifacts");
        let mut out = HashMap::new();
        // Natives per tier.
        let mut natives: HashMap<usize, Params> = HashMap::new();
        for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
            let (p, _) = self.pretrain_native(tier)?;
            natives.insert(tier_idx(tier), p);
        }
        for id in ModelId::all() {
            astro_telemetry::info!("build: {}", id.name());
            let native = &natives[&tier_idx(id.tier())];
            let (base, cpt_report) = match id.recipe() {
                None => (native.clone(), None),
                Some(recipe) => {
                    let (p, r) = self.cpt(native, recipe)?;
                    (p, Some(r))
                }
            };
            let (instruct, sft_report) = if id.has_instruct() {
                let (p, r) = self.sft(&base, id.name())?;
                (Some(p), Some(r))
            } else {
                (None, None)
            };
            out.insert(
                id,
                ModelArtifacts {
                    base,
                    instruct,
                    cpt_report,
                    sft_report,
                },
            );
        }
        Ok(out)
    }

    /// Score prepared artifacts under the three methods.
    pub fn evaluate_artifacts(
        &self,
        artifacts: &HashMap<ModelId, ModelArtifacts>,
    ) -> StudyResult {
        let _span = astro_telemetry::span!("study.evaluate_artifacts");
        let mut scores = Vec::new();
        let mut parse_trouble = Vec::new();
        for id in ModelId::all() {
            astro_telemetry::info!("evaluate: {}", id.name());
            let art = &artifacts[&id];
            let token_base = self.eval(&art.base, Method::TokenBase).percent();
            let (full, token_instr, trouble) = match &art.instruct {
                Some(p) => {
                    let fi = self.eval(p, Method::FullInstruct);
                    let ti = self.eval(p, Method::TokenInstruct).percent();
                    (Some(fi.percent()), Some(ti), fi.parse_trouble_rate())
                }
                None => (None, None, 0.0),
            };
            scores.push((id, [full, token_instr, Some(token_base)]));
            parse_trouble.push((id, trouble));
        }
        let rows = build_rows(&scores);
        let (lo, hi) = score_range(&rows);
        StudyResult {
            table1: render_table1(&rows),
            figure1: render_figure1(&rows, lo, hi),
            figure1_csv: astro_eval::report::figure1_csv(&rows),
            scores,
            parse_trouble,
        }
    }

    /// The whole pipeline: train everything, evaluate everything.
    pub fn run_table1(&self) -> Result<StudyResult, StudyError> {
        let _span = astro_telemetry::span!("study.run_table1");
        let artifacts = self.build_artifacts()?;
        Ok(self.evaluate_artifacts(&artifacts))
    }

    /// The crash-safe pipeline: like [`Study::run_table1`] but every
    /// trained model is saved as an atomic checkpoint under `dir` and
    /// every completed stage is recorded in an fsync'd run ledger
    /// (`dir/ledger.jsonl`). Re-running after an interruption (process
    /// kill, injected fault) replays completed stages from the ledger and
    /// resumes with the first missing one; because every stage draws its
    /// randomness from a named substream of the root seed, a resumed run
    /// produces bitwise-identical scores to an uninterrupted one.
    pub fn run_study(&self, dir: &Path) -> Result<StudyResult, StudyError> {
        let _span = astro_telemetry::span!("study.run_study", seed = self.config.seed);
        std::fs::create_dir_all(dir)
            .map_err(|e| StudyError::Io(format!("create {}: {e}", dir.display())))?;
        let journal = Journal::at(&dir.join("ledger.jsonl"));
        let done = load_ledger(&journal)?;
        self.check_fingerprint(&journal, &done)?;

        // Natives per tier, checkpointed.
        let mut natives: HashMap<usize, Params> = HashMap::new();
        for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
            let stage = format!("native-{}", slug(tier.label()));
            let p = self.ensure_params(&journal, &done, dir, &stage, || {
                self.pretrain_native(tier).map(|(p, _)| p)
            })?;
            natives.insert(tier_idx(tier), p);
        }

        // Per-model CPT/SFT checkpoints and ledgered scores, in the same
        // order as build_artifacts + evaluate_artifacts.
        let mut scores = Vec::new();
        let mut parse_trouble = Vec::new();
        for id in ModelId::all() {
            let name = slug(id.name());
            let native = &natives[&tier_idx(id.tier())];
            let base = match id.recipe() {
                None => native.clone(),
                Some(recipe) => self.ensure_params(&journal, &done, dir, &format!("cpt-{name}"), || {
                    self.cpt(native, recipe).map(|(p, _)| p)
                })?,
            };
            let instruct = if id.has_instruct() {
                Some(self.ensure_params(&journal, &done, dir, &format!("sft-{name}"), || {
                    self.sft(&base, id.name()).map(|(p, _)| p)
                })?)
            } else {
                None
            };
            let token_base = self
                .ensure_score(&journal, &done, &format!("eval-{name}-token_base"), &base, Method::TokenBase)?
                .percent();
            let (full, token_instr, trouble) = match &instruct {
                Some(p) => {
                    let fi = self.ensure_score(
                        &journal,
                        &done,
                        &format!("eval-{name}-full_instruct"),
                        p,
                        Method::FullInstruct,
                    )?;
                    let ti = self
                        .ensure_score(&journal, &done, &format!("eval-{name}-token_instruct"), p, Method::TokenInstruct)?
                        .percent();
                    (Some(fi.percent()), Some(ti), fi.parse_trouble_rate())
                }
                None => (None, None, 0.0),
            };
            scores.push((id, [full, token_instr, Some(token_base)]));
            parse_trouble.push((id, trouble));
        }
        let rows = build_rows(&scores);
        let (lo, hi) = score_range(&rows);
        Ok(StudyResult {
            table1: render_table1(&rows),
            figure1: render_figure1(&rows, lo, hi),
            figure1_csv: astro_eval::report::figure1_csv(&rows),
            scores,
            parse_trouble,
        })
    }

    /// The study's identity for ledger compatibility: FNV-1a digests of
    /// the configuration's debug rendering and the trained tokenizer.
    fn fingerprint(&self) -> (u64, u64) {
        (
            fnv64(format!("{:?}", self.config).as_bytes()),
            fnv64(&self.tokenizer.to_bytes()),
        )
    }

    /// Verify an existing ledger belongs to this study, or start a fresh
    /// ledger with a fingerprint line. Resuming someone else's ledger
    /// would silently mix artifacts from two different studies.
    fn check_fingerprint(
        &self,
        journal: &Journal,
        done: &HashMap<String, Json>,
    ) -> Result<(), StudyError> {
        let (cfg, tok) = self.fingerprint();
        match done.get("fingerprint") {
            Some(entry) => {
                let field = |k: &str| entry.get(k).and_then(Json::as_str).map(str::to_string);
                if field("config") != Some(format!("{cfg:016x}"))
                    || field("tokenizer") != Some(format!("{tok:016x}"))
                {
                    return Err(StudyError::Ledger(format!(
                        "{} belongs to a different study (config/tokenizer fingerprint mismatch)",
                        journal.path().display()
                    )));
                }
                Ok(())
            }
            None => journal
                .append(&format!(
                    r#"{{"stage":"fingerprint","config":"{cfg:016x}","tokenizer":"{tok:016x}"}}"#
                ))
                .map_err(|e| StudyError::Io(format!("append ledger: {e}"))),
        }
    }

    /// Produce the parameters for `stage`: replayed from a ledgered
    /// checkpoint when possible, otherwise built, checkpointed atomically
    /// and recorded. A ledger entry whose checkpoint is missing, corrupt
    /// or altered (digest mismatch) is not trusted — the stage re-runs.
    fn ensure_params(
        &self,
        journal: &Journal,
        done: &HashMap<String, Json>,
        dir: &Path,
        stage: &str,
        build: impl FnOnce() -> Result<Params, StudyError>,
    ) -> Result<Params, StudyError> {
        let file = format!("{stage}.ckpt");
        let path = dir.join(&file);
        if let Some(entry) = done.get(stage) {
            match replay_checkpoint(entry, &path) {
                Ok(p) => {
                    astro_telemetry::info!("run_study: resume {stage} from {file}");
                    astro_telemetry::counter("study.stages_resumed").inc();
                    return Ok(p);
                }
                Err(why) => {
                    astro_telemetry::info!("run_study: rebuild {stage}: {why}");
                    astro_telemetry::counter("study.ckpt_replay_failures").inc();
                }
            }
        }
        let params = build()?;
        save_checkpoint(&params, &path).map_err(|e| StudyError::Ckpt {
            path: path.display().to_string(),
            source: e,
        })?;
        let digest = fnv64(&astro_model::serial::params_to_bytes(&params));
        journal
            .append(&format!(
                r#"{{"stage":"{stage}","kind":"ckpt","file":"{file}","fnv":"{digest:016x}"}}"#
            ))
            .map_err(|e| StudyError::Io(format!("append ledger: {e}")))?;
        astro_telemetry::counter("study.stages_completed").inc();
        self.stage_boundary(stage)?;
        Ok(params)
    }

    /// Produce the score for `stage`: replayed from the ledger when
    /// present, otherwise evaluated (with bounded retries around
    /// transient engine failures) and recorded as integers so replay is
    /// exact.
    fn ensure_score(
        &self,
        journal: &Journal,
        done: &HashMap<String, Json>,
        stage: &str,
        params: &Params,
        method: Method,
    ) -> Result<Score, StudyError> {
        if let Some(entry) = done.get(stage) {
            if let Some(score) = score_from_entry(entry) {
                astro_telemetry::info!("run_study: resume {stage} from ledger");
                astro_telemetry::counter("study.stages_resumed").inc();
                return Ok(score);
            }
            astro_telemetry::info!("run_study: ledger entry for {stage} malformed; re-evaluating");
        }
        let policy = RetryPolicy::evals();
        let score = policy
            .run(stage, |_| self.eval_checked(params, method))
            .map_err(|failure| StudyError::Eval {
                stage: stage.to_string(),
                attempts: policy.max_attempts,
                failure,
            })?;
        journal
            .append(&format!(
                r#"{{"stage":"{stage}","kind":"score","correct":{},"total":{},"s0":{},"s1":{},"s2":{},"s3":{}}}"#,
                score.correct, score.total, score.stages[0], score.stages[1], score.stages[2], score.stages[3]
            ))
            .map_err(|e| StudyError::Io(format!("append ledger: {e}")))?;
        astro_telemetry::counter("study.stages_completed").inc();
        self.stage_boundary(stage)?;
        Ok(score)
    }

    /// Crossing point between stages: where the chaos suite's
    /// `study.stage_boundary` fault simulates a crash immediately after a
    /// stage became durable.
    fn stage_boundary(&self, stage: &str) -> Result<(), StudyError> {
        if fault::should_fault("study.stage_boundary") {
            return Err(StudyError::Interrupted {
                site: "study.stage_boundary",
                stage: stage.to_string(),
            });
        }
        Ok(())
    }
}

/// Parse the ledger into a stage → entry map (later entries win).
fn load_ledger(journal: &Journal) -> Result<HashMap<String, Json>, StudyError> {
    let mut done = HashMap::new();
    for line in journal
        .lines()
        .map_err(|e| StudyError::Io(format!("read {}: {e}", journal.path().display())))?
    {
        let entry = Json::parse(&line)
            .map_err(|e| StudyError::Ledger(format!("unparseable ledger line: {e}")))?;
        let stage = entry
            .get("stage")
            .and_then(Json::as_str)
            .ok_or_else(|| StudyError::Ledger("ledger line missing \"stage\"".to_string()))?
            .to_string();
        done.insert(stage, entry);
    }
    Ok(done)
}

/// Load a ledgered checkpoint, verifying the file digest recorded at
/// write time; any mismatch means the stage must re-run.
fn replay_checkpoint(entry: &Json, path: &Path) -> Result<Params, String> {
    let want = entry
        .get("fnv")
        .and_then(Json::as_str)
        .ok_or_else(|| "ledger entry has no checkpoint digest".to_string())?;
    let bytes = astro_resilience::durable::read_all(path).map_err(|e| e.to_string())?;
    let got = format!("{:016x}", fnv64(&bytes));
    if got != want {
        return Err(format!("checkpoint digest {got} != ledgered {want}"));
    }
    astro_model::serial::params_from_bytes(&bytes).map_err(|e| e.to_string())
}

/// Reconstruct a [`Score`] from a ledgered score entry. Scores are stored
/// as integer counts, so replay is exact.
fn score_from_entry(entry: &Json) -> Option<Score> {
    let n = |k: &str| match entry.get(k)? {
        Json::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as usize),
        _ => None,
    };
    Some(Score {
        correct: n("correct")?,
        total: n("total")?,
        stages: [n("s0")?, n("s1")?, n("s2")?, n("s3")?],
    })
}

/// A filesystem- and JSON-safe stage name: alphanumerics and dashes only
/// (model names contain spaces and parentheses, e.g. `" (sim)"`).
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Convert raw scores into Table-I rows with baseline indices.
pub fn build_rows(scores: &[(ModelId, [Option<f64>; 3])]) -> Vec<ModelRow> {
    // `ModelId::all()` lists every variant, so the position lookup is
    // total; `flatten` keeps this panic-free regardless.
    let index_of = |id: ModelId| ModelId::all().iter().position(|&m| m == id);
    scores
        .iter()
        .map(|(id, s)| ModelRow {
            name: id.name().to_string(),
            series: id.series().to_string(),
            scores: *s,
            baseline: (id.baseline() != *id)
                .then(|| index_of(id.baseline()))
                .flatten(),
            source: id.source().to_string(),
        })
        .collect()
}

/// A padded (lo, hi) range covering every present score.
fn score_range(rows: &[ModelRow]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in rows {
        for s in r.scores.iter().flatten() {
            lo = lo.min(*s);
            hi = hi.max(*s);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 100.0);
    }
    let pad = ((hi - lo) * 0.1).max(2.0);
    ((lo - pad).max(0.0), (hi + pad).min(100.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_study() -> Study {
        Study::prepare(StudyConfig::smoke(11)).expect("smoke prepare")
    }

    fn stream(s: &Study, recipe: CorpusRecipe) -> &TokenStream {
        s.cpt_stream(recipe).expect("all recipes prepared")
    }

    #[test]
    fn prepare_builds_all_streams() {
        let s = smoke_study();
        assert!(!s.general_stream.is_empty());
        for recipe in [CorpusRecipe::Abstract, CorpusRecipe::Aic, CorpusRecipe::Summary] {
            assert!(stream(&s, recipe).len() > s.config.seq, "{recipe:?} stream too small");
        }
        assert!(!s.sft_examples.is_empty());
        assert_eq!(s.mcq.questions.len() + s.mcq.exemplars.len(), 40 * 5);
    }

    #[test]
    fn prepare_rejects_invalid_config() {
        let mut cfg = StudyConfig::smoke(11);
        cfg.batch = 0;
        match Study::prepare(cfg) {
            Err(StudyError::InvalidConfig(msg)) => assert!(msg.contains("batch"), "{msg}"),
            other => panic!("expected InvalidConfig, got {:?}", other.err()),
        }
    }

    #[test]
    fn aic_stream_larger_than_abstract() {
        let s = smoke_study();
        assert!(stream(&s, CorpusRecipe::Aic).len() > stream(&s, CorpusRecipe::Abstract).len());
    }

    #[test]
    fn eval_questions_deterministic_and_sized() {
        let s = smoke_study();
        let a = s.eval_questions();
        let b = s.eval_questions();
        assert_eq!(a.len(), s.config.n_eval_questions.min(s.mcq.len()));
        assert_eq!(
            a.iter().map(|q| q.id).collect::<Vec<_>>(),
            b.iter().map(|q| q.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pretrain_reduces_loss() {
        let s = smoke_study();
        let (_, report) = s.pretrain_native(Tier::S7b).expect("pretrain");
        assert!(report.tail_loss(2) < report.losses[0].1, "{:?}", report.losses);
    }

    #[test]
    fn cpt_starts_from_base_and_changes_weights() {
        let s = smoke_study();
        let (native, _) = s.pretrain_native(Tier::S7b).expect("pretrain");
        let (cpt, report) = s.cpt(&native, CorpusRecipe::Aic).expect("cpt");
        assert_eq!(cpt.data.len(), native.data.len());
        assert_ne!(cpt.data, native.data);
        assert!(report.steps == s.config.cpt_steps);
    }

    #[test]
    fn sft_changes_weights_less_than_cpt() {
        // SFT's tiny LR must move weights much less than CPT does.
        let s = smoke_study();
        let (native, _) = s.pretrain_native(Tier::S7b).expect("pretrain");
        let (cpt, _) = s.cpt(&native, CorpusRecipe::Aic).expect("cpt");
        let (instr, _) = s.sft(&native, "t").expect("sft");
        let dist = |a: &Params, b: &Params| -> f64 {
            a.data
                .iter()
                .zip(b.data.iter())
                .map(|(x, y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&instr, &native) < dist(&cpt, &native));
    }

    #[test]
    fn build_rows_assigns_baselines() {
        let scores: Vec<(ModelId, [Option<f64>; 3])> = ModelId::all()
            .iter()
            .map(|&id| (id, id.paper_scores()))
            .collect();
        let rows = build_rows(&scores);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].baseline, None);
        assert_eq!(rows[1].baseline, Some(0)); // 7B-AIC → LLaMA-2-7B
        assert_eq!(rows[7].baseline, Some(6)); // 70B-AIC → LLaMA-2-70B
    }

    #[test]
    fn table_and_figure_render_from_paper_scores() {
        let scores: Vec<(ModelId, [Option<f64>; 3])> = ModelId::all()
            .iter()
            .map(|&id| (id, id.paper_scores()))
            .collect();
        let rows = build_rows(&scores);
        let t = render_table1(&rows);
        assert!(t.contains("76.0 ↑"), "{t}");
        assert!(t.contains("41.4 ↓"), "{t}");
        let (lo, hi) = score_range(&rows);
        assert!(lo < 41.4 && hi > 76.0);
        let f = render_figure1(&rows, lo, hi);
        assert!(f.contains('*'));
    }

    #[test]
    fn score_range_handles_empty() {
        assert_eq!(score_range(&[]), (0.0, 100.0));
    }

    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(slug("AstroLLaMA-2-7B-AIC (sim)"), "AstroLLaMA-2-7B-AIC--sim-");
        assert_eq!(slug("7B-class"), "7B-class");
    }

    #[test]
    fn score_entries_round_trip_through_the_ledger_format() {
        let score = Score { correct: 17, total: 24, stages: [9, 4, 2, 1] };
        let line = format!(
            r#"{{"stage":"eval-x-token_base","kind":"score","correct":{},"total":{},"s0":{},"s1":{},"s2":{},"s3":{}}}"#,
            score.correct, score.total, score.stages[0], score.stages[1], score.stages[2], score.stages[3]
        );
        let entry = Json::parse(&line).expect("parse");
        assert_eq!(score_from_entry(&entry), Some(score));
    }

    #[test]
    fn malformed_score_entries_are_rejected_not_trusted() {
        let entry = Json::parse(r#"{"stage":"eval-x","kind":"score","correct":-1,"total":24}"#)
            .expect("parse");
        assert_eq!(score_from_entry(&entry), None);
    }
}
