//! The end-to-end study pipeline (paper §III–§VI).

use crate::presets::StudyConfig;
use crate::zoo::ModelId;
use astro_eval::report::{render_figure1, render_table1, ModelRow};
use astro_eval::{
    evaluate, EvalModel, InstructEvalConfig, Method, Score, TokenEvalConfig,
};
use astro_mcq::{Mcq, McqConfig, McqDataset};
use astro_model::{ModelConfig, Params, Tier};
use astro_prng::Rng;
use astro_tokenizer::{train_bpe, BpeTrainerConfig, Tokenizer};
use astro_train::{
    pack_documents, render_conversations, train_lm, BatchSource, SftExample, TokenStream,
    TrainReport, TrainerConfig,
};
use astro_world::{cpt_corpus, general_corpus, sft_dataset, CorpusRecipe, SftMixtureConfig, World};
use std::collections::HashMap;

/// Tier index into per-tier arrays.
fn tier_idx(tier: Tier) -> usize {
    match tier {
        Tier::S7b => 0,
        Tier::S8b => 1,
        Tier::S70b => 2,
    }
}

/// A prepared study: world, tokenizer, benchmark and packed corpora.
pub struct Study {
    /// The configuration the study was prepared with.
    pub config: StudyConfig,
    /// The synthetic world.
    pub world: World,
    /// The shared tokenizer.
    pub tokenizer: Tokenizer,
    /// The MCQ benchmark.
    pub mcq: McqDataset,
    /// Packed general corpus (native pretraining).
    pub general_stream: TokenStream,
    /// Packed CPT corpora per recipe.
    pub cpt_streams: Vec<(CorpusRecipe, TokenStream)>,
    /// Rendered SFT examples.
    pub sft_examples: Vec<SftExample>,
    root: Rng,
}

/// Base and instruct weights for one model of the zoo.
pub struct ModelArtifacts {
    /// Post-pretraining (or post-CPT) weights.
    pub base: Params,
    /// Post-SFT weights (absent for AstroLLaMA-2-7B-Abstract).
    pub instruct: Option<Params>,
    /// CPT training report, for CPT models.
    pub cpt_report: Option<TrainReport>,
    /// SFT training report.
    pub sft_report: Option<TrainReport>,
}

/// The study's measured outputs.
pub struct StudyResult {
    /// Scores per model: `[full instruct, token instruct, token base]`, %.
    pub scores: Vec<(ModelId, [Option<f64>; 3])>,
    /// Full-instruct parse-trouble rate per model (interpreter + failed).
    pub parse_trouble: Vec<(ModelId, f64)>,
    /// Rendered Table I.
    pub table1: String,
    /// Rendered ASCII Figure 1.
    pub figure1: String,
    /// Figure 1 data as CSV.
    pub figure1_csv: String,
}

impl StudyResult {
    /// Measured score of one model under one method.
    pub fn score(&self, id: ModelId, method: Method) -> Option<f64> {
        let col = match method {
            Method::FullInstruct => 0,
            Method::TokenInstruct => 1,
            Method::TokenBase => 2,
        };
        self.scores
            .iter()
            .find(|(m, _)| *m == id)
            .and_then(|(_, s)| s[col])
    }
}

impl Study {
    /// Generate the world, train the tokenizer, build the benchmark and
    /// pack every corpus.
    pub fn prepare(config: StudyConfig) -> Study {
        let _span = astro_telemetry::span!("study.prepare", seed = config.seed);
        let valid = config.validate();
        assert!(valid.is_ok(), "invalid StudyConfig: {}", valid.unwrap_err());
        astro_telemetry::info!(
            "prepare: world + tokenizer + benchmark (seed {})",
            config.seed
        );
        let root = Rng::seed_from(config.seed);
        let world = World::generate(config.seed, config.world.clone());

        // Corpora.
        let mut corpus_rng = root.substream("general-corpus");
        let general_docs = general_corpus(&world, config.general_docs, &mut corpus_rng);
        let mut cpt_rng = root.substream("cpt-corpus");
        let cpt_docs: Vec<(CorpusRecipe, Vec<astro_world::Document>)> =
            [CorpusRecipe::Abstract, CorpusRecipe::Aic, CorpusRecipe::Summary]
                .into_iter()
                .map(|r| (r, cpt_corpus(&world, r, &mut cpt_rng)))
                .collect();

        // Tokenizer: train on a blend of general + astro text so both
        // domains tokenise compactly (as LLaMA's web-trained BPE does).
        let mut tok_corpus: Vec<String> = general_docs
            .iter()
            .take(400)
            .map(|d| d.text.clone())
            .collect();
        for (_, docs) in &cpt_docs {
            tok_corpus.extend(docs.iter().take(120).map(|d| d.text.clone()));
        }
        // Guarantee the answer-letter variants exist as single tokens (as
        // they do in real LLM tokenizers) — the next-token method reads
        // their logits directly — and make every attribute value's head
        // word a single token, mirroring how common words are whole
        // tokens in web-scale BPE vocabularies.
        let mut ensure: Vec<String> = [" A", " B", " C", " D"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for rel in astro_world::RELATIONS {
            for v in rel.values() {
                let head = v.split(' ').next().expect("non-empty value");
                ensure.push(format!(" {head}"));
            }
        }
        for rel in astro_world::GENERAL_RELATIONS {
            for v in rel.values() {
                ensure.push(format!(" {v}"));
            }
        }
        ensure.sort();
        ensure.dedup();
        let tokenizer = train_bpe(
            &tok_corpus,
            &BpeTrainerConfig {
                vocab_size: config.vocab_size,
                min_pair_count: 2,
                ensure_pieces: ensure,
            },
        );

        // Benchmark.
        let mut mcq_rng = root.substream("mcq-gen");
        let mcq = McqDataset::generate(&world, &McqConfig::default(), &mut mcq_rng);

        // Packing.
        let general_stream = pack_documents(&tokenizer, &general_docs);
        let cpt_streams = cpt_docs
            .iter()
            .map(|(r, docs)| (*r, pack_documents(&tokenizer, docs)))
            .collect();

        // SFT set.
        let mut sft_rng = root.substream("sft-data");
        let mut mixture = SftMixtureConfig::paper_mixture(config.sft_scale);
        mixture.astro_json_fraction = config.sft_json_fraction;
        let convs = sft_dataset(&world, &mixture, &mut sft_rng);
        let sft_examples = render_conversations(&tokenizer, &convs);

        Study {
            config,
            world,
            tokenizer,
            mcq,
            general_stream,
            cpt_streams,
            sft_examples,
            root,
        }
    }

    /// The packed CPT stream for a recipe.
    pub fn cpt_stream(&self, recipe: CorpusRecipe) -> &TokenStream {
        &self
            .cpt_streams
            .iter()
            .find(|(r, _)| *r == recipe)
            .expect("all recipes prepared")
            .1
    }

    /// Model configuration for a tier under this study's tokenizer.
    pub fn model_config(&self, tier: Tier) -> ModelConfig {
        ModelConfig::tier(tier, self.tokenizer.vocab_size())
    }

    fn trainer_config(&self, steps: u64, lr: f32) -> TrainerConfig {
        TrainerConfig {
            lr,
            batch: self.config.batch,
            seq: self.config.seq,
            steps,
            warmup_ratio: 0.03,
            grad_clip: 1.0,
            grad_accum: 1,
            devices: self.config.devices,
            bf16_weights: true,
            weight_decay: 0.01,
            log_every: 20,
        }
    }

    /// Pretrain one native model on the general corpus.
    pub fn pretrain_native(&self, tier: Tier) -> (Params, TrainReport) {
        let span = astro_telemetry::span!("study.pretrain_native", tier = tier.label());
        astro_telemetry::info!("pretrain_native: tier {}", tier.label());
        let cfg = self.model_config(tier);
        let mut rng = self.root.substream_idx("native-init", tier_idx(tier) as u64);
        let mut params = Params::init(cfg, &mut rng);
        let tc = self.trainer_config(self.config.native_steps[tier_idx(tier)], self.config.native_lr);
        let report = train_lm(
            &mut params,
            BatchSource::Lm(&self.general_stream),
            &tc,
            &self.root.substream_idx("native-train", tier_idx(tier) as u64),
        );
        span.record_f64("tokens", report.tokens_processed as f64);
        (params, report)
    }

    /// Continually pretrain a base model on a recipe corpus (paper §III).
    pub fn cpt(&self, base: &Params, recipe: CorpusRecipe) -> (Params, TrainReport) {
        let span = astro_telemetry::span!("study.cpt", recipe = recipe.label());
        astro_telemetry::info!("cpt: recipe {}", recipe.label());
        let mut params = base.clone();
        let tc = self.trainer_config(self.config.cpt_steps, self.config.cpt_lr);
        let report = train_lm(
            &mut params,
            BatchSource::Lm(self.cpt_stream(recipe)),
            &tc,
            &self.root.substream(&format!("cpt-{}", recipe.label())),
        );
        span.record_f64("tokens", report.tokens_processed as f64);
        (params, report)
    }

    /// SFT a base model into an instruct model.
    pub fn sft(&self, base: &Params, label: &str) -> (Params, TrainReport) {
        let span = astro_telemetry::span!("study.sft", model = label);
        astro_telemetry::info!("sft: {label}");
        let mut params = base.clone();
        let tc = self.trainer_config(self.config.sft_steps, self.config.sft_lr);
        let report = train_lm(
            &mut params,
            BatchSource::Sft(&self.sft_examples, self.tokenizer.pad()),
            &tc,
            &self.root.substream(&format!("sft-{label}")),
        );
        span.record_f64("tokens", report.tokens_processed as f64);
        (params, report)
    }

    /// The deterministic evaluation subset.
    pub fn eval_questions(&self) -> Vec<&Mcq> {
        let mut rng = self.root.substream("eval-subset");
        self.mcq.subset(self.config.n_eval_questions, &mut rng)
    }

    /// Evaluate the token-base method and return the per-tier accuracy
    /// breakdown alongside the aggregate — the decomposition showing
    /// *where* a CPT gain or loss comes from (consensus = retention,
    /// frontier/detail = acquisition).
    pub fn eval_with_breakdown(&self, params: &Params) -> (Score, astro_eval::TierBreakdown) {
        let model = EvalModel {
            params,
            tokenizer: &self.tokenizer,
        };
        let questions = self.eval_questions();
        let preds = astro_eval::token_method(
            &model,
            &questions,
            &self.mcq.exemplars,
            &TokenEvalConfig {
                engine: self.config.eval_engine,
                ..Default::default()
            },
        );
        let correct = preds
            .iter()
            .zip(questions.iter())
            .filter(|(&p, q)| p == q.answer)
            .count();
        let breakdown = astro_eval::TierBreakdown::from_predictions(&questions, &preds);
        (
            Score {
                correct,
                total: questions.len(),
                stages: [0; 4],
            },
            breakdown,
        )
    }

    /// Evaluate one parameter set under one method.
    pub fn eval(&self, params: &Params, method: Method) -> Score {
        let model = EvalModel {
            params,
            tokenizer: &self.tokenizer,
        };
        let questions = self.eval_questions();
        let mut rng = self.root.substream("eval-run");
        evaluate(
            &model,
            &questions,
            &self.mcq.exemplars,
            method,
            &TokenEvalConfig {
                engine: self.config.eval_engine,
                ..Default::default()
            },
            &InstructEvalConfig {
                verbose_prompt: self.config.verbose_prompt,
                engine: self.config.eval_engine,
                ..Default::default()
            },
            &mut rng,
        )
    }

    /// Train every model of the zoo (natives shared across their series).
    pub fn build_artifacts(&self) -> HashMap<ModelId, ModelArtifacts> {
        let _span = astro_telemetry::span!("study.build_artifacts");
        let mut out = HashMap::new();
        // Natives per tier.
        let mut natives: HashMap<usize, Params> = HashMap::new();
        for tier in [Tier::S7b, Tier::S8b, Tier::S70b] {
            let (p, _) = self.pretrain_native(tier);
            natives.insert(tier_idx(tier), p);
        }
        for id in ModelId::all() {
            astro_telemetry::info!("build: {}", id.name());
            let native = &natives[&tier_idx(id.tier())];
            let (base, cpt_report) = match id.recipe() {
                None => (native.clone(), None),
                Some(recipe) => {
                    let (p, r) = self.cpt(native, recipe);
                    (p, Some(r))
                }
            };
            let (instruct, sft_report) = if id.has_instruct() {
                let (p, r) = self.sft(&base, id.name());
                (Some(p), Some(r))
            } else {
                (None, None)
            };
            out.insert(
                id,
                ModelArtifacts {
                    base,
                    instruct,
                    cpt_report,
                    sft_report,
                },
            );
        }
        out
    }

    /// Score prepared artifacts under the three methods.
    pub fn evaluate_artifacts(
        &self,
        artifacts: &HashMap<ModelId, ModelArtifacts>,
    ) -> StudyResult {
        let _span = astro_telemetry::span!("study.evaluate_artifacts");
        let mut scores = Vec::new();
        let mut parse_trouble = Vec::new();
        for id in ModelId::all() {
            astro_telemetry::info!("evaluate: {}", id.name());
            let art = &artifacts[&id];
            let token_base = self.eval(&art.base, Method::TokenBase).percent();
            let (full, token_instr, trouble) = match &art.instruct {
                Some(p) => {
                    let fi = self.eval(p, Method::FullInstruct);
                    let ti = self.eval(p, Method::TokenInstruct).percent();
                    (Some(fi.percent()), Some(ti), fi.parse_trouble_rate())
                }
                None => (None, None, 0.0),
            };
            scores.push((id, [full, token_instr, Some(token_base)]));
            parse_trouble.push((id, trouble));
        }
        let rows = build_rows(&scores);
        let (lo, hi) = score_range(&rows);
        StudyResult {
            table1: render_table1(&rows),
            figure1: render_figure1(&rows, lo, hi),
            figure1_csv: astro_eval::report::figure1_csv(&rows),
            scores,
            parse_trouble,
        }
    }

    /// The whole pipeline: train everything, evaluate everything.
    pub fn run_table1(&self) -> StudyResult {
        let _span = astro_telemetry::span!("study.run_table1");
        let artifacts = self.build_artifacts();
        self.evaluate_artifacts(&artifacts)
    }
}

/// Convert raw scores into Table-I rows with baseline indices.
pub fn build_rows(scores: &[(ModelId, [Option<f64>; 3])]) -> Vec<ModelRow> {
    let index_of = |id: ModelId| {
        ModelId::all()
            .iter()
            .position(|&m| m == id)
            .expect("all ids present")
    };
    scores
        .iter()
        .map(|(id, s)| ModelRow {
            name: id.name().to_string(),
            series: id.series().to_string(),
            scores: *s,
            baseline: (id.baseline() != *id).then(|| index_of(id.baseline())),
            source: id.source().to_string(),
        })
        .collect()
}

/// A padded (lo, hi) range covering every present score.
fn score_range(rows: &[ModelRow]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in rows {
        for s in r.scores.iter().flatten() {
            lo = lo.min(*s);
            hi = hi.max(*s);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 100.0);
    }
    let pad = ((hi - lo) * 0.1).max(2.0);
    ((lo - pad).max(0.0), (hi + pad).min(100.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_study() -> Study {
        Study::prepare(StudyConfig::smoke(11))
    }

    #[test]
    fn prepare_builds_all_streams() {
        let s = smoke_study();
        assert!(!s.general_stream.is_empty());
        for recipe in [CorpusRecipe::Abstract, CorpusRecipe::Aic, CorpusRecipe::Summary] {
            assert!(s.cpt_stream(recipe).len() > s.config.seq, "{recipe:?} stream too small");
        }
        assert!(!s.sft_examples.is_empty());
        assert_eq!(s.mcq.questions.len() + s.mcq.exemplars.len(), 40 * 5);
    }

    #[test]
    fn aic_stream_larger_than_abstract() {
        let s = smoke_study();
        assert!(s.cpt_stream(CorpusRecipe::Aic).len() > s.cpt_stream(CorpusRecipe::Abstract).len());
    }

    #[test]
    fn eval_questions_deterministic_and_sized() {
        let s = smoke_study();
        let a = s.eval_questions();
        let b = s.eval_questions();
        assert_eq!(a.len(), s.config.n_eval_questions.min(s.mcq.len()));
        assert_eq!(
            a.iter().map(|q| q.id).collect::<Vec<_>>(),
            b.iter().map(|q| q.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pretrain_reduces_loss() {
        let s = smoke_study();
        let (_, report) = s.pretrain_native(Tier::S7b);
        assert!(report.tail_loss(2) < report.losses[0].1, "{:?}", report.losses);
    }

    #[test]
    fn cpt_starts_from_base_and_changes_weights() {
        let s = smoke_study();
        let (native, _) = s.pretrain_native(Tier::S7b);
        let (cpt, report) = s.cpt(&native, CorpusRecipe::Aic);
        assert_eq!(cpt.data.len(), native.data.len());
        assert_ne!(cpt.data, native.data);
        assert!(report.steps == s.config.cpt_steps);
    }

    #[test]
    fn sft_changes_weights_less_than_cpt() {
        // SFT's tiny LR must move weights much less than CPT does.
        let s = smoke_study();
        let (native, _) = s.pretrain_native(Tier::S7b);
        let (cpt, _) = s.cpt(&native, CorpusRecipe::Aic);
        let (instr, _) = s.sft(&native, "t");
        let dist = |a: &Params, b: &Params| -> f64 {
            a.data
                .iter()
                .zip(b.data.iter())
                .map(|(x, y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&instr, &native) < dist(&cpt, &native));
    }

    #[test]
    fn build_rows_assigns_baselines() {
        let scores: Vec<(ModelId, [Option<f64>; 3])> = ModelId::all()
            .iter()
            .map(|&id| (id, id.paper_scores()))
            .collect();
        let rows = build_rows(&scores);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].baseline, None);
        assert_eq!(rows[1].baseline, Some(0)); // 7B-AIC → LLaMA-2-7B
        assert_eq!(rows[7].baseline, Some(6)); // 70B-AIC → LLaMA-2-70B
    }

    #[test]
    fn table_and_figure_render_from_paper_scores() {
        let scores: Vec<(ModelId, [Option<f64>; 3])> = ModelId::all()
            .iter()
            .map(|&id| (id, id.paper_scores()))
            .collect();
        let rows = build_rows(&scores);
        let t = render_table1(&rows);
        assert!(t.contains("76.0 ↑"), "{t}");
        assert!(t.contains("41.4 ↓"), "{t}");
        let (lo, hi) = score_range(&rows);
        assert!(lo < 41.4 && hi > 76.0);
        let f = render_figure1(&rows, lo, hi);
        assert!(f.contains('*'));
    }

    #[test]
    fn score_range_handles_empty() {
        assert_eq!(score_range(&[]), (0.0, 100.0));
    }
}
