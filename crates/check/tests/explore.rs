//! Exploration engine tests: schedule enumeration, pruning, determinism.

use astro_check::{explore, explore_random, models, CheckConfig, ViolationKind};

fn cfg() -> CheckConfig {
    CheckConfig::default()
}

#[test]
fn single_thread_model_is_one_schedule() {
    let report = explore(&cfg(), || {
        let m = astro_check::sync::Mutex::new(1u32);
        let g = m.lock().unwrap();
        assert_eq!(*g, 1);
    });
    assert!(report.ok(), "{:?}", report.violation);
    assert_eq!(report.schedules, 1);
    assert!(!report.truncated);
}

#[test]
fn counter_model_explores_multiple_schedules() {
    let report = explore(&cfg(), models::counter_model(2));
    assert!(report.ok(), "{:?}", report.violation);
    assert!(report.schedules >= 2, "expected interleavings, got {}", report.schedules);
    assert!(report.max_steps_seen > 0);
}

/// Two threads touching *disjoint* mutexes: their critical sections
/// commute, so sleep sets must cut the redundant orderings. (With a
/// single shared mutex every op pair is dependent and nothing can be
/// pruned — see `counter_model`.)
fn disjoint_model() {
    use astro_check::sync::{thread, Mutex};
    use std::sync::Arc;
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let (a2, b2) = (a.clone(), b.clone());
    let ta = thread::spawn(move || {
        *a2.lock().unwrap() += 1;
    });
    let tb = thread::spawn(move || {
        *b2.lock().unwrap() += 1;
    });
    let _ = ta.join();
    let _ = tb.join();
    assert_eq!(*a.lock().unwrap() + *b.lock().unwrap(), 2);
}

#[test]
fn sleep_sets_prune_without_losing_coverage() {
    let with = explore(&cfg(), disjoint_model);
    let without = explore(&CheckConfig { sleep_sets: false, ..cfg() }, disjoint_model);
    assert!(with.ok() && without.ok());
    // Pruning must never *increase* the number of complete executions.
    assert!(
        with.schedules <= without.schedules,
        "sleep sets explored more: {} vs {}",
        with.schedules,
        without.schedules
    );
    // And with commuting critical sections there must be something to cut.
    assert!(
        with.executions() < without.executions(),
        "sleep sets cut nothing: {} vs {}",
        with.executions(),
        without.executions()
    );
}

#[test]
fn exploration_is_deterministic() {
    let a = explore(&cfg(), models::counter_model(2));
    let b = explore(&cfg(), models::counter_model(2));
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.pruned, b.pruned);
    assert_eq!(a.max_steps_seen, b.max_steps_seen);
}

#[test]
fn preemption_bound_zero_still_completes() {
    let report = explore(
        &CheckConfig { preemption_bound: 0, ..cfg() },
        models::counter_model(2),
    );
    // With no preemptions allowed each thread runs to completion when
    // scheduled; the model is race-free so it still passes.
    assert!(report.ok(), "{:?}", report.violation);
    assert!(report.schedules >= 1);
}

#[test]
fn max_schedules_truncates() {
    let report = explore(
        &CheckConfig { max_schedules: 1, ..cfg() },
        models::counter_model(3),
    );
    assert!(report.ok());
    assert!(report.truncated);
    assert_eq!(report.executions(), 1);
}

#[test]
fn random_walk_is_deterministic_per_seed() {
    let a = explore_random(&cfg(), 7, 20, models::counter_model(2));
    let b = explore_random(&cfg(), 7, 20, models::counter_model(2));
    assert!(a.ok() && b.ok());
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.max_steps_seen, b.max_steps_seen);
}

#[test]
fn deadlock_is_reported_with_schedule() {
    use astro_check::sync::{thread, Mutex};
    use std::sync::Arc;
    // Classic AB/BA deadlock (raw shim mutexes, no rank discipline).
    let report = explore(&cfg(), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
        drop(_gb);
        drop(_ga);
        let _ = t.join();
    });
    let v = report.violation.expect("AB/BA must deadlock under some schedule");
    assert_eq!(v.kind, ViolationKind::Deadlock);
    assert!(!v.schedule.steps.is_empty());
    assert!(v.message.contains("deadlock"), "{}", v.message);
}

#[test]
fn assertion_failure_is_reported_as_panic_violation() {
    use astro_check::sync::{thread, Mutex};
    use std::sync::Arc;
    // Unsynchronised check-then-act: both threads read 0, both write 1,
    // final count is 1 under some schedule — the assert fires.
    let report = explore(&cfg(), || {
        let c = Arc::new(Mutex::new(0u32));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            let read = *c2.lock().unwrap();
            *c2.lock().unwrap() = read + 1;
        });
        let read = *c.lock().unwrap();
        *c.lock().unwrap() = read + 1;
        let _ = t.join();
        assert_eq!(*c.lock().unwrap(), 2, "lost update");
    });
    let v = report.violation.expect("lost update must be found");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("lost update"), "{}", v.message);
}

#[test]
fn step_budget_catches_livelock() {
    use astro_check::sync::Mutex;
    use std::sync::Arc;
    let report = explore(
        &CheckConfig { max_steps: 50, ..cfg() },
        || {
            let m = Arc::new(Mutex::new(0u64));
            // Spin forever: every lock is a granted op, so the budget trips.
            loop {
                let mut g = m.lock().unwrap();
                *g = g.wrapping_add(1);
            }
        },
    );
    let v = report.violation.expect("infinite loop must trip the step budget");
    assert_eq!(v.kind, ViolationKind::StepBudget);
}
