//! Mutant self-test: the checker must catch every seeded protocol bug
//! and emit a replayable counterexample schedule for each.

use astro_check::models::{self, PoolMutant, QueueMutant};
use astro_check::{explore, explore_random, replay, CheckConfig, Schedule, Violation, ViolationKind};

fn cfg() -> CheckConfig {
    CheckConfig::default()
}

/// Assert the violation carries a non-empty schedule that (a) survives a
/// JSONL round-trip and (b) reproduces the same violation kind when
/// replayed against a fresh instance of the model.
fn assert_replayable<M>(v: &Violation, make_model: M)
where
    M: Fn() + Send + Sync + 'static,
{
    assert!(!v.schedule.steps.is_empty(), "counterexample schedule is empty");
    let jsonl = v.schedule.to_jsonl();
    let parsed = Schedule::from_jsonl(&jsonl).expect("JSONL round-trip");
    assert_eq!(parsed.decisions(), v.schedule.decisions());
    let replayed = replay(&cfg(), &parsed, make_model);
    let rv = replayed.violation.as_ref().unwrap_or_else(|| {
        panic!("replay of {} counterexample found no violation", v.kind.label())
    });
    assert_eq!(rv.kind, v.kind, "replay produced a different violation kind");
}

#[test]
fn correct_queue_passes_exhaustively() {
    let report = explore(&cfg(), models::bounded_queue_model(QueueMutant::Correct));
    assert!(report.ok(), "{:?}", report.violation);
    assert!(!report.truncated, "state space must be enumerable at bound 2");
    assert!(report.schedules > 1);
}

#[test]
fn correct_pool_passes_exhaustively() {
    let report = explore(&cfg(), models::quiescence_model(PoolMutant::Correct));
    assert!(report.ok(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(report.schedules > 1);
}

#[test]
fn mutant_queue_drop_notify_deadlocks() {
    let report = explore(&cfg(), models::bounded_queue_model(QueueMutant::DropNotifyOnClose));
    let v = report.violation.expect("dropped close-notify must be caught");
    assert_eq!(v.kind, ViolationKind::Deadlock, "{}", v.message);
    assert_replayable(&v, models::bounded_queue_model(QueueMutant::DropNotifyOnClose));
}

#[test]
fn mutant_queue_wait_if_loses_wakeup() {
    let report = explore(&cfg(), models::bounded_queue_model(QueueMutant::WaitIfInsteadOfWhile));
    let v = report.violation.expect("wait-`if` must be caught");
    assert_eq!(v.kind, ViolationKind::Panic, "{}", v.message);
    assert!(v.message.contains("lost wakeup"), "{}", v.message);
    assert_replayable(&v, models::bounded_queue_model(QueueMutant::WaitIfInsteadOfWhile));
}

#[test]
fn mutant_queue_skip_drain_drops_items() {
    let report = explore(&cfg(), models::bounded_queue_model(QueueMutant::SkipDrain));
    let v = report.violation.expect("skipped drain handshake must be caught");
    assert_eq!(v.kind, ViolationKind::Panic, "{}", v.message);
    assert_replayable(&v, models::bounded_queue_model(QueueMutant::SkipDrain));
}

#[test]
fn mutant_pool_drop_notify_deadlocks() {
    let report = explore(&cfg(), models::quiescence_model(PoolMutant::DropNotify));
    let v = report.violation.expect("dropped quiescence notify must be caught");
    assert_eq!(v.kind, ViolationKind::Deadlock, "{}", v.message);
    assert_replayable(&v, models::quiescence_model(PoolMutant::DropNotify));
}

#[test]
fn mutant_pool_wait_if_joins_early() {
    let report = explore(&cfg(), models::quiescence_model(PoolMutant::IfInsteadOfWhile));
    let v = report.violation.expect("quiescence wait-`if` must be caught");
    assert_eq!(v.kind, ViolationKind::Panic, "{}", v.message);
    assert_replayable(&v, models::quiescence_model(PoolMutant::IfInsteadOfWhile));
}

#[test]
fn random_walk_also_finds_a_mutant() {
    // The random walker is the fallback for state spaces too large to
    // enumerate; it must still land on at least one bad schedule for an
    // easy mutant within a modest iteration budget.
    let report = explore_random(
        &cfg(),
        0xA57_0CAFE,
        400,
        models::bounded_queue_model(QueueMutant::DropNotifyOnClose),
    );
    let v = report.violation.expect("random walk missed the deadlock in 400 tries");
    assert_eq!(v.kind, ViolationKind::Deadlock);
    assert!(!v.schedule.steps.is_empty());
}

#[test]
fn counterexample_dump_writes_jsonl() {
    let report = explore(&cfg(), models::bounded_queue_model(QueueMutant::DropNotifyOnClose));
    assert!(report.violation.is_some());
    let dir = std::env::temp_dir().join("astro_check_test_dump");
    let path = dir.join("queue_drop_notify.jsonl");
    let wrote = astro_check::dump_counterexample(&report, &path).expect("write");
    assert!(wrote);
    let text = std::fs::read_to_string(&path).expect("read back");
    let mut lines = text.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("\"violation\":\"deadlock\""), "{header}");
    let parsed = Schedule::from_jsonl(&text).expect("body parses (header line skipped)");
    assert!(!parsed.steps.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
