//! Reference models of the serving stack's concurrency protocols, with
//! seeded mutants.
//!
//! Each model is a faithful miniature of a production protocol (the
//! gateway bounded queue, the pool quiescence handshake) built directly
//! on [`crate::sync`], so the checker's own test-suite — and the
//! mutant-detection self-test in CI — runs in **every** build, without
//! `--cfg astro_check`. The mutants are the classic condvar bugs the
//! checker exists to catch:
//!
//! * **drop a notify** — `close()` forgets `notify_all`: a parked
//!   consumer never wakes → deadlock;
//! * **wait-loop → `if`** — a woken thread assumes its predicate holds:
//!   a second consumer stealing the item between notify and reacquire
//!   breaks the assumption → assertion violation;
//! * **skip the drain handshake** — a consumer exits on `closed` without
//!   draining buffered items → accepted ≠ completed.
//!
//! The model-checked harnesses over the *real* types (gateway
//! `BoundedQueue`, `ThreadPool`, `PrefixCache`, `TraceRing`) live in
//! their owning crates behind `--cfg astro_check`.

use crate::sync::{mpsc, thread, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::{Arc, PoisonError};

/// Seeded bugs for the bounded-queue model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueMutant {
    /// The faithful protocol (must pass exhaustive exploration).
    Correct,
    /// `close()` sets the flag but never notifies → lost wakeup/deadlock.
    DropNotifyOnClose,
    /// The consumer waits with `if` instead of `while` → acts on a stale
    /// predicate after a steal.
    WaitIfInsteadOfWhile,
    /// The consumer returns as soon as it sees `closed`, abandoning
    /// buffered items → drain loses accepted work.
    SkipDrain,
}

struct MiniInner {
    items: VecDeque<u32>,
    closed: bool,
    max_depth: usize,
}

/// Miniature of `gateway::queue::BoundedQueue` (push/close/pop-loop) on
/// the instrumented shim.
struct MiniQueue {
    inner: Mutex<MiniInner>,
    cv: Condvar,
    cap: usize,
    mutant: QueueMutant,
}

impl MiniQueue {
    fn new(cap: usize, mutant: QueueMutant) -> Self {
        MiniQueue {
            inner: Mutex::new(MiniInner { items: VecDeque::new(), closed: false, max_depth: 0 }),
            cv: Condvar::new(),
            cap,
            mutant,
        }
    }

    fn lock(&self) -> crate::sync::MutexGuard<'_, MiniInner> {
        self.inner.name_hint("model.queue");
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking push (capacity respected, like `try_push`).
    fn push(&self, v: u32) -> bool {
        let mut g = self.lock();
        if g.closed || g.items.len() >= self.cap {
            return false;
        }
        g.items.push_back(v);
        g.max_depth = g.max_depth.max(g.items.len());
        drop(g);
        self.cv.notify_one();
        true
    }

    fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        if self.mutant != QueueMutant::DropNotifyOnClose {
            self.cv.notify_all();
        }
    }

    /// Blocking pop: `Some(item)` or `None` once closed-and-drained.
    fn pop(&self) -> Option<u32> {
        let mut g = self.lock();
        match self.mutant {
            QueueMutant::WaitIfInsteadOfWhile => {
                // BUG: a single `if` — the waker's predicate may no longer
                // hold by the time this thread reacquires the lock.
                if g.items.is_empty() && !g.closed {
                    g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
                if let Some(v) = g.items.pop_front() {
                    return Some(v);
                }
                assert!(
                    g.closed,
                    "lost wakeup: woke to an empty, still-open queue (wait used `if`)"
                );
                None
            }
            QueueMutant::SkipDrain => loop {
                // BUG: checks `closed` before draining buffered items.
                if g.closed {
                    return None;
                }
                if let Some(v) = g.items.pop_front() {
                    return Some(v);
                }
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            },
            _ => loop {
                if let Some(v) = g.items.pop_front() {
                    return Some(v);
                }
                if g.closed {
                    return None;
                }
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            },
        }
    }

    /// Opportunistic non-blocking pop (the "stealing" consumer).
    fn try_pop(&self) -> Option<u32> {
        self.lock().items.pop_front()
    }
}

/// Bounded-queue drain model: producer pushes `items` values then closes;
/// consumers drain. Asserts FIFO completeness (every accepted item is
/// delivered exactly once), capacity never exceeded, and no deadlock.
///
/// For [`QueueMutant::WaitIfInsteadOfWhile`] a second, stealing consumer
/// creates the stale-predicate race the mutant mishandles.
pub fn bounded_queue_model(mutant: QueueMutant) -> impl Fn() + Send + Sync + 'static {
    move || {
        let cap = 2usize;
        let items = 2u32;
        let q = Arc::new(MiniQueue::new(cap, mutant));

        let qp = q.clone();
        let producer = thread::Builder::new()
            .name("producer".into())
            .spawn(move || {
                let mut accepted = 0u32;
                for v in 0..items {
                    if qp.push(v) {
                        accepted += 1;
                    }
                }
                qp.close();
                accepted
            })
            .unwrap_or_else(|e| crate::sched_die(format!("spawn: {e}")));

        // A stealing consumer exercises the woke-to-empty race.
        let steal = mutant == QueueMutant::WaitIfInsteadOfWhile;
        let stolen = if steal {
            let qs = q.clone();
            let h = thread::Builder::new()
                .name("stealer".into())
                .spawn(move || qs.try_pop().map_or(0u32, |_| 1))
                .unwrap_or_else(|e| crate::sched_die(format!("spawn: {e}")));
            Some(h)
        } else {
            None
        };

        let mut drained = 0u32;
        let mut last: Option<u32> = None;
        while let Some(v) = q.pop() {
            if let Some(prev) = last {
                assert!(v > prev, "FIFO order violated: {v} after {prev}");
            }
            last = Some(v);
            drained += 1;
        }

        let accepted = producer
            .join()
            .unwrap_or_else(|_| crate::sched_die("producer panicked".into()));
        let stolen = stolen.map_or(0, |h| {
            h.join().unwrap_or_else(|_| crate::sched_die("stealer panicked".into()))
        });
        assert_eq!(
            drained + stolen,
            accepted,
            "drain incomplete: accepted {accepted}, delivered {}",
            drained + stolen
        );
        let g = q.lock();
        assert!(g.max_depth <= cap, "queue exceeded capacity: {} > {cap}", g.max_depth);
        assert!(g.items.is_empty(), "items left behind after drain");
    }
}

/// Seeded bugs for the pool-quiescence model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolMutant {
    /// The faithful handshake (must pass exhaustive exploration).
    Correct,
    /// The worker decrements `pending` but never notifies → `join`
    /// deadlocks.
    DropNotify,
    /// `join` waits with `if` instead of `while` → returns while work is
    /// still pending.
    IfInsteadOfWhile,
}

struct MiniShared {
    pending: Mutex<usize>,
    quiescent: Condvar,
    mutant: PoolMutant,
}

impl MiniShared {
    fn lock_pending(&self) -> crate::sync::MutexGuard<'_, usize> {
        self.pending.name_hint("model.pool.pending");
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Pool quiescence model: miniature of `parallel::pool` — a worker drains
/// a job channel, decrementing a `pending` count under a mutex and
/// notifying a quiescence condvar; `join` waits for `pending == 0`.
/// Asserts every job ran before `join` returned, and no deadlock.
pub fn quiescence_model(mutant: PoolMutant) -> impl Fn() + Send + Sync + 'static {
    move || {
        let shared =
            Arc::new(MiniShared { pending: Mutex::new(0), quiescent: Condvar::new(), mutant });
        let done = Arc::new(Mutex::new(0usize));
        let (tx, rx) = mpsc::channel::<u32>();

        let (sh, dn) = (shared.clone(), done.clone());
        let worker = thread::Builder::new()
            .name("worker-0".into())
            .spawn(move || {
                while rx.recv().is_ok() {
                    *dn.lock().unwrap_or_else(PoisonError::into_inner) += 1;
                    let mut pending = sh.lock_pending();
                    *pending -= 1;
                    drop(pending);
                    if sh.mutant != PoolMutant::DropNotify {
                        // The real pool notifies only at zero; notifying on
                        // every decrement is equally correct for a `while`
                        // waiter — and exposes the `if` mutant.
                        sh.quiescent.notify_all();
                    }
                }
            })
            .unwrap_or_else(|e| crate::sched_die(format!("spawn: {e}")));

        let jobs = 2u32;
        for v in 0..jobs {
            let mut pending = shared.lock_pending();
            *pending += 1;
            drop(pending);
            if tx.send(v).is_err() {
                crate::sched_die("worker hung up early".into());
            }
        }

        // join(): wait for quiescence.
        let mut pending = shared.lock_pending();
        if shared.mutant == PoolMutant::IfInsteadOfWhile {
            // BUG: a single `if` — any notify wakes us, quiescent or not.
            if *pending > 0 {
                pending =
                    shared.quiescent.wait(pending).unwrap_or_else(PoisonError::into_inner);
            }
        } else {
            while *pending > 0 {
                pending =
                    shared.quiescent.wait(pending).unwrap_or_else(PoisonError::into_inner);
            }
        }
        assert_eq!(*pending, 0, "join returned while {} jobs pending", *pending);
        drop(pending);
        assert_eq!(
            *done.lock().unwrap_or_else(PoisonError::into_inner),
            jobs as usize,
            "join returned before every job ran"
        );

        drop(tx); // disconnect → worker exits
        worker
            .join()
            .unwrap_or_else(|_| crate::sched_die("worker panicked".into()));
    }
}

/// Two-threads-increment sanity model: N spawned threads each lock one
/// mutex and increment; the final count must equal N. Used to validate
/// schedule counting and sleep-set pruning.
pub fn counter_model(threads: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let c = counter.clone();
                thread::Builder::new()
                    .name(format!("inc-{i}"))
                    .spawn(move || {
                        *c.lock().unwrap_or_else(PoisonError::into_inner) += 1;
                    })
                    .unwrap_or_else(|e| crate::sched_die(format!("spawn: {e}")))
            })
            .collect();
        for h in handles {
            h.join().unwrap_or_else(|_| crate::sched_die("incrementer panicked".into()));
        }
        let got = *counter.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(got, threads, "lost increment: {got} != {threads}");
    }
}
